"""Section 4 (classification of worklists): sensitivity to the small/medium
and medium/large separators.

Paper result: performance is stable for the small/medium separator anywhere
in [4, 128] and for the medium/large separator in [128, 2048], dropping only
beyond those ranges. The bench sweeps both separators and checks the
in-range spread stays small.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import experiments, reporting


@pytest.mark.benchmark(group="section4")
def test_worklist_separator_stability(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.worklist_separators, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(reporting.render_worklist_separators(result))

    sm = {r["separator"]: r["mean_ms"] for r in result["small_medium"]}
    ml = {r["separator"]: r["mean_ms"] for r in result["medium_large"]}

    # Within the paper's stable ranges the spread stays moderate (the paper
    # reports flat performance; the cost model shows a mild monotonic trend).
    in_range_sm = [v for k, v in sm.items() if 4 <= k <= 128]
    assert max(in_range_sm) / min(in_range_sm) < 1.4

    in_range_ml = [v for k, v in ml.items() if 128 <= k <= 2048]
    assert max(in_range_ml) / min(in_range_ml) < 1.4

    # Pushing a separator beyond the stable range is never meaningfully
    # better than staying inside it (allow a small measurement tolerance).
    if 512 in sm:
        assert sm[512] >= 0.95 * min(in_range_sm)
    if 4096 in ml:
        assert ml[4096] >= 0.95 * min(in_range_ml)

    # Results exist for every requested separator.
    assert len(sm) >= 4 and len(ml) >= 3
