"""Dynamic updates and cross-query reuse: the EXPERIMENTS.md §10 sweep.

The repository's fourth serving-oriented experiment (after batching,
split benefit and shard scaling): seeded random edge-update batches and
Zipf-skewed query streams against ``src/repro/dyn/`` and
``src/repro/cache/``. Claims checked (they back EXPERIMENTS.md §10,
docs/dynamic.md and docs/caching.md):

* every incremental repair is bit-identical to the from-scratch run on
  the same snapshot (``values_identical`` - the exactness contract; the
  sweep itself raises if any cell diverges);
* repair touches work proportional to the update, not the graph: the
  seeded/reset frontier grows with the update-batch size, and the mean
  repair time never exceeds the from-scratch mean by more than noise;
* reuse turns on with skew: the most Zipf-skewed source stream has a
  strictly positive cache hit-rate and at least the uniform stream's
  reuse is accounted (hits + repairs + misses == queries in every row);
* the nightly job asserts the headline: at the default scale the
  skewed stream's reuse rate beats pure recomputation (hit_rate > 0)
  and incremental repair achieves a >= 1x mean speedup on the largest
  update batch.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments


@pytest.mark.benchmark(group="dynamic")
def test_dynamic_updates(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.dynamic_updates,
        args=(ctx,),
        kwargs={"rounds": 3, "update_rounds": 3, "queries_per_round": 10},
        rounds=1,
        iterations=1,
    )

    repair_rows = result["repair_rows"]
    cache_rows = result["cache_rows"]
    assert repair_rows and cache_rows

    for r in repair_rows:
        # The sweep re-checks bit-identity internally and raises on any
        # divergence; the flag records that the check ran.
        assert r["values_identical"], r
        assert r["mean_repair_us"] > 0 and r["mean_scratch_us"] > 0
        assert r["mean_seed_vertices"] >= 0
        assert r["mean_reset_vertices"] >= 0

    # The touched frontier scales with the update batch, not the graph:
    # the largest batch seeds at least as much repair work as the
    # smallest (each row draws its own random batches, so strict
    # monotonicity across adjacent rows is not guaranteed).
    assert (repair_rows[-1]["mean_seed_vertices"]
            >= repair_rows[0]["mean_seed_vertices"]), repair_rows

    # Repair never costs meaningfully more than recomputation (the warm
    # fixed point can only shrink the work), and on the largest batch it
    # still achieves at least parity.
    for r in repair_rows:
        assert r["mean_repair_us"] <= 1.25 * r["mean_scratch_us"], r
    assert repair_rows[-1]["speedup"] >= 1.0, repair_rows[-1]

    for r in cache_rows:
        assert r["hits"] + r["repairs"] + r["misses"] == r["queries"], r
        assert 0.0 <= r["hit_rate"] <= 1.0
        assert r["reuse_rate"] >= r["hit_rate"]

    # Skew turns reuse on: the most skewed stream hits, and at least as
    # often as the uniform stream.
    most_skewed = cache_rows[-1]
    uniform = cache_rows[0]
    assert most_skewed["zipf_exponent"] > uniform["zipf_exponent"]
    assert most_skewed["hit_rate"] > 0.0
    assert most_skewed["hit_rate"] >= uniform["hit_rate"]
