"""Shard scaling: batched feasibility versus ``EngineConfig.num_shards``.

The repository's third serving-oriented experiment (after
``test_batching_throughput.py`` and ``test_split_benefit.py``): the same
K-lane batch answered on 1, 2 and 4 simulated devices, on the graph
shapes whose K=16 lane metadata does not fit one modeled K40 (TW and ER,
the EXPERIMENTS.md §5 blank cells). Claims checked (they back the
EXPERIMENTS.md §7 table and docs/sharding.md):

* every failure is a Table-4-style OOM, and feasibility is monotone in
  the shard count - once a batch fits at N shards it fits at every
  larger N in the sweep;
* every completed cell is bit-identical per lane to K independent
  single-source runs - partitioning is an execution plan, not a result
  change - and its reported peak stays within per-device capacity;
* the headline: every cell that OOMs on one device completes on 2 and 4
  shards with the *largest* per-shard peak under the single-device
  budget, so the sharded engine runs configurations one device cannot;
* multi-shard completions report their exchange traffic - at least one
  cell pays a nonzero boundary-update count.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments


@pytest.mark.benchmark(group="sharding")
def test_shard_scaling(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.shard_scaling, args=(ctx,), rounds=1, iterations=1
    )
    all_rows = result["rows"]
    assert all_rows

    for r in all_rows:
        if r["failed"]:
            assert "OOM" in r["failure_reason"], r
    rows = [r for r in all_rows if not r["failed"]]
    assert rows

    capacity = ctx.device_spec.global_memory_bytes
    for r in rows:
        # Sharding must never change results.
        assert r["values_identical"], r
        # The reported peak is the feasibility quantity: it must respect
        # the budget the run was admitted under.
        assert r["max_peak_bytes"] <= capacity, r
        if r["shards"] > 1:
            assert r["device"].endswith(f"x{r['shards']}"), r

    # Feasibility is monotone in the shard count: within one
    # (algorithm, graph, K) cell, everything at or above the smallest
    # completing shard count also completes.
    by_cell = {}
    for r in all_rows:
        key = (r["algorithm"], r["graph"], r["lanes"])
        by_cell.setdefault(key, []).append(r)
    for cell_rows in by_cell.values():
        completed = sorted(r["shards"] for r in cell_rows if not r["failed"])
        failed = sorted(r["shards"] for r in cell_rows if r["failed"])
        if completed and failed:
            assert max(failed) < min(completed), cell_rows

    # The headline claim: a batch the single device cannot hold completes
    # on every multi-shard count in the sweep, largest per-shard peak
    # under the single-device budget. (Vacuous if the dataset selection
    # holds no OOM shape - the default sweep includes TW and ER, whose
    # K=16 cells OOM at N=1 by construction.)
    for key, cell_rows in by_cell.items():
        if not any(r["failed"] and r["shards"] == 1 for r in cell_rows):
            continue
        sharded = [r for r in cell_rows if r["shards"] > 1]
        assert sharded, key
        for r in sharded:
            assert not r["failed"], r
            assert r["max_peak_bytes"] < capacity, r

    # The capacity was not free: some completed multi-shard cell routed
    # updates across a boundary.
    multi = [r for r in rows if r["shards"] > 1]
    if multi:
        assert any(r["boundary_updates"] > 0 for r in multi), multi
