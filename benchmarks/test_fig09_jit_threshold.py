"""Figure 9: (a) JIT performance versus the online-filter overflow threshold,
(b) overhead of keeping the online filter running in ballot mode.

Paper results: performance peaks around a threshold of 64 (too low or too
high hurts); the shadow online filter adds ~0.02% overhead on average with a
2.1% worst case.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments, reporting


@pytest.mark.benchmark(group="figure9")
def test_figure9a_overflow_threshold_sweep(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.figure9a, args=(ctx,), rounds=1, iterations=1
    )
    result_b = experiments.figure9b(ctx)
    print()
    print(reporting.render_figure9(result, result_b))

    rows = {r["threshold"]: r["relative_performance"] for r in result["rows"]}
    # The paper's default of 64 sits within a few percent of the best
    # threshold, and clearly ahead of the degenerate threshold of 1 (which
    # forces the ballot filter almost immediately on every graph).
    best = max(rows.values())
    assert rows[64] >= 0.97 * best
    assert max(rows.get(64, 0.0), rows.get(256, 0.0)) >= rows[1] - 1e-9
    # And the sweep spans a real effect: the worst threshold loses measurably.
    assert min(rows.values()) < max(rows.values())

    # Figure 9(b): shadow-online overhead stays small on average (<5%).
    assert result_b["average_overhead_percent"] < 5.0
