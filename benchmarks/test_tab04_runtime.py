"""Table 4: runtime of SIMD-X versus CuSha, Gunrock, Galois and Ligra on
BFS, PageRank, SSSP and k-Core across the 11 dataset analogues.

Paper result (shape): SIMD-X wins on average against every system on every
algorithm (24x over CuSha, 2.9x over Gunrock, 6.5x over Galois, 3.3x over
Ligra overall); CuSha cannot hold the largest graphs; Gunrock OOMs on
large-graph SSSP; Galois fails SSSP on Europe-osm; PageRank is the one
algorithm where CuSha is competitive.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments, reporting
from repro.core.metrics import geometric_mean_speedup


@pytest.mark.benchmark(group="table4")
def test_table4_system_comparison(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.table4, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(reporting.render_table4(result))

    cells = result["cells"]
    speedups = result["simdx_speedup_over"]

    def cell(algorithm, system, graph):
        return next(
            (c for c in cells if c["algorithm"] == algorithm
             and c["system_key"] == system and c["graph"] == graph),
            None,
        )

    # SIMD-X completes every (algorithm, graph) cell.
    simdx_cells = [c for c in cells if c["system_key"] == "simdx"]
    assert simdx_cells and not any(c["failed"] for c in simdx_cells)

    # SIMD-X wins on average over every comparator for the traversal
    # algorithms (BFS, SSSP) - the paper's headline claim.
    for algorithm in ("bfs", "sssp"):
        for system, ratio in speedups[algorithm].items():
            assert ratio > 1.0, (algorithm, system, ratio)

    # k-Core: faster than Ligra (the only comparator implementing it).
    assert speedups["kcore"]["ligra"] > 1.0

    # Failure cells reproduce the paper's pattern on the large graphs.
    if "TW" in ctx.datasets:
        assert cell("bfs", "cusha", "TW")["failed"]
        assert cell("sssp", "gunrock", "TW")["failed"]
        assert not cell("bfs", "gunrock", "TW")["failed"]
    if "ER" in ctx.datasets:
        assert cell("sssp", "galois", "ER")["failed"]

    # PageRank is CuSha's best case: the gap (when it runs) is modest.
    pr_ratio = speedups["pagerank"].get("cusha")
    if pr_ratio is not None:
        assert pr_ratio < 4.0
