"""Figure 12: benefit of JIT task management over ballot-only and online-only
filtering for BFS, k-Core and SSSP.

Paper result (shape): JIT is on average 16x / 26x / 4.5x faster than the
ballot filter for BFS / k-Core / SSSP (the largest wins coming from the
high-diameter road graphs, where a ballot-only configuration pays a full
metadata scan per almost-empty iteration); the online filter alone cannot
complete the large skewed graphs because its bins overflow; JIT is never
much worse than the better of the two pure filters.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments, reporting
from repro.graph.datasets import HIGH_DIAMETER_GRAPHS


@pytest.mark.benchmark(group="figure12")
def test_figure12_jit_task_management(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.figure12, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(reporting.render_figure12(result))

    rows = result["rows"]
    averages = result["jit_speedup_over_ballot"]

    # JIT never loses much to the ballot-only configuration on average. The
    # paper reports 16x/26x/4.5x average wins; at the analogue scale the
    # metadata-scan cost that drives those wins is only microseconds, so the
    # reproduced effect is directional rather than order-of-magnitude (see
    # EXPERIMENTS.md for the discussion).
    for algorithm, ratio in averages.items():
        assert ratio > 0.95, (algorithm, ratio)

    # The win concentrates on the high-diameter road graphs, where the
    # ballot filter pays a full metadata scan per almost-empty iteration.
    road = set(HIGH_DIAMETER_GRAPHS) & set(ctx.datasets)
    for r in rows:
        if r["graph"] in road and r["algorithm"] in ("bfs", "sssp"):
            assert r["jit_speedup_vs_ballot"] > 1.0, r

    # The online-only configuration fails (bin overflow) on at least one of
    # the large skewed graphs, as the paper observes for FB/TW/UK.
    skewed = {"FB", "TW", "UK", "KR"} & set(ctx.datasets)
    if skewed:
        assert any(
            r["online_failed"] for r in rows
            if r["graph"] in skewed and r["algorithm"] == "bfs"
        )

    # Where the online filter does complete, JIT stays within ~20% of it
    # (the paper reports 1-2% overhead; the band is wider here because the
    # simulated runs are microseconds long).
    for r in rows:
        if r["online_ms"] and r["jit_ms"]:
            assert r["jit_ms"] <= 1.25 * r["online_ms"] + 1e-6, r

    # BFS's big-frontier middle phase executes in gather mode on the skewed
    # graphs - the direction machinery the filters cooperate with is real,
    # not a pricing flag.
    assert any(
        r["jit_pull_iterations"] > 0 for r in rows if r["algorithm"] == "bfs"
    )
