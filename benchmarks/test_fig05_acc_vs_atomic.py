"""Figure 5: speedup of the ACC (atomic-free) combine over atomic updates.

Paper result: ACC is on average ~12% faster for vote operations (BFS) and
~9% faster for aggregation operations (SSSP) than Gunrock's atomic-update
approach. The bench reproduces the per-graph speedup series and checks the
average falls in the same band (clearly above 1.0, well below 2.0).
"""

from __future__ import annotations

import pytest

from repro.bench import experiments, reporting


@pytest.mark.benchmark(group="figure5")
def test_figure5_acc_vs_atomic(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.figure5, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(reporting.render_figure5(result))

    averages = result["average_speedup"]
    # Shape checks: the atomic-free combine wins on both operation classes,
    # by a modest factor (the paper reports 1.12x and 1.09x).
    assert 1.0 < averages["vote"] < 2.0
    assert 1.0 < averages["aggregation"] < 2.0
    # Every individual graph is at least neutral (no slowdowns).
    assert all(r["speedup"] >= 0.95 for r in result["rows"])
