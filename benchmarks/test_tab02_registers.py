"""Table 2: register consumption and kernel-launch counts per fusion strategy.

Paper result: unfused kernels use 22-30 registers, the selectively fused
push/pull kernels 48/50, the all-fused kernel 110; kernel launches collapse
from up to 40,688 (4 per iteration, no fusion) to 3 (push-pull) and 1 (all).
"""

from __future__ import annotations

import pytest

from repro.bench import experiments, reporting


@pytest.mark.benchmark(group="table2")
def test_table2_registers_and_launches(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.table2, args=(ctx,),
        kwargs={"reference_graph": ctx.datasets[0]},
        rounds=1, iterations=1,
    )
    print()
    print(reporting.render_table2(result))

    registers = result["registers"]
    for group in ("push_no_fusion", "pull_no_fusion"):
        assert all(20 <= v <= 30 for v in registers[group].values())
    assert registers["selective_fusion"]["push"] == 48
    assert registers["selective_fusion"]["pull"] == 50
    assert registers["all_fusion"] == 110

    launches = result["launches"]
    assert launches, "measured launch counts missing"
    none = launches["none"]
    push_pull = launches["push_pull"]
    all_fusion = launches["all"]
    # 4 launches per iteration without fusion.
    assert none["kernel_launches"] == 4 * none["iterations"]
    # All-fusion launches exactly once.
    assert all_fusion["kernel_launches"] == 1
    # Push-pull fusion relaunches only at direction switches.
    assert push_pull["kernel_launches"] == push_pull["direction_switches"] + 1
    assert push_pull["kernel_launches"] <= 5
