"""Figure 13: benefit of push-pull based kernel fusion over no fusion and
aggressive (all) fusion for BFS, BP, k-Core, PageRank and SSSP.

Paper result (shape): push-pull fusion is on average ~43% faster than no
fusion and ~25% faster than all-fusion; the iteration-heavy traversal
algorithms (BFS, k-Core, SSSP) gain the most; all-fusion can be *slower*
than no fusion for PageRank because its register pressure halves occupancy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import experiments, reporting
from repro.core.metrics import geometric_mean_speedup


@pytest.mark.benchmark(group="figure13")
def test_figure13_push_pull_fusion(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.figure13, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(reporting.render_figure13(result))

    averages = result["average_speedups"]

    # Push-pull fusion beats no fusion on average for every algorithm.
    for algorithm, avg in averages.items():
        assert avg["push_pull_vs_none"] > 1.0, (algorithm, avg)

    # Push-pull fusion also beats all-fusion on average overall.
    push_pull_all = geometric_mean_speedup(
        [avg["push_pull_vs_none"] for avg in averages.values()]
    )
    all_fusion_all = geometric_mean_speedup(
        [avg["all_vs_none"] for avg in averages.values()]
    )
    assert push_pull_all > all_fusion_all

    # The iteration-heavy algorithms gain more from fusion than the
    # compute-heavy full-graph ones (BFS/SSSP/k-Core vs PageRank/BP).
    traversal_gain = np.mean(
        [averages[a]["push_pull_vs_none"] for a in ("bfs", "sssp", "kcore")
         if a in averages]
    )
    dense_gain = np.mean(
        [averages[a]["push_pull_vs_none"] for a in ("pagerank", "bp")
         if a in averages]
    )
    assert traversal_gain > dense_gain

    # All-fusion is not universally beneficial: on at least one
    # PageRank/BP configuration it fails to beat no fusion.
    dense_rows = [
        r for r in result["rows"] if r["algorithm"] in ("pagerank", "bp")
    ]
    assert any(
        r["all_fusion_speedup"] is not None and r["all_fusion_speedup"] < 1.05
        for r in dense_rows
    )

    # Push-pull fusion only exists because iterations really alternate
    # between scatter and gather execution: every algorithm runs at least
    # one genuine pull iteration somewhere in the sweep, and the selectively
    # fused kernel relaunches exactly once per executed direction phase
    # (switches + 1, the Table 2 launch rule).
    for algorithm in averages:
        assert any(
            r["pull_iterations"] > 0
            for r in result["rows"] if r["algorithm"] == algorithm
        ), algorithm
    for r in result["rows"]:
        if r["iterations"]:
            assert r["push_pull_launches"] == r["direction_switches"] + 1, r
