"""Split benefit: lane-aware direction selection vs decide-once batching.

The repository's second serving-oriented experiment (the first is
``test_batching_throughput.py``): ``SIMDXEngine.run_batch`` with lane-aware
direction selection (the default) against the PR-3 decide-once union
approximation, on the graph shapes where the two disagree - the road
analogues (ER, RC), whose union frontier crosses the pull threshold long
before any single lane would, and the RMAT-family synthetics (KR, RM) with
their barely-pruned SSSP gather tails. Claims checked (they back the
EXPERIMENTS.md §6 table and the "When splitting wins" section of
docs/batching.md):

* per-lane values are bit-identical between the two modes, always - the
  direction plan is a pure cost decision;
* on every road-shape SSSP configuration at K >= 16 the lane-aware batch
  scans strictly fewer in-edges than the decide-once batch (the PR-3 known
  limit this feature exists to close), and it never scans more in any
  completed cell;
* failures, if any, are Table-4-style OOMs of the K metadata arrays.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments
from repro.graph.datasets import HIGH_DIAMETER_GRAPHS


@pytest.mark.benchmark(group="batching")
def test_split_benefit(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.split_benefit, args=(ctx,), rounds=1, iterations=1
    )
    all_rows = result["rows"]
    assert all_rows

    for r in all_rows:
        if r["failed"]:
            assert "OOM" in r["failure_reason"], r
    rows = [r for r in all_rows if not r["failed"]]
    assert rows

    for r in rows:
        # The direction plan must never change results.
        assert r["values_identical"], r
        # Lane-aware selection never scans *more* gather edges than the
        # union approximation: per-lane decisions only remove in-edge
        # scans a lane would not have paid on its own.
        assert r["scanned_lane_aware"] <= r["scanned_decide_once"], r

    # The headline claim: on road shapes, SSSP at K >= 16 scans strictly
    # fewer in-edges under lane-aware selection (the union crosses the
    # pull threshold before any single lane would, so decide-once
    # over-scans there by construction).
    road_sssp = [
        r for r in rows
        if r["graph"] in HIGH_DIAMETER_GRAPHS
        and r["algorithm"] == "sssp" and r["lanes"] >= 16
    ]
    if road_sssp:
        for r in road_sssp:
            assert r["scanned_lane_aware"] < r["scanned_decide_once"], r
