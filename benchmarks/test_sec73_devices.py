"""Section 7.3: performance scaling across GPU generations (K20, K40, P100).

Paper result (shape): SIMD-X improves 1.7x moving from K20 to K40 and 5.1x
moving to P100, more than Gunrock (1.1x / 1.7x) and CuSha (1.2x / 3.5x),
because its fused kernels re-derive their CTA count from each device's
register file and so convert the larger machines into more resident threads.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments, reporting


@pytest.mark.benchmark(group="section7_3")
def test_section73_device_scaling(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.section7_3, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(reporting.render_section7_3(result))

    rows = {r["system"]: r for r in result["rows"]}

    # Every system gets faster on newer devices.
    for system, row in rows.items():
        speedups = row["speedup_vs_first"]
        assert speedups["K40"] >= 1.0, system
        assert speedups["P100"] > speedups["K40"], system

    # SIMD-X benefits from the newer devices. (The paper reports it scaling
    # *better* than the baselines; at the analogue scale SIMD-X's runtime is
    # dominated by per-iteration costs that shrink less with the device, so
    # the check here is directional - see EXPERIMENTS.md.)
    assert rows["simdx"]["speedup_vs_first"]["P100"] > 1.1

    # The mechanism: the fused kernel's configurable thread count grows with
    # the device (paper: 1.2x and 5.1x over K20 for K40 and P100).
    threads = result["simdx_configurable_threads"]
    assert threads["K20"] < threads["K40"] < threads["P100"]
    assert threads["P100"] / threads["K20"] > 3.0
