"""Serving latency under load: the EXPERIMENTS.md §9 sweep as a bench.

The discrete-event simulation of the serving layer (``src/repro/serve/``,
docs/serving.md) swept over ``max_wait_ms`` and offered load. Claims
checked (they back the §9 table):

* the simulation is deterministic - two runs produce identical rows
  (seeded arrivals, cached compositions, one reused engine);
* every query is accounted for: served + shed = offered, in every cell;
* under-load with the smallest ``max_wait_ms`` dispatches under-full
  batches (the latency knob costs fill), and no sweep cell beats the
  largest-wait setting's fill at the same load;
* the over-loaded column sheds (the bounded queue pushes back) - and
  shedding never happens while under-loaded;
* p99 never beats p50.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments


@pytest.mark.benchmark(group="serving")
def test_serving_latency(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.serving_latency, args=(ctx,), rounds=1, iterations=1
    )
    rows = result["rows"]
    assert len(rows) == (
        len(experiments.SERVING_WAIT_SWEEP_MS)
        * len(experiments.SERVING_LOAD_SWEEP)
    )

    for r in rows:
        assert r["served"] + r["shed"] == result["num_queries"], r
        assert r["p99_ms"] >= r["p50_ms"] > 0.0, r
        assert 0.0 < r["mean_fill"] <= 1.0, r
        if r["load_multiplier"] < 1.0:
            assert r["shed"] == 0, r

    # Fill is bought with waiting: at every load, no smaller-wait cell
    # fills better than the largest-wait setting.
    max_wait = max(experiments.SERVING_WAIT_SWEEP_MS)
    for load in experiments.SERVING_LOAD_SWEEP:
        at_load = [r for r in rows if r["load_multiplier"] == load]
        best = next(r for r in at_load if r["max_wait_ms"] == max_wait)
        for r in at_load:
            assert r["mean_fill"] <= best["mean_fill"] + 1e-9, (r, best)

    # Determinism: the second run reproduces the first, row for row.
    again = experiments.serving_latency(ctx)
    assert again["rows"] == rows
