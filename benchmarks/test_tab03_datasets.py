"""Table 3: the graph benchmark inventory.

Regenerates the dataset table with both the paper's original sizes and the
generated analogues, and checks the analogues preserve each graph's
structural class (skew for social graphs, high diameter for road networks,
uniformity for the random graph).
"""

from __future__ import annotations

import pytest

from repro.bench import experiments, reporting


@pytest.mark.benchmark(group="table3")
def test_table3_dataset_inventory(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.table3, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(reporting.render_table3(result))

    rows = {r["abbrev"]: r for r in result["rows"]}
    assert len(rows) == len(ctx.datasets)

    for abbrev, row in rows.items():
        assert row["analogue_vertices"] > 0
        assert row["analogue_edges"] > 0
        assert row["paper_vertices"] > row["analogue_vertices"]

    # Structural-class checks mirroring Section 6's description.
    if "ER" in rows and "FB" in rows:
        assert rows["ER"]["analogue_diameter_lb"] > 10 * rows["FB"]["analogue_diameter_lb"]
    if "RC" in rows:
        assert rows["RC"]["diameter_class"] == "high"
        assert rows["RC"]["max_degree"] <= 16
    for social in {"FB", "TW", "OR"} & set(rows):
        assert rows[social]["degree_gini"] > 0.3
    if "RD" in rows:
        assert rows["RD"]["degree_gini"] < 0.3
