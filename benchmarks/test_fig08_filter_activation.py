"""Figure 8: which iterations activate the ballot filter.

Paper result: BFS and SSSP use the ballot filter in the middle of the
computation and the online filter at the beginning and end; high-diameter
road graphs (ER, RC) never activate the ballot filter; k-Core ballots only in
its first iteration(s).
"""

from __future__ import annotations

import pytest

from repro.bench import experiments, reporting
from repro.graph.datasets import HIGH_DIAMETER_GRAPHS


@pytest.mark.benchmark(group="figure8")
def test_figure8_filter_activation_patterns(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.figure8, args=(ctx,), rounds=1, iterations=1
    )
    print()
    print(reporting.render_figure8(result))

    rows = result["rows"]

    def rows_for(algorithm):
        return [r for r in rows if r["algorithm"] == algorithm]

    # High-diameter graphs never need the ballot filter for BFS/SSSP.
    for algorithm in ("bfs", "sssp"):
        for r in rows_for(algorithm):
            if r["graph"] in set(HIGH_DIAMETER_GRAPHS) & set(ctx.datasets):
                assert not r["uses_ballot"], (algorithm, r["graph"])

    # On the skewed social graphs BFS does activate the ballot filter, and
    # the first and last iterations are handled by the online filter.
    skewed = [r for r in rows_for("bfs")
              if r["graph"] in {"FB", "TW", "OR", "LJ"} & set(ctx.datasets)]
    for r in skewed:
        assert r["uses_ballot"], r["graph"]
        assert r["online_iterations"] >= 0

    # k-Core's ballot activations (if any) are confined to the early
    # iterations - the big deletion wave happens at the start.
    for r in rows_for("kcore"):
        for iteration in r["ballot_iterations"]:
            assert iteration <= max(2, r["iterations"] // 2)

    # Road graphs take far more iterations than the social graphs (the
    # iteration counts annotated on Figure 8).
    if {"ER", "FB"} <= set(ctx.datasets):
        bfs_iters = {r["graph"]: r["iterations"] for r in rows_for("bfs")}
        assert bfs_iters["ER"] > 5 * bfs_iters["FB"]
