"""Shared fixtures for the benchmark suite.

A single session-scoped :class:`BenchmarkContext` is shared by every bench so
graphs and functional traces are generated once. The ``REPRO_BENCH_SCALE``
and ``REPRO_BENCH_DATASETS`` environment variables shrink the sweep for quick
smoke runs (e.g. ``REPRO_BENCH_DATASETS=LJ,RC pytest benchmarks/``).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import BenchmarkContext
from repro.graph.datasets import DATASET_ORDER


def _configured_context() -> BenchmarkContext:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    datasets_env = os.environ.get("REPRO_BENCH_DATASETS", "")
    if datasets_env.strip():
        datasets = tuple(
            d.strip().upper() for d in datasets_env.split(",") if d.strip()
        )
    else:
        datasets = tuple(DATASET_ORDER)
    device = os.environ.get("REPRO_BENCH_DEVICE", "K40")
    return BenchmarkContext(scale=scale, datasets=datasets, device=device)


@pytest.fixture(scope="session")
def ctx() -> BenchmarkContext:
    return _configured_context()
