"""Batched multi-source query throughput: K lanes versus a serial loop.

Not a paper artifact - this is the repository's first serving-oriented
experiment (ROADMAP "batching"): ``SIMDXEngine.run_batch`` answers K
BFS/SSSP queries through one union-frontier CSR walk per iteration, against
a baseline that runs the same K sources serially. The qualitative claims
checked here back the EXPERIMENTS.md §5 table and docs/batching.md:

* per-lane results are bit-identical to the K independent runs, always;
* the batch beats the serial loop for every K > 1 on every graph, and
  queries/sec improves strictly from K=1 to the largest completed K. The
  marginal cost of an extra ``(edge, lane)`` pair matches what the serial
  loop pays for the same edge minus the CSR walk, so batching can only
  lose per-iteration work to the union-direction approximation
  (docs/batching.md) - which the amortized fixed costs outweigh on every
  measured dataset. Adjacent-K steps are allowed a few percent of sag
  (direction-regime shifts at the union scale can move the peak); the
  committed EXPERIMENTS.md §5 baseline is strictly monotone;
* on the skewed graphs - where the K frontiers overlap heavily - the
  batch also walks strictly fewer edges than the (edge, lane) pairs it
  answers (the union amortization). High-diameter road graphs are exempt
  from the edge-count claim: their union frontier crosses the pull
  threshold earlier than any single lane would, so the batch may scan
  more in-edges while still winning on time through the amortized
  per-iteration fixed costs.
"""

from __future__ import annotations

import pytest

from repro.bench import experiments
from repro.graph.datasets import HIGH_DIAMETER_GRAPHS


@pytest.mark.benchmark(group="batching")
def test_batching_throughput(ctx, benchmark):
    result = benchmark.pedantic(
        experiments.batching_throughput, args=(ctx,), rounds=1, iterations=1
    )
    all_rows = result["rows"]
    assert all_rows

    # Failed cells may only be Table-4-style OOMs (K metadata arrays no
    # longer fit the modeled device at high lane counts).
    for r in all_rows:
        if r["failed"]:
            assert "OOM" in r["failure_reason"], r
    rows = [r for r in all_rows if not r["failed"]]
    assert rows

    # Every completed cell's per-lane values were verified against
    # independent runs.
    for r in rows:
        assert r["values_identical"], r

    for algorithm in {r["algorithm"] for r in rows}:
        for graph in {r["graph"] for r in rows if r["algorithm"] == algorithm}:
            cells = sorted(
                (r for r in rows
                 if r["algorithm"] == algorithm and r["graph"] == graph),
                key=lambda r: r["lanes"],
            )
            if len(cells) < 2:
                continue
            # Throughput improves with K: strictly end to end, with at
            # most a few percent of adjacent-K sag (see docstring).
            qps = [r["batch_qps"] for r in cells]
            assert qps[-1] > qps[0], (algorithm, graph, qps)
            assert all(b > 0.95 * a for a, b in zip(qps, qps[1:])), (
                algorithm, graph, qps
            )
            # The batch beats the serial loop for every K > 1, and on the
            # skewed graphs the union amortization is visible in the edge
            # counts (fewer edges walked than pairs answered).
            for r in cells:
                if r["lanes"] > 1:
                    assert r["speedup"] > 1.0, r
                    if r["graph"] not in HIGH_DIAMETER_GRAPHS:
                        assert r["union_edges"] < r["lane_edge_pairs"], r
