#!/usr/bin/env python
"""Compare a freshly-measured BENCH_*.json against a committed baseline.

The CI ``bench-regression`` job regenerates the wall-clock benchmark with
``python -m repro.bench.harness --emit-bench-json`` and feeds both files to
this tool, which enforces three gates:

1. **determinism** - the deterministic fields of every benchmark cell
   (iteration count, simulated time, scanned-edge counters) must match the
   baseline *exactly*; any drift means the engine's simulated behaviour
   changed and the baseline must be regenerated deliberately;
2. **vectorization sanity** - for every algorithm, the numpy backend must
   be measurably faster than the python loop backend (speedup > 1.1x) on
   at least one dataset. Kernel-bound cells (LJ) show 2-3x; tiny-frontier
   cells (RC/bfs) legitimately sit near parity because the swapped
   primitives are a sliver of the per-iteration cost, so the gate is
   per-algorithm, not per-cell;
3. **wall-clock regression** - per cell, the numpy-over-python speedup may
   not drop more than ``--tolerance`` (default 15%) below the baseline's.
   Speedup ratios are machine-portable where raw seconds are not, which is
   what makes a committed wall-clock baseline enforceable on CI runners.

Exit status is 0 when all gates pass, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: Fields of a benchmark entry that must match the baseline bit-for-bit.
DETERMINISTIC_FIELDS = (
    "iterations",
    "simulated_us",
    "kernel_launches",
    "kernel_edges_walked",
    "frontier_edges_total",
)


def load_record(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    for field in ("bench_id", "schema_version", "benchmarks"):
        if field not in record:
            raise ValueError(f"{path}: missing field {field!r}")
    return record


def index_benchmarks(record: Dict) -> Dict[Tuple[str, str], Dict]:
    return {
        (entry["dataset"], entry["algorithm"]): entry
        for entry in record["benchmarks"]
    }


def compare(baseline: Dict, candidate: Dict, *, tolerance: float) -> List[str]:
    """Return a list of human-readable gate failures (empty == pass)."""
    failures: List[str] = []
    if baseline["schema_version"] != candidate["schema_version"]:
        failures.append(
            f"schema_version mismatch: baseline "
            f"{baseline['schema_version']} vs candidate "
            f"{candidate['schema_version']}"
        )
        return failures
    base_index = index_benchmarks(baseline)
    cand_index = index_benchmarks(candidate)
    if set(base_index) != set(cand_index):
        missing = sorted(set(base_index) - set(cand_index))
        extra = sorted(set(cand_index) - set(base_index))
        failures.append(
            f"benchmark matrix mismatch: missing={missing} extra={extra}"
        )
        return failures
    best_by_algorithm: Dict[str, float] = {}
    for key in sorted(base_index):
        dataset, algorithm = key
        base, cand = base_index[key], cand_index[key]
        label = f"{dataset}/{algorithm}"
        for field in DETERMINISTIC_FIELDS:
            if base.get(field) != cand.get(field):
                failures.append(
                    f"{label}: deterministic field {field!r} drifted: "
                    f"baseline {base.get(field)} vs candidate "
                    f"{cand.get(field)}"
                )
        base_speedup = float(base["speedup_numpy_over_python"])
        cand_speedup = float(cand["speedup_numpy_over_python"])
        best_by_algorithm[algorithm] = max(
            best_by_algorithm.get(algorithm, 0.0), cand_speedup
        )
        floor = base_speedup * (1.0 - tolerance)
        if cand_speedup < floor:
            failures.append(
                f"{label}: wall-clock regression: speedup fell to "
                f"{cand_speedup:.2f}x, more than {tolerance:.0%} below the "
                f"baseline's {base_speedup:.2f}x (floor {floor:.2f}x)"
            )
    for algorithm, best in sorted(best_by_algorithm.items()):
        if best <= 1.1:
            failures.append(
                f"{algorithm}: numpy backend not measurably faster than the "
                f"python loop backend on any dataset (best speedup "
                f"{best:.2f}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("candidate", help="freshly measured BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative speedup drop (default 0.15)")
    args = parser.parse_args(argv)
    baseline = load_record(args.baseline)
    candidate = load_record(args.candidate)
    failures = compare(baseline, candidate, tolerance=args.tolerance)
    if failures:
        print(f"bench-compare: {len(failures)} gate failure(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    count = len(baseline["benchmarks"])
    print(
        f"bench-compare: OK - {count} benchmarks match "
        f"({args.baseline} vs {args.candidate}, "
        f"tolerance {args.tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
