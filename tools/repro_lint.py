#!/usr/bin/env python3
"""Run the repo-specific AST lint pass (repro.analysis.lint).

Usage:  PYTHONPATH=src python tools/repro_lint.py src tests benchmarks
        python tools/repro_lint.py --list-keys      # dump the extra-key registry
        python tools/repro_lint.py --list-rules     # dump the rule table

Exit status 0 when every linted file is clean, 1 otherwise. Rules scoped
to shipped code (unseeded-rng, acc-describe) apply only to files under a
directory named ``src``; see docs/static-analysis.md for the rule table
and the suppression syntax.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running straight from a checkout without PYTHONPATH=src.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis import registry  # noqa: E402
from repro.analysis.lint import RULE_NAMES, SRC_ONLY_RULES, lint_paths  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--list-keys", action="store_true",
        help="print the registered RunResult.extra keys and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the lint rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_keys:
        for name, key in sorted(registry.registered_keys().items()):
            flag = " [counter]" if key.monotone_counter else ""
            producers = ", ".join(key.producers) or "-"
            print(f"{name}{flag}  ({producers}): {key.description}")
        return 0
    if args.list_rules:
        for rule_id, name in sorted(RULE_NAMES.items()):
            scope = "src only" if rule_id in SRC_ONLY_RULES else "everywhere"
            print(f"{rule_id}  {name}  [{scope}]")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
