#!/usr/bin/env python3
"""Check that every ``src/repro/`` package is documented.

Usage:  python tools/docs_coverage.py [--repo ROOT]

A package counts as documented when its import path (``repro.serve``)
or its source path (``src/repro/serve``, ``serve/``) appears in at
least one Markdown page under ``docs/`` or in ``README.md``. The check
is deliberately shallow — it keeps the docs index honest (a new
subsystem cannot land without at least a pointer), it does not grade
prose quality.

Exit status 0 when every package is mentioned, 1 otherwise (the
missing packages are listed, one per line). CI's docs job runs this
after executing the doc code blocks.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path


def discover_packages(repo: Path) -> list:
    """Every directory under src/repro/ with an ``__init__.py``."""
    root = repo / "src" / "repro"
    return sorted(
        p.parent.relative_to(root).as_posix()
        for p in root.rglob("__init__.py")
        if p.parent != root
    )


def documentation_corpus(repo: Path) -> str:
    parts = []
    readme = repo / "README.md"
    if readme.is_file():
        parts.append(readme.read_text(encoding="utf-8"))
    docs = repo / "docs"
    if docs.is_dir():
        for page in sorted(docs.glob("*.md")):
            parts.append(page.read_text(encoding="utf-8"))
    return "\n".join(parts)


def mentioned(package: str, corpus: str) -> bool:
    """True when any accepted spelling of the package appears."""
    spellings = [
        f"repro.{package.replace('/', '.')}",   # import path
        f"src/repro/{package}",                 # repo path
        f"repro/{package}",                     # short repo path
    ]
    if "/" not in package:
        # Top-level packages are routinely cited as `serve/policy.py`
        # style module paths in docs/architecture.md.
        spellings.append(f"`{package}/")
        spellings.append(f"[`{package}/")
    pattern = "|".join(re.escape(s) for s in spellings)
    return re.search(pattern, corpus) is not None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo",
        default=str(Path(__file__).resolve().parent.parent),
        help="repository root (default: the checkout containing this tool)",
    )
    args = parser.parse_args(argv)
    repo = Path(args.repo)

    packages = discover_packages(repo)
    if not packages:
        print("docs_coverage: no packages found under src/repro/",
              file=sys.stderr)
        return 1

    corpus = documentation_corpus(repo)
    missing = [p for p in packages if not mentioned(p, corpus)]

    if missing:
        print("docs_coverage: packages with no mention in README.md or "
              "docs/*.md:", file=sys.stderr)
        for package in missing:
            print(f"  src/repro/{package}", file=sys.stderr)
        return 1

    print(f"docs_coverage: {len(packages)} package(s) documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
