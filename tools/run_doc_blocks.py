#!/usr/bin/env python3
"""Execute the ```python code blocks of a markdown document.

CI's docs job runs this against docs/batching.md so the documented
examples cannot rot: every fenced ``python`` block is executed in order,
in one shared namespace (so later blocks may build on earlier ones), and
any exception fails the run with the offending block echoed.

Usage:  PYTHONPATH=src python tools/run_doc_blocks.py docs/batching.md [more.md ...]
"""

from __future__ import annotations

import re
import sys

FENCE = re.compile(r"^```python\s*$")
CLOSE = re.compile(r"^```\s*$")


def extract_blocks(text: str) -> list:
    """Fenced ```python blocks, in document order."""
    blocks = []
    current = None
    for line in text.splitlines():
        if current is None:
            if FENCE.match(line):
                current = []
        elif CLOSE.match(line):
            blocks.append("\n".join(current) + "\n")
            current = None
        else:
            current.append(line)
    if current is not None:
        raise SystemExit("unterminated ```python fence")
    return blocks


def run_document(path: str) -> int:
    with open(path) as handle:
        blocks = extract_blocks(handle.read())
    if not blocks:
        print(f"{path}: no python blocks")
        return 0
    namespace: dict = {"__name__": f"docblock:{path}"}
    for index, block in enumerate(blocks, 1):
        try:
            exec(compile(block, f"{path}[block {index}]", "exec"), namespace)
        except Exception:
            sys.stderr.write(
                f"\n{path}: block {index} failed:\n\n{block}\n"
            )
            raise
        print(f"{path}: block {index} ok")
    return len(blocks)


def main(argv: list) -> None:
    if not argv:
        raise SystemExit(__doc__)
    total = 0
    for path in argv:
        total += run_document(path)
    print(f"{total} block(s) executed")


if __name__ == "__main__":
    main(sys.argv[1:])
