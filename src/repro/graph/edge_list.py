"""Edge-list (COO) graph representation.

CuSha and other ICU-style systems (Table 1 of the paper) consume graphs in
edge-list form rather than CSR. The paper highlights two consequences which
the :class:`EdgeListGraph` lets us reproduce:

* the edge list costs roughly twice the memory of CSR, so the CuSha-like
  baseline runs out of simulated device memory on the largest graphs
  (the blank cells of Table 4);
* edge-centric processing iterates over all edges each round regardless of
  how many vertices are active, which is why CuSha collapses on
  high-diameter graphs for SSSP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, WEIGHT_DTYPE


@dataclass
class EdgeListGraph:
    """COO representation: parallel ``sources`` / ``targets`` / ``weights``."""

    num_vertices: int
    sources: np.ndarray
    targets: np.ndarray
    weights: np.ndarray
    name: str = ""

    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "EdgeListGraph":
        """Expand a CSR graph to an edge list (as CuSha's loader would)."""
        edges = graph.to_edge_array()
        return cls(
            num_vertices=graph.num_vertices,
            sources=edges[:, 0].astype(np.int64),
            targets=edges[:, 1].astype(np.int64),
            weights=graph.out_csr.weights.astype(WEIGHT_DTYPE).copy(),
            name=graph.name,
        )

    @property
    def num_edges(self) -> int:
        return int(self.sources.shape[0])

    def nbytes(self) -> int:
        """Device bytes for the COO arrays (src, dst, weight per edge)."""
        return self.num_edges * (4 + 4 + 4)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        for s, t, w in zip(self.sources, self.targets, self.weights):
            yield int(s), int(t), float(w)

    def shards(self, num_shards: int) -> list[np.ndarray]:
        """Partition edge indices into CuSha-style shards by destination.

        CuSha groups edges into "G-shards" where each shard covers a
        contiguous range of destination vertices so that updates within a
        shard can be applied from shared memory. We reproduce the
        partitioning (by destination range) without the on-GPU layout.
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        num_shards = min(num_shards, max(1, self.num_vertices))
        bounds = np.linspace(0, self.num_vertices, num_shards + 1).astype(np.int64)
        shard_ids = np.searchsorted(bounds[1:], self.targets, side="right")
        return [np.nonzero(shard_ids == i)[0] for i in range(num_shards)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "graph"
        return f"EdgeListGraph({label!r}, |V|={self.num_vertices}, |E|={self.num_edges})"
