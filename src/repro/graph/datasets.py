"""Scaled-down analogues of the paper's graph benchmarks (Table 3).

The original graphs range up to 787 million edges; the paper's phenomena,
however, are driven by graph *class* (degree skew, diameter, density), not by
absolute size. Each entry here maps one Table-3 graph to a generator
configuration preserving that class, at a size that runs in seconds on a
laptop. ``scale`` multiplies the default sizes for users who want larger
runs.

=========  =====================  ==========================================
Abbrev.    Paper graph            Analogue
=========  =====================  ==========================================
FB         Facebook               power-law social graph, heavy tail
ER         Europe-osm             road lattice, diameter in the hundreds
KR         Kron24 (Graph500)      Kronecker graph
LJ         LiveJournal            power-law social graph
OR         Orkut                  denser power-law social graph
PK         Pokec                  smaller power-law social graph (directed)
RD         Random (GTgraph)       uniform random graph
RC         RoadCA-net             road lattice, smaller than ER
RM         R-MAT (GTgraph)        R-MAT graph
UK         UK-2002 web            small-world + power-law overlay (directed)
TW         Twitter                largest, most skewed power-law graph
=========  =====================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.graph.csr import CSRGraph
from repro.graph import generators as gen


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one dataset analogue.

    Attributes
    ----------
    abbrev:
        The paper's two-letter abbreviation (FB, ER, ...).
    paper_name:
        Full name used in Table 3.
    category:
        One of ``social``, ``road``, ``web``, ``synthetic``.
    paper_vertices / paper_edges:
        The original sizes from Table 3 (for the Table-3 reproduction bench).
    diameter_class:
        ``low`` (< 10), ``medium`` (10 - 30) or ``high`` (hundreds+), as the
        paper classifies graphs in Section 6.
    builder:
        Callable ``builder(scale) -> CSRGraph`` producing the analogue.
    directed:
        Whether the analogue is built as a directed graph.
    """

    abbrev: str
    paper_name: str
    category: str
    paper_vertices: int
    paper_edges: int
    diameter_class: str
    builder: Callable[[float], CSRGraph] = field(repr=False)
    directed: bool = False

    def build(self, scale: float = 1.0) -> CSRGraph:
        """Materialize the analogue graph at the given scale factor."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        graph = self.builder(scale)
        graph.name = self.abbrev
        graph.meta.update(
            {
                "paper_name": self.paper_name,
                "category": self.category,
                "diameter_class": self.diameter_class,
                "paper_vertices": self.paper_vertices,
                "paper_edges": self.paper_edges,
                "scale": scale,
            }
        )
        return graph


def _social(scale: float, *, vertices: int, avg_degree: float, exponent: float,
            seed: int, directed: bool = False) -> CSRGraph:
    n = max(64, int(vertices * scale))
    return gen.power_law_graph(
        n, avg_degree, exponent=exponent, seed=seed, directed=directed
    )


def _rmat(scale: float, *, base_scale: int, edge_factor: int, seed: int) -> CSRGraph:
    import math

    extra = int(round(math.log2(max(scale, 1e-9)))) if scale != 1.0 else 0
    s = max(6, base_scale + extra)
    return gen.rmat_graph(s, edge_factor, seed=seed)


def _kron(scale: float, *, base_scale: int, edge_factor: int, seed: int) -> CSRGraph:
    import math

    extra = int(round(math.log2(max(scale, 1e-9)))) if scale != 1.0 else 0
    s = max(6, base_scale + extra)
    return gen.kronecker_graph(s, edge_factor, seed=seed)


def _road(scale: float, *, rows: int, cols: int, seed: int) -> CSRGraph:
    factor = scale ** 0.5
    r = max(8, int(rows * factor))
    c = max(8, int(cols * factor))
    return gen.road_network_graph(r, c, seed=seed)


def _random(scale: float, *, vertices: int, edges: int, seed: int) -> CSRGraph:
    n = max(64, int(vertices * scale))
    m = max(n, int(edges * scale))
    return gen.random_uniform_graph(n, m, seed=seed)


def _web(scale: float, *, vertices: int, avg_degree: float, seed: int) -> CSRGraph:
    n = max(64, int(vertices * scale))
    return gen.web_graph(n, avg_degree, seed=seed)


DATASETS: Dict[str, DatasetSpec] = {
    "FB": DatasetSpec(
        "FB", "Facebook", "social", 16_777_215, 775_824_943, "low",
        lambda s: _social(s, vertices=12_000, avg_degree=46, exponent=2.0, seed=11),
    ),
    "ER": DatasetSpec(
        "ER", "Europe-osm", "road", 50_912_018, 108_109_319, "high",
        lambda s: _road(s, rows=160, cols=160, seed=12),
    ),
    "KR": DatasetSpec(
        "KR", "Kron24", "synthetic", 16_777_216, 536_870_911, "low",
        lambda s: _kron(s, base_scale=12, edge_factor=16, seed=13),
    ),
    "LJ": DatasetSpec(
        "LJ", "LiveJournal", "social", 4_847_571, 136_950_781, "medium",
        lambda s: _social(s, vertices=10_000, avg_degree=28, exponent=2.1, seed=14),
    ),
    "OR": DatasetSpec(
        "OR", "Orkut", "social", 3_072_626, 234_370_165, "low",
        lambda s: _social(s, vertices=8_000, avg_degree=76, exponent=2.2, seed=15),
    ),
    "PK": DatasetSpec(
        "PK", "Pokec", "social", 1_632_803, 61_245_127, "medium",
        lambda s: _social(s, vertices=6_000, avg_degree=37, exponent=2.2, seed=16,
                          directed=True),
        directed=True,
    ),
    "RD": DatasetSpec(
        "RD", "Random", "synthetic", 4_000_000, 511_999_999, "low",
        lambda s: _random(s, vertices=8_000, edges=256_000, seed=17),
    ),
    "RC": DatasetSpec(
        "RC", "RoadCA-net", "road", 1_971_281, 5_533_213, "high",
        lambda s: _road(s, rows=96, cols=96, seed=18),
    ),
    "RM": DatasetSpec(
        "RM", "R-MAT", "synthetic", 3_999_983, 511_999_999, "low",
        lambda s: _rmat(s, base_scale=12, edge_factor=32, seed=19),
    ),
    "UK": DatasetSpec(
        "UK", "UK-2002", "web", 18_520_343, 596_227_523, "medium",
        lambda s: _web(s, vertices=12_000, avg_degree=32, seed=20),
    ),
    "TW": DatasetSpec(
        "TW", "Twitter", "social", 25_165_811, 787_169_139, "low",
        lambda s: _social(s, vertices=16_000, avg_degree=50, exponent=1.9, seed=21),
    ),
}

#: Order in which the paper's figures list the graphs.
DATASET_ORDER: List[str] = ["FB", "ER", "KR", "LJ", "OR", "PK", "RD", "RC", "RM", "UK", "TW"]

#: The graphs the paper calls out as "large" (where CuSha / Gunrock hit OOM).
LARGE_GRAPHS: List[str] = ["FB", "KR", "RD", "RM", "UK", "TW"]

#: High-diameter graphs (online filter should win end to end on these).
HIGH_DIAMETER_GRAPHS: List[str] = ["ER", "RC"]

_CACHE: Dict[tuple, CSRGraph] = {}


def list_datasets() -> List[str]:
    """Return the dataset abbreviations in the paper's canonical order."""
    return list(DATASET_ORDER)


def load_dataset(abbrev: str, scale: float = 1.0, *, cache: bool = True) -> CSRGraph:
    """Build (or fetch from cache) the analogue for one Table-3 graph.

    Parameters
    ----------
    abbrev:
        Dataset abbreviation, case-insensitive (``"FB"``, ``"tw"``...).
    scale:
        Size multiplier; 1.0 gives the default laptop-scale graph.
    cache:
        Cache materialized graphs so experiment sweeps do not regenerate
        them. Graphs are immutable so sharing is safe.
    """
    key = abbrev.upper()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {abbrev!r}; known: {sorted(DATASETS)}")
    cache_key = (key, scale)
    if cache and cache_key in _CACHE:
        return _CACHE[cache_key]
    graph = DATASETS[key].build(scale)
    if cache:
        _CACHE[cache_key] = graph
    return graph


def clear_dataset_cache() -> None:
    """Drop all cached graphs (used by tests that measure generation)."""
    _CACHE.clear()
