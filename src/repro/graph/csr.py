"""Compressed Sparse Row (CSR) graph representation.

SIMD-X stores graphs in CSR format (Section 6, "Storage Format"): for
undirected graphs only the out-neighbour lists are stored, for directed
graphs both out- and in-neighbour CSR structures are kept so that push and
pull based processing are both possible. The in-neighbour structure of a
directed graph is the transpose of the out-neighbour structure; building it
costs a full sort of the edge set, so :class:`CSRGraph` constructs it
*lazily* on first access (and caches it) - a run that never executes a pull
iteration never pays for the transpose.

The representation here follows the paper's conventions:

* vertex identifiers are ``uint32``
* row offsets ("index") are ``uint64``
* edge weights are ``float32`` (randomly generated when a dataset has no
  native weights, as the paper does for SSSP)

A :class:`CSRGraph` is immutable after construction: every algorithm and
system in this repository treats it as read-only shared state, exactly like
graph data resident in GPU global memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

VERTEX_DTYPE = np.uint32
INDEX_DTYPE = np.uint64
WEIGHT_DTYPE = np.float32


class GraphFormatError(ValueError):
    """Raised when edge input cannot be converted into a valid CSR graph."""


@dataclass(frozen=True)
class CSRView:
    """A single-direction CSR adjacency structure.

    ``offsets`` has ``num_vertices + 1`` entries; the neighbours of vertex
    ``v`` are ``targets[offsets[v]:offsets[v + 1]]`` and their weights are
    ``weights[offsets[v]:offsets[v + 1]]``.
    """

    offsets: np.ndarray
    targets: np.ndarray
    weights: np.ndarray

    @property
    def num_vertices(self) -> int:
        return int(self.offsets.shape[0]) - 1

    @property
    def num_edges(self) -> int:
        return int(self.targets.shape[0])

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an int64 array."""
        return np.diff(self.offsets).astype(np.int64)

    def neighbors(self, v: int) -> np.ndarray:
        return self.targets[self.offsets[v]:self.offsets[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        return self.weights[self.offsets[v]:self.offsets[v + 1]]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(src, dst, weight)`` triples (slow; intended for tests)."""
        for v in range(self.num_vertices):
            lo, hi = int(self.offsets[v]), int(self.offsets[v + 1])
            for i in range(lo, hi):
                yield v, int(self.targets[i]), float(self.weights[i])


def _build_csr(
    num_vertices: int,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
) -> CSRView:
    """Build a sorted CSR view from COO arrays."""
    order = np.lexsort((targets, sources))
    sources = sources[order]
    targets = targets[order]
    weights = weights[order]
    counts = np.bincount(sources, minlength=num_vertices).astype(INDEX_DTYPE)
    offsets = np.zeros(num_vertices + 1, dtype=INDEX_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    return CSRView(
        offsets=offsets,
        targets=targets.astype(VERTEX_DTYPE),
        weights=weights.astype(WEIGHT_DTYPE),
    )


def transpose_csr(view: CSRView) -> CSRView:
    """Reverse (in-neighbour) CSR of ``view``.

    Row ``v`` of the result lists the vertices with an edge *into* ``v``,
    with the original edge weights. The construction sorts the edge set by
    (old target, old source), so transposing twice round-trips exactly and
    the per-row neighbour order is ascending - the property the engine's
    pull path relies on for bit-identical combines.
    """
    sources = np.repeat(
        np.arange(view.num_vertices, dtype=np.int64), view.degrees()
    )
    return _build_csr(
        view.num_vertices,
        view.targets.astype(np.int64),
        sources,
        view.weights,
    )


class CSRGraph:
    """A CSR graph with a lazily-built reverse (in-neighbour) structure.

    Parameters
    ----------
    out_csr:
        Out-neighbour CSR view (push direction).
    in_csr:
        In-neighbour CSR view (pull direction). For undirected graphs this is
        the same object as ``out_csr``; for directed graphs it may be omitted
        (``None``), in which case the transpose of ``out_csr`` is built on
        first access to :attr:`in_csr` and cached.
    directed:
        Whether the graph was constructed from directed edges.
    name:
        Optional human-readable name (dataset abbreviation).
    """

    def __init__(
        self,
        out_csr: CSRView,
        in_csr: Optional[CSRView] = None,
        directed: bool = False,
        name: str = "",
        meta: Optional[dict] = None,
    ):
        self.out_csr = out_csr
        self.directed = directed
        self.name = name
        self.meta = {} if meta is None else meta
        self._in_csr = in_csr

    @property
    def in_csr(self) -> CSRView:
        """In-neighbour CSR view (transpose), built lazily and cached."""
        if self._in_csr is None:
            if self.directed:
                self._in_csr = transpose_csr(self.out_csr)
            else:
                self._in_csr = self.out_csr
        return self._in_csr

    @property
    def in_csr_built(self) -> bool:
        """Whether the in-neighbour view exists without forcing its build."""
        return self._in_csr is not None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Sequence[Tuple[int, int]] | np.ndarray,
        weights: Optional[Sequence[float] | np.ndarray] = None,
        *,
        directed: bool = False,
        name: str = "",
        weight_seed: Optional[int] = None,
        dedup: bool = True,
        allow_self_loops: bool = False,
    ) -> "CSRGraph":
        """Build a graph from an edge list.

        Undirected graphs are symmetrized (each input edge is stored in both
        directions). Duplicate edges are removed by default (keeping the
        smallest weight), matching the preprocessing the paper applies.
        When ``weights`` is None, weights are drawn uniformly from [1, 64)
        with ``weight_seed`` so results are reproducible, mirroring the
        paper's random weight generation for unweighted graphs.
        """
        if num_vertices <= 0:
            raise GraphFormatError("graph must contain at least one vertex")

        edges_arr = np.asarray(edges, dtype=np.int64)
        if edges_arr.size == 0:
            edges_arr = edges_arr.reshape(0, 2)
        if edges_arr.ndim != 2 or edges_arr.shape[1] != 2:
            raise GraphFormatError("edges must be an (E, 2) array of (src, dst)")

        src = edges_arr[:, 0]
        dst = edges_arr[:, 1]
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise GraphFormatError("vertex ids must be non-negative")
        if src.size and (src.max() >= num_vertices or dst.max() >= num_vertices):
            raise GraphFormatError("vertex id exceeds num_vertices")

        if weights is None:
            rng = np.random.default_rng(weight_seed if weight_seed is not None else 0)
            w = rng.integers(1, 64, size=src.shape[0]).astype(WEIGHT_DTYPE)
        else:
            w = np.asarray(weights, dtype=WEIGHT_DTYPE)
            if w.shape[0] != src.shape[0]:
                raise GraphFormatError("weights length must equal edge count")
            if w.size and np.any(w < 0):
                raise GraphFormatError("edge weights must be non-negative")

        if not allow_self_loops and src.size:
            keep = src != dst
            src, dst, w = src[keep], dst[keep], w[keep]

        if not directed and src.size:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
            w = np.concatenate([w, w])

        if dedup and src.size:
            src, dst, w = _dedup_edges(num_vertices, src, dst, w)

        out_csr = _build_csr(num_vertices, src, dst, w)
        # Directed graphs leave the in-CSR unset: the transpose is built
        # lazily on first pull-direction access (see the in_csr property).
        in_csr = None if directed else out_csr
        return cls(out_csr=out_csr, in_csr=in_csr, directed=directed, name=name)

    @classmethod
    def empty(cls, num_vertices: int, *, directed: bool = False, name: str = "") -> "CSRGraph":
        """A graph with vertices but no edges."""
        return cls.from_edges(num_vertices, np.zeros((0, 2), dtype=np.int64),
                              weights=np.zeros(0, dtype=WEIGHT_DTYPE),
                              directed=directed, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.out_csr.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edges, i.e. 2x the undirected count."""
        return self.out_csr.num_edges

    def out_degree(self, v: int) -> int:
        return self.out_csr.degree(v)

    def in_degree(self, v: int) -> int:
        return self.in_csr.degree(v)

    def out_degrees(self) -> np.ndarray:
        return self.out_csr.degrees()

    def in_degrees(self) -> np.ndarray:
        return self.in_csr.degrees()

    def out_neighbors(self, v: int) -> np.ndarray:
        return self.out_csr.neighbors(v)

    def in_neighbors(self, v: int) -> np.ndarray:
        return self.in_csr.neighbors(v)

    def out_weights(self, v: int) -> np.ndarray:
        return self.out_csr.neighbor_weights(v)

    def in_weights(self, v: int) -> np.ndarray:
        return self.in_csr.neighbor_weights(v)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        return self.out_csr.edges()

    def max_degree(self) -> int:
        degs = self.out_degrees()
        return int(degs.max()) if degs.size else 0

    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # Memory accounting (used by the OOM model of the baselines)
    # ------------------------------------------------------------------
    def csr_bytes(self) -> int:
        """Bytes needed to hold the CSR structures as the paper lays them out.

        ``uint64`` offsets, ``uint32`` neighbour ids and ``float32`` weights;
        directed graphs hold both directions. The transpose has exactly the
        shape of the out-view, so the footprint is computed without forcing
        the lazy in-CSR build.
        """
        directions = 2 if self.directed else 1
        view = self.out_csr
        per_direction = (
            view.offsets.shape[0] * 8
            + view.targets.shape[0] * 4
            + view.weights.shape[0] * 4
        )
        return directions * per_direction

    def edge_list_bytes(self) -> int:
        """Bytes for an edge-list (COO) copy: (src, dst, weight) per edge.

        This is what CuSha-style systems require and is roughly 2x the CSR
        footprint, which drives the simulated OOM failures in Table 4.
        """
        return self.num_edges * (4 + 4 + 4)

    # ------------------------------------------------------------------
    # Modeled (paper-scale) sizes
    # ------------------------------------------------------------------
    @property
    def modeled_num_vertices(self) -> int:
        """Vertex count used for memory-feasibility modelling.

        Dataset analogues carry the original paper graph's size in ``meta``
        (see :mod:`repro.graph.datasets`); memory-capacity decisions (which
        system OOMs on which graph, Table 4) are made against those original
        sizes while the functional execution and timing use the scaled-down
        analogue. Graphs without the annotation use their actual size.
        """
        return int(self.meta.get("paper_vertices", self.num_vertices))

    @property
    def modeled_num_edges(self) -> int:
        """Edge count used for memory-feasibility modelling (see above)."""
        return int(self.meta.get("paper_edges", self.num_edges))

    def modeled_csr_bytes(self) -> int:
        """CSR footprint at the modeled (paper) scale."""
        directions = 2 if self.directed else 1
        per_direction = self.modeled_num_vertices * 8 + self.modeled_num_edges * (4 + 4)
        return directions * per_direction

    def modeled_edge_list_bytes(self, bytes_per_edge: int = 12) -> int:
        """Edge-list footprint at the modeled (paper) scale."""
        return self.modeled_num_edges * bytes_per_edge

    def modeled_edge_scale(self) -> float:
        """Ratio of modeled to actual edge count (>= 1 for analogues)."""
        if self.num_edges == 0:
            return 1.0
        return self.modeled_num_edges / self.num_edges

    # ------------------------------------------------------------------
    # Conversions / misc
    # ------------------------------------------------------------------
    def to_edge_array(self) -> np.ndarray:
        """Return an (E, 2) int64 array of stored directed edges."""
        srcs = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.out_degrees()
        )
        return np.stack([srcs, self.out_csr.targets.astype(np.int64)], axis=1)

    def reversed(self) -> "CSRGraph":
        """Return a graph with edge directions flipped (no-op if undirected)."""
        if not self.directed:
            return self
        return CSRGraph(
            out_csr=self.in_csr,
            in_csr=self.out_csr,
            directed=True,
            name=self.name + "_rev" if self.name else "",
            meta=dict(self.meta),
        )

    def validate(self) -> None:
        """Raise :class:`GraphFormatError` if internal invariants are broken."""
        for label, view in (("out", self.out_csr), ("in", self.in_csr)):
            if view.offsets[0] != 0:
                raise GraphFormatError(f"{label} offsets must start at 0")
            if int(view.offsets[-1]) != view.targets.shape[0]:
                raise GraphFormatError(f"{label} offsets end must equal edge count")
            if np.any(np.diff(view.offsets.astype(np.int64)) < 0):
                raise GraphFormatError(f"{label} offsets must be non-decreasing")
            if view.targets.size and view.targets.max() >= self.num_vertices:
                raise GraphFormatError(f"{label} neighbour id out of range")
            if view.targets.shape[0] != view.weights.shape[0]:
                raise GraphFormatError(f"{label} weights length mismatch")
        if self.out_csr.num_edges != self.in_csr.num_edges:
            raise GraphFormatError("out and in edge counts differ")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        label = self.name or "graph"
        return (
            f"CSRGraph({label!r}, {kind}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )


def _dedup_edges(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    w: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Remove duplicate (src, dst) pairs keeping the minimum weight."""
    keys = src.astype(np.int64) * num_vertices + dst.astype(np.int64)
    order = np.lexsort((w, keys))
    keys_sorted = keys[order]
    first = np.ones(keys_sorted.shape[0], dtype=bool)
    first[1:] = keys_sorted[1:] != keys_sorted[:-1]
    keep = order[first]
    keep.sort()
    return src[keep], dst[keep], w[keep]


def union_graph(graphs: Iterable[CSRGraph], name: str = "union") -> CSRGraph:
    """Union several graphs over the same vertex set (used in tests)."""
    graphs = list(graphs)
    if not graphs:
        raise GraphFormatError("union_graph requires at least one graph")
    n = graphs[0].num_vertices
    if any(g.num_vertices != n for g in graphs):
        raise GraphFormatError("all graphs must share the vertex count")
    directed = any(g.directed for g in graphs)
    edge_arrays = []
    weight_arrays = []
    for g in graphs:
        edge_arrays.append(g.to_edge_array())
        weight_arrays.append(g.out_csr.weights)
    edges = np.concatenate(edge_arrays, axis=0)
    weights = np.concatenate(weight_arrays, axis=0)
    return CSRGraph.from_edges(
        n, edges, weights, directed=True if directed else False, name=name
    )
