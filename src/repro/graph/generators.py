"""Synthetic graph generators.

The paper evaluates on four graph classes (Table 3): social networks,
road maps, hyperlink webs and synthetic R-MAT / Kronecker / uniform graphs.
We cannot ship the original multi-hundred-million-edge datasets, so the
dataset registry (:mod:`repro.graph.datasets`) builds scaled-down analogues
from the generators in this module. Each generator documents which
structural property it preserves and why that property matters for the
experiments.

All generators are deterministic given a ``seed`` argument.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph


def _finalize(
    num_vertices: int,
    edges: np.ndarray,
    *,
    directed: bool,
    name: str,
    seed: Optional[int],
) -> CSRGraph:
    return CSRGraph.from_edges(
        num_vertices,
        edges,
        directed=directed,
        name=name,
        weight_seed=seed,
    )


# ----------------------------------------------------------------------
# Simple fixtures (mostly for tests and examples)
# ----------------------------------------------------------------------
def chain_graph(num_vertices: int, *, name: str = "chain", seed: int = 0) -> CSRGraph:
    """A path graph ``0 - 1 - ... - (n-1)``: the highest possible diameter."""
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    src = np.arange(num_vertices - 1, dtype=np.int64)
    edges = np.stack([src, src + 1], axis=1)
    return _finalize(num_vertices, edges, directed=False, name=name, seed=seed)


def star_graph(num_leaves: int, *, name: str = "star", seed: int = 0) -> CSRGraph:
    """A hub with ``num_leaves`` spokes: the most skewed degree distribution."""
    if num_leaves < 1:
        raise ValueError("num_leaves must be >= 1")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    edges = np.stack([np.zeros_like(leaves), leaves], axis=1)
    return _finalize(num_leaves + 1, edges, directed=False, name=name, seed=seed)


def complete_graph(num_vertices: int, *, name: str = "complete", seed: int = 0) -> CSRGraph:
    """Every pair connected: uniform maximal degree, diameter one."""
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    idx = np.arange(num_vertices, dtype=np.int64)
    src, dst = np.meshgrid(idx, idx, indexing="ij")
    mask = src < dst
    edges = np.stack([src[mask], dst[mask]], axis=1)
    return _finalize(num_vertices, edges, directed=False, name=name, seed=seed)


def grid_graph(rows: int, cols: int, *, name: str = "grid", seed: int = 0) -> CSRGraph:
    """A 2-D lattice; the building block of road-network analogues."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    n = rows * cols
    ids = np.arange(n, dtype=np.int64).reshape(rows, cols)
    horiz = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vert = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    edges = np.concatenate([horiz, vert], axis=0)
    return _finalize(n, edges, directed=False, name=name, seed=seed)


# ----------------------------------------------------------------------
# R-MAT / Kronecker: skewed power-law graphs (social / synthetic classes)
# ----------------------------------------------------------------------
def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 1,
    directed: bool = False,
    name: str = "rmat",
) -> CSRGraph:
    """Recursive-MATrix generator (Chakrabarti et al., SDM'04).

    ``2**scale`` vertices and roughly ``edge_factor * 2**scale`` edges with a
    heavy-tailed degree distribution. The Graph500 Kronecker generator the
    paper uses for KR is the special case with the standard (0.57, 0.19,
    0.19, 0.05) probabilities, exposed as :func:`kronecker_graph`.

    Skewed degrees are what make workload balancing matter: the medium and
    large worklists of SIMD-X, and the ballot-filter activation in the middle
    of BFS, only appear on graphs of this class.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if edge_factor < 1:
        raise ValueError("edge_factor must be >= 1")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must be <= 1")

    n = 1 << scale
    m = edge_factor * n
    rng = np.random.default_rng(seed)

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Standard bit-by-bit R-MAT recursion, vectorised across all edges.
    for bit in range(scale):
        r = rng.random(m)
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        go_down = r >= a + b
        src = (src << 1) | go_down.astype(np.int64)
        dst = (dst << 1) | go_right.astype(np.int64)

    # Permute vertex ids so that degree is not correlated with id, as the
    # Graph500 reference generator does.
    perm = rng.permutation(n).astype(np.int64)
    src = perm[src]
    dst = perm[dst]
    edges = np.stack([src, dst], axis=1)
    return _finalize(n, edges, directed=directed, name=name, seed=seed)


def kronecker_graph(
    scale: int,
    edge_factor: int = 16,
    *,
    seed: int = 2,
    directed: bool = False,
    name: str = "kron",
) -> CSRGraph:
    """Graph500-style Kronecker graph (R-MAT with the Graph500 parameters)."""
    return rmat_graph(
        scale,
        edge_factor,
        a=0.57,
        b=0.19,
        c=0.19,
        seed=seed,
        directed=directed,
        name=name,
    )


def power_law_graph(
    num_vertices: int,
    average_degree: float,
    *,
    exponent: float = 2.1,
    seed: int = 3,
    directed: bool = False,
    name: str = "powerlaw",
) -> CSRGraph:
    """Configuration-model power-law graph.

    Used for the social-network analogues where we want explicit control of
    the tail exponent (Facebook / LiveJournal / Orkut / Pokec / Twitter all
    have exponents near 2, with a handful of celebrity vertices whose degree
    dwarfs the average - precisely the vertices the CTA worklist exists for).
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be >= 2")
    rng = np.random.default_rng(seed)
    # Draw degrees from a bounded Pareto distribution.
    u = rng.random(num_vertices)
    x_min = 1.0
    x_max = max(2.0, num_vertices / 8)
    alpha = exponent - 1.0
    degrees = (
        x_min
        * (1 - u * (1 - (x_min / x_max) ** alpha)) ** (-1.0 / alpha)
    )
    degrees = degrees / degrees.mean() * average_degree
    degrees = np.maximum(1, np.round(degrees)).astype(np.int64)
    stubs = np.repeat(np.arange(num_vertices, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    if stubs.shape[0] % 2:
        stubs = stubs[:-1]
    half = stubs.shape[0] // 2
    edges = np.stack([stubs[:half], stubs[half:]], axis=1)
    return _finalize(num_vertices, edges, directed=directed, name=name, seed=seed)


# ----------------------------------------------------------------------
# Uniform random (RD analogue)
# ----------------------------------------------------------------------
def random_uniform_graph(
    num_vertices: int,
    num_edges: int,
    *,
    seed: int = 4,
    directed: bool = False,
    name: str = "random",
) -> CSRGraph:
    """Erdos-Renyi-style uniform random graph.

    Uniform degrees mean workload balancing brings little benefit, which is
    why the paper's RD graph is the one case where Galois beats SIMD-X; the
    dataset analogue preserves this property.
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be >= 2")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    edges = np.stack([src, dst], axis=1)
    return _finalize(num_vertices, edges, directed=directed, name=name, seed=seed)


# ----------------------------------------------------------------------
# Road networks (ER / RC analogues): high diameter, tiny degrees
# ----------------------------------------------------------------------
def road_network_graph(
    rows: int,
    cols: int,
    *,
    extra_edge_fraction: float = 0.05,
    removal_fraction: float = 0.05,
    seed: int = 5,
    name: str = "road",
) -> CSRGraph:
    """Perturbed 2-D lattice resembling a road map.

    Road graphs (Europe-osm, RoadCA) have near-constant degree (2-4) and
    diameters in the hundreds or thousands; BFS/SSSP run thousands of nearly
    empty iterations on them, which is exactly the regime where the online
    filter wins and the ballot filter's full metadata scans dominate runtime
    (Figure 8 and Figure 12). A lattice with a few shortcuts added and a few
    edges removed reproduces both the degree profile and the high diameter.
    """
    base = grid_graph(rows, cols, name=name, seed=seed)
    rng = np.random.default_rng(seed)
    edges = base.to_edge_array()
    # Keep each undirected edge once (src < dst) before perturbation.
    mask = edges[:, 0] < edges[:, 1]
    edges = edges[mask]

    if removal_fraction > 0 and edges.shape[0] > 0:
        keep = rng.random(edges.shape[0]) >= removal_fraction
        edges = edges[keep]

    n = rows * cols
    n_extra = int(extra_edge_fraction * edges.shape[0])
    if n_extra > 0:
        # Shortcuts connect nearby vertices only (local bypass roads), so the
        # diameter stays high.
        base_v = rng.integers(0, n, size=n_extra, dtype=np.int64)
        offset = rng.integers(1, max(2, cols // 8), size=n_extra, dtype=np.int64)
        extra = np.stack([base_v, np.minimum(n - 1, base_v + offset)], axis=1)
        edges = np.concatenate([edges, extra], axis=0)

    graph = _finalize(n, edges, directed=False, name=name, seed=seed)
    return graph


def small_world_graph(
    num_vertices: int,
    k: int = 4,
    rewire_probability: float = 0.05,
    *,
    seed: int = 6,
    name: str = "smallworld",
) -> CSRGraph:
    """Watts-Strogatz small-world graph (ring lattice with rewiring).

    Used as the UK-2002 web-graph analogue together with an R-MAT overlay:
    webs combine locally dense link structure with a modest diameter
    (10 - 30 in the paper's classification).
    """
    if num_vertices < 3:
        raise ValueError("num_vertices must be >= 3")
    if k < 2 or k % 2:
        raise ValueError("k must be an even integer >= 2")
    rng = np.random.default_rng(seed)
    ids = np.arange(num_vertices, dtype=np.int64)
    edge_blocks = []
    for offset in range(1, k // 2 + 1):
        dst = (ids + offset) % num_vertices
        edge_blocks.append(np.stack([ids, dst], axis=1))
    edges = np.concatenate(edge_blocks, axis=0)
    rewire = rng.random(edges.shape[0]) < rewire_probability
    edges[rewire, 1] = rng.integers(0, num_vertices, size=int(rewire.sum()))
    return _finalize(num_vertices, edges, directed=False, name=name, seed=seed)


def web_graph(
    num_vertices: int,
    average_degree: float = 16.0,
    *,
    seed: int = 7,
    name: str = "web",
) -> CSRGraph:
    """Hyperlink-web analogue: power-law overlay on a small-world backbone."""
    backbone = small_world_graph(
        num_vertices, k=4, rewire_probability=0.02, seed=seed, name=name
    )
    overlay = power_law_graph(
        num_vertices,
        max(1.0, average_degree - 4.0),
        exponent=2.2,
        seed=seed + 1,
        name=name,
    )
    edges = np.concatenate([backbone.to_edge_array(), overlay.to_edge_array()], axis=0)
    return _finalize(num_vertices, edges, directed=False, name=name, seed=seed)


def two_level_graph(
    num_clusters: int,
    cluster_size: int,
    inter_cluster_edges: int,
    *,
    seed: int = 8,
    name: str = "clustered",
) -> CSRGraph:
    """Clusters of dense subgraphs joined by sparse bridges.

    Useful for k-Core and WCC tests where the expected result is known by
    construction (each cluster survives k-core pruning; bridges do not).
    """
    if num_clusters < 1 or cluster_size < 2:
        raise ValueError("need at least one cluster of size >= 2")
    rng = np.random.default_rng(seed)
    n = num_clusters * cluster_size
    blocks = []
    idx = np.arange(cluster_size, dtype=np.int64)
    src_local, dst_local = np.meshgrid(idx, idx, indexing="ij")
    mask = src_local < dst_local
    local_edges = np.stack([src_local[mask], dst_local[mask]], axis=1)
    for c in range(num_clusters):
        blocks.append(local_edges + c * cluster_size)
    edges = np.concatenate(blocks, axis=0)
    if num_clusters > 1 and inter_cluster_edges > 0:
        a = rng.integers(0, n, size=inter_cluster_edges, dtype=np.int64)
        b = rng.integers(0, n, size=inter_cluster_edges, dtype=np.int64)
        edges = np.concatenate([edges, np.stack([a, b], axis=1)], axis=0)
    return _finalize(n, edges, directed=False, name=name, seed=seed)
