"""Graph property measurements.

These helpers validate that the synthetic dataset analogues really exhibit
the structural class their paper counterparts have (skew for the social
graphs, high diameter for the road graphs, uniformity for RD) and provide the
statistics used by the Table-3 reproduction bench.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DegreeStats:
    """Summary of the out-degree distribution."""

    min: int
    max: int
    mean: float
    median: float
    p99: float
    gini: float

    @property
    def skew_ratio(self) -> float:
        """max / mean degree: > ~50 indicates a power-law-like tail."""
        return self.max / self.mean if self.mean else 0.0


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute degree-distribution summary statistics."""
    degs = graph.out_degrees()
    if degs.size == 0:
        return DegreeStats(0, 0, 0.0, 0.0, 0.0, 0.0)
    sorted_degs = np.sort(degs)
    n = sorted_degs.shape[0]
    cum = np.cumsum(sorted_degs, dtype=np.float64)
    total = cum[-1]
    if total == 0:
        gini = 0.0
    else:
        # Standard Gini coefficient of the degree distribution.
        gini = float((n + 1 - 2 * (cum / total).sum()) / n)
    return DegreeStats(
        min=int(sorted_degs[0]),
        max=int(sorted_degs[-1]),
        mean=float(sorted_degs.mean()),
        median=float(np.median(sorted_degs)),
        p99=float(np.percentile(sorted_degs, 99)),
        gini=gini,
    )


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Vectorized level-synchronous BFS; -1 marks unreachable vertices."""
    n = graph.num_vertices
    levels = np.full(n, -1, dtype=np.int64)
    if not (0 <= source < n):
        raise ValueError("source out of range")
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    offsets = graph.out_csr.offsets.astype(np.int64)
    targets = graph.out_csr.targets.astype(np.int64)
    while frontier.size:
        level += 1
        starts = offsets[frontier]
        ends = offsets[frontier + 1]
        counts = ends - starts
        if counts.sum() == 0:
            break
        idx = np.concatenate([np.arange(s, e) for s, e in zip(starts, ends) if e > s]) \
            if counts.size else np.zeros(0, dtype=np.int64)
        neighbors = targets[idx]
        new = np.unique(neighbors[levels[neighbors] < 0])
        if new.size == 0:
            break
        levels[new] = level
        frontier = new
    return levels


def eccentricity_estimate(graph: CSRGraph, source: int = 0) -> int:
    """Max BFS level from ``source`` (a lower bound on the diameter)."""
    levels = bfs_levels(graph, source)
    reachable = levels[levels >= 0]
    return int(reachable.max()) if reachable.size else 0


def diameter_estimate(graph: CSRGraph, num_sweeps: int = 4, seed: int = 0) -> int:
    """Double-sweep diameter lower bound.

    Starts from a random vertex, repeatedly jumps to the farthest vertex
    found, and returns the largest eccentricity seen. Exact diameters are
    unnecessary - the paper only distinguishes low / medium / high classes.
    """
    if graph.num_vertices == 0:
        return 0
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, graph.num_vertices))
    best = 0
    current = start
    for _ in range(max(1, num_sweeps)):
        levels = bfs_levels(graph, current)
        reachable = np.nonzero(levels >= 0)[0]
        if reachable.size == 0:
            break
        ecc = int(levels[reachable].max())
        best = max(best, ecc)
        current = int(reachable[np.argmax(levels[reachable])])
    return best


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Weakly-connected component label per vertex (treats edges undirected)."""
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = current
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.out_neighbors(v):
                u = int(u)
                if labels[u] < 0:
                    labels[u] = current
                    queue.append(u)
            if graph.directed:
                for u in graph.in_neighbors(v):
                    u = int(u)
                    if labels[u] < 0:
                        labels[u] = current
                        queue.append(u)
        current += 1
    return labels


def largest_component_fraction(graph: CSRGraph) -> float:
    """Fraction of vertices in the largest weakly-connected component."""
    if graph.num_vertices == 0:
        return 0.0
    labels = connected_components(graph)
    counts = np.bincount(labels)
    return float(counts.max() / graph.num_vertices)


def summarize(graph: CSRGraph) -> Dict[str, object]:
    """One-line-per-field summary used by the Table-3 bench and examples."""
    stats = degree_stats(graph)
    return {
        "name": graph.name,
        "directed": graph.directed,
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "avg_degree": round(graph.average_degree(), 2),
        "max_degree": stats.max,
        "degree_gini": round(stats.gini, 3),
        "diameter_lb": diameter_estimate(graph, num_sweeps=2),
        "csr_mb": round(graph.csr_bytes() / 2**20, 3),
        "edge_list_mb": round(graph.edge_list_bytes() / 2**20, 3),
    }
