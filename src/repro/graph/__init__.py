"""Graph substrate: data structures, generators, datasets and utilities.

This subpackage provides everything SIMD-X and the baseline systems need to
represent and produce graph workloads:

* :mod:`repro.graph.csr` -- the compressed-sparse-row graph used by SIMD-X,
  Gunrock-like and CPU baselines (out-CSR always, in-CSR for directed graphs
  so that both push and pull traversal are possible).
* :mod:`repro.graph.edge_list` -- the COO / edge-list representation required
  by the CuSha-like baseline (and used to demonstrate its 2x memory cost).
* :mod:`repro.graph.generators` -- synthetic generators (R-MAT, Kronecker,
  uniform random, road lattice, small-world, and simple fixtures).
* :mod:`repro.graph.datasets` -- the Table-3 analogue registry, scaled down
  to laptop size but preserving the structural class of each paper graph.
* :mod:`repro.graph.properties` -- degree statistics, diameter estimation and
  connectivity helpers used to validate the generators.
* :mod:`repro.graph.io` -- save/load in .npz and a simple text format.
"""

from repro.graph.csr import CSRGraph
from repro.graph.edge_list import EdgeListGraph
from repro.graph.generators import (
    chain_graph,
    complete_graph,
    grid_graph,
    kronecker_graph,
    random_uniform_graph,
    rmat_graph,
    road_network_graph,
    small_world_graph,
    star_graph,
)
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset, list_datasets

__all__ = [
    "CSRGraph",
    "EdgeListGraph",
    "chain_graph",
    "complete_graph",
    "grid_graph",
    "kronecker_graph",
    "random_uniform_graph",
    "rmat_graph",
    "road_network_graph",
    "small_world_graph",
    "star_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "list_datasets",
]
