"""Graph persistence: save and load CSR graphs.

Two formats are provided:

* a compact binary ``.npz`` container (NumPy arrays for both CSR directions)
  for fast reload of generated datasets between benchmark runs;
* a plain-text edge list (``src dst weight`` per line, ``#`` comments)
  compatible with SNAP-style downloads, so users can plug in real graphs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.csr import CSRGraph, CSRView, GraphFormatError

PathLike = Union[str, os.PathLike]

_FORMAT_VERSION = 1


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Write a graph to a ``.npz`` file (both CSR directions and metadata)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        directed=np.bool_(graph.directed),
        name=np.str_(graph.name),
        out_offsets=graph.out_csr.offsets,
        out_targets=graph.out_csr.targets,
        out_weights=graph.out_csr.weights,
        in_offsets=graph.in_csr.offsets,
        in_targets=graph.in_csr.targets,
        in_weights=graph.in_csr.weights,
    )


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise GraphFormatError(
                f"unsupported graph file version {version}; expected {_FORMAT_VERSION}"
            )
        directed = bool(data["directed"])
        name = str(data["name"])
        out_csr = CSRView(
            offsets=data["out_offsets"],
            targets=data["out_targets"],
            weights=data["out_weights"],
        )
        if directed:
            in_csr = CSRView(
                offsets=data["in_offsets"],
                targets=data["in_targets"],
                weights=data["in_weights"],
            )
        else:
            in_csr = out_csr
    graph = CSRGraph(out_csr=out_csr, in_csr=in_csr, directed=directed, name=name)
    graph.validate()
    return graph


def save_edge_list_text(graph: CSRGraph, path: PathLike) -> None:
    """Write stored directed edges as ``src dst weight`` text lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    edges = graph.to_edge_array()
    weights = graph.out_csr.weights
    with open(path, "w", encoding="utf-8") as f:
        f.write(f"# repro edge list: name={graph.name} directed={graph.directed}\n")
        f.write(f"# vertices={graph.num_vertices} edges={graph.num_edges}\n")
        for (s, d), w in zip(edges, weights):
            f.write(f"{int(s)} {int(d)} {float(w):g}\n")


def load_edge_list_text(
    path: PathLike,
    *,
    directed: bool = False,
    num_vertices: int | None = None,
    name: str = "",
) -> CSRGraph:
    """Parse a SNAP-style text edge list into a :class:`CSRGraph`.

    Lines are ``src dst [weight]``; missing weights default to 1. When
    ``num_vertices`` is omitted it is inferred as ``max id + 1``.
    """
    sources, targets, weights = [], [], []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: expected 'src dst [weight]'")
            try:
                s, d = int(parts[0]), int(parts[1])
                w = float(parts[2]) if len(parts) > 2 else 1.0
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from exc
            sources.append(s)
            targets.append(d)
            weights.append(w)

    if not sources:
        return CSRGraph.empty(num_vertices or 1, directed=directed, name=name)

    edges = np.stack(
        [np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)],
        axis=1,
    )
    n = num_vertices if num_vertices is not None else int(edges.max()) + 1
    return CSRGraph.from_edges(
        n, edges, np.asarray(weights), directed=directed, name=name
    )
