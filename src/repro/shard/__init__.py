"""Sharded multi-device execution (``EngineConfig(num_shards=N)``).

``partition`` cuts the CSR into contiguous, edge-balanced vertex
ranges; ``executor`` runs the engine's superstep loop across one
simulated device per range, exchanging only boundary updates at the
per-superstep merge and staying bit-identical to single-device runs.
"""

from repro.shard.partition import ShardPlan

__all__ = ["ShardPlan"]
