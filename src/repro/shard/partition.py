"""Contiguous vertex-range partitioning of a CSR graph.

A :class:`ShardPlan` cuts the vertex id space ``[0, N)`` into
``num_shards`` contiguous ranges, balanced by *out-edge* count: shard
boundaries are placed on the cumulative out-degree curve, so a skewed
graph gets narrow ranges around its hubs and wide ranges over its
low-degree tail. Contiguity is what makes sharded execution cheap to
keep bit-identical to a single device:

* a sorted global worklist splits into per-shard slices with two binary
  searches per shard (no scatter, no reordering);
* concatenating per-shard update streams in shard order preserves the
  global source-ascending order the ACC Combine contract relies on;
* ownership lookups are a single ``searchsorted`` against the range
  stops.

Every edge is classified exactly once: *local* when its source and
destination fall in the same range, *boundary* otherwise. Boundary
edges are the ones whose updates cross devices at the per-superstep
merge step; their count is the plan's static estimate of exchange
traffic.

The plan also pre-computes per-shard *modeled* (paper-scale) vertex and
edge counts by rounding the modeled totals onto the same cut points, so
per-shard device allocations reproduce the Table-4 memory-feasibility
behaviour at 1/num_shards scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class ShardPlan:
    """Vertex-range shards of one graph, built by :meth:`build`."""

    num_shards: int
    num_vertices: int
    #: ``starts[t]:stops[t]`` is shard t's owned vertex range; the ranges
    #: tile ``[0, num_vertices)`` exactly (``stops[t] == starts[t + 1]``).
    starts: np.ndarray
    stops: np.ndarray
    #: Out-edges owned by each shard (edges whose *source* lies in the
    #: range) - the denominator of the shard's local direction selector.
    out_edge_counts: np.ndarray
    #: Edges fully inside one range vs. edges crossing ranges, attributed
    #: to the source's shard. ``local + boundary == out_edge_counts``.
    local_edge_counts: np.ndarray
    boundary_edge_counts: np.ndarray
    #: Paper-scale vertex/edge counts per shard (prefix-rounded so they
    #: sum exactly to the graph's modeled totals).
    modeled_vertices: np.ndarray
    modeled_edges: np.ndarray

    @classmethod
    def build(cls, graph, num_shards: int) -> "ShardPlan":
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        n = int(graph.num_vertices)
        degrees = np.asarray(graph.out_degrees(), dtype=np.int64)
        cum = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=cum[1:])
        total_edges = int(cum[-1])

        if total_edges > 0:
            # Cut the cumulative out-degree curve at the even edge
            # quantiles. A vertex's edges are never split across shards,
            # so each shard overshoots its quota by at most one vertex's
            # degree (the balance bound the property tests pin).
            targets = (
                np.arange(1, num_shards, dtype=np.float64)
                * total_edges / num_shards
            )
            cuts = np.searchsorted(cum, targets, side="left")
        else:
            # Degenerate edge-free graph: fall back to even vertex ranges.
            cuts = np.floor(
                np.arange(1, num_shards, dtype=np.float64) * n / num_shards
            ).astype(np.int64)
        cuts = np.clip(cuts, 0, n)
        # Monotone cut sequence even when quantiles collapse (num_shards
        # larger than the vertex count leaves trailing empty ranges).
        cuts = np.maximum.accumulate(cuts)
        starts = np.concatenate(([0], cuts)).astype(np.int64)
        stops = np.concatenate((cuts, [n])).astype(np.int64)

        out_edge_counts = cum[stops] - cum[starts]

        # Classify every edge exactly once, attributed to its source shard.
        local = np.zeros(num_shards, dtype=np.int64)
        if total_edges > 0:
            src_owner = np.repeat(
                np.arange(num_shards, dtype=np.int64),
                np.asarray(stops - starts, dtype=np.int64),
            )
            edge_src_owner = np.repeat(src_owner, degrees)
            edge_dst_owner = np.searchsorted(
                stops, graph.out_csr.targets, side="right"
            )
            np.add.at(
                local,
                edge_src_owner[edge_src_owner == edge_dst_owner],
                1,
            )
        boundary = out_edge_counts - local

        modeled_n = int(graph.modeled_num_vertices)
        modeled_e = int(graph.modeled_num_edges)
        mv = cls._prefix_round(starts, stops, n, modeled_n)
        if total_edges > 0:
            me = cls._prefix_round(cum[starts], cum[stops], total_edges, modeled_e)
        else:
            me = cls._prefix_round(starts, stops, n, modeled_e)

        return cls(
            num_shards=num_shards,
            num_vertices=n,
            starts=starts,
            stops=stops,
            out_edge_counts=np.asarray(out_edge_counts, dtype=np.int64),
            local_edge_counts=local,
            boundary_edge_counts=np.asarray(boundary, dtype=np.int64),
            modeled_vertices=mv,
            modeled_edges=me,
        )

    @staticmethod
    def _prefix_round(
        lo: np.ndarray, hi: np.ndarray, actual_total: int, modeled_total: int
    ) -> np.ndarray:
        """Scale per-shard ``[lo, hi)`` spans to the modeled total.

        Rounding the *prefix* (not each span) keeps the per-shard counts
        non-negative and summing exactly to ``modeled_total``.
        """
        if actual_total <= 0:
            out = np.zeros(len(lo), dtype=np.int64)
            if len(out):
                out[-1] = modeled_total
            return out
        scale = modeled_total / actual_total
        pre_lo = np.floor(np.asarray(lo, dtype=np.float64) * scale)
        pre_hi = np.floor(np.asarray(hi, dtype=np.float64) * scale)
        return (pre_hi - pre_lo).astype(np.int64)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Shard index owning each vertex id."""
        return np.searchsorted(self.stops, vertices, side="right")

    def split_sorted(self, vertices: np.ndarray) -> List[np.ndarray]:
        """Per-shard slices of a *sorted* vertex array.

        Because ranges are contiguous and tile ``[0, N)``, the slices are
        contiguous views in shard order - concatenating them back yields
        the input array.
        """
        bounds = np.searchsorted(vertices, self.starts)
        ends = np.concatenate((bounds[1:], [len(vertices)]))
        return [
            vertices[bounds[t]:ends[t]] for t in range(self.num_shards)
        ]

    def vertex_counts(self) -> np.ndarray:
        return self.stops - self.starts
