"""Sharded multi-device execution of the SIMD-X superstep loop.

:class:`ShardedExecutor` runs ``SIMDXEngine.run`` / ``run_batch``
semantics across ``EngineConfig.num_shards`` simulated devices, one per
contiguous vertex range of a :class:`~repro.shard.partition.ShardPlan`.
Each shard owns its range's metadata (and lane-metadata) slice, its own
device + memory budget, fusion plan, JIT task-management stream and
direction selector - direction is decided per shard on the shard's own
frontier slice, so one superstep may mix push and pull shards.

A superstep runs in two phases so results stay **bit-identical** to the
single-device engine:

1. **Compute** - every shard expands against *iteration-start*
   metadata. Push-mode destinations are produced by a scatter pass
   (each shard with frontier vertices walks its local out-edges, keeps
   the edges whose destination owner is push-mode, and routes the valid
   updates to the owner's buffer - local or boundary); pull-mode
   destinations are produced by the owning shard's gather pass over its
   slice of the gather candidates (in-edges whose source may live on a
   remote shard - a boundary read). Then each algorithm instance's
   frontier hook fires exactly once, like on one device.
2. **Merge + apply** - each shard drains its buffers in source-shard
   order through the engine's Combine + apply tail. Because shards are
   contiguous ranges of a sorted frontier and in-CSR rows are sorted by
   source, every destination's combine stream is in global
   source-ascending order - exactly the order the single-device push
   *and* pull paths produce, which is what makes the ACC ordering
   invariants (and bit-identity) hold across shards.

The next frontier derives globally (``recorded ∩ active`` plus the
convergence re-seed), identical to the single-device worklist. Costs
are charged per shard through the engine's shared iteration tail; a
superstep's elapsed time is the *max* over shards (devices run
concurrently) including a per-shard boundary-merge kernel charge.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis import registry as extra_keys
from repro.analysis.sanitizer import RuntimeSanitizer
from repro.core.direction import Direction, DirectionSelector
from repro.core.engine import _ExpansionResult
from repro.core.filters import FilterMode, FilterOverflowError, make_filter
from repro.core.frontier import LANES_PER_WORD, BatchedFrontier
from repro.core.fusion import FusionPlan
from repro.core.jit import JITTaskManager
from repro.core.metrics import BatchRunResult, IterationRecord, RunResult
from repro.gpu import memory as gmem
from repro.gpu.device import DeviceOutOfMemory, GPUDevice
from repro.gpu.kernel import Kernel, KernelLaunch, WorkEstimate
from repro.shard.partition import ShardPlan

#: The per-superstep exchange kernel: each shard scatters the boundary
#: updates it received into its local combine buffers.
BOUNDARY_MERGE_KERNEL = Kernel("shard_boundary_merge", 24)

#: Modeled bytes per exchanged boundary update: destination id (8) plus
#: the update value (8), staged in a transient receive buffer.
BOUNDARY_UPDATE_BYTES = 16

#: Staging cap for the exchange: boundary updates drain through a
#: double-buffered chunk of at most this size, so the transient receive
#: buffer never scales past a fixed footprint even when a superstep
#: crosses hundreds of millions of modeled edges (the merge *work* still
#: scales with the full update count - only the resident staging memory
#: is bounded, as in any chunked device-to-device exchange).
EXCHANGE_CHUNK_BYTES = 256 * 1024 * 1024


class _Shard:
    """Per-shard execution state: device, filter stream, selector."""

    __slots__ = (
        "index", "start", "stop", "device", "fusion_plan", "barrier",
        "jit", "standalone_filter", "selector", "sortedness",
        "scanned_edges",
    )

    def __init__(self, index: int, start: int, stop: int):
        self.index = index
        self.start = start
        self.stop = stop
        self.sortedness = 1.0
        self.scanned_edges = 0


class ShardedExecutor:
    """Runs one engine's configuration across vertex-range shards."""

    def __init__(self, engine):
        self.engine = engine
        self.graph = engine.graph
        self.config = engine.config
        self.plan = ShardPlan.build(engine.graph, engine.config.num_shards)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    @property
    def device_name(self) -> str:
        return f"{self.engine.device.spec.name}x{self.plan.num_shards}"

    def _make_shards(self, start_direction: Direction) -> List[_Shard]:
        engine = self.engine
        cfg = self.config
        shards: List[_Shard] = []
        for t in range(self.plan.num_shards):
            sh = _Shard(t, int(self.plan.starts[t]), int(self.plan.stops[t]))
            sh.device = GPUDevice(
                engine.device.spec, memory_scale=engine.device.memory_scale
            )
            sh.fusion_plan = FusionPlan(
                cfg.fusion, threads_per_cta=cfg.threads_per_cta
            )
            sh.barrier = engine._make_barrier(
                device=sh.device, fusion_plan=sh.fusion_plan
            )
            sh.jit = None
            sh.standalone_filter = None
            if cfg.filter_mode == FilterMode.JIT:
                sh.jit = JITTaskManager(
                    overflow_threshold=cfg.overflow_threshold,
                    shadow_online=cfg.shadow_online,
                )
            else:
                sh.standalone_filter = make_filter(
                    cfg.filter_mode, online_capacity=cfg.overflow_threshold
                )
            sh.selector = DirectionSelector(
                total_edges=int(self.plan.out_edge_counts[t]),
                to_pull_threshold=cfg.to_pull_threshold,
                to_push_threshold=cfg.to_push_threshold,
                start_direction=start_direction,
            )
            shards.append(sh)
        return shards

    def _allocate(
        self, shards: List[_Shard], num_lanes: Optional[int] = None
    ) -> None:
        """Resident per-shard allocations, modeled at paper scale.

        Mirrors the single-device engine's allocation set - CSR slice,
        metadata (or K lane-metadata rows) and worklists - each sized on
        the shard's prefix-rounded share of the modeled graph, so the
        Table-4 memory-feasibility behaviour reproduces at 1/num_shards
        scale per device.
        """
        directions = 2 if self.graph.directed else 1
        for t, sh in enumerate(shards):
            mv = int(self.plan.modeled_vertices[t])
            me = int(self.plan.modeled_edges[t])
            sh.device.malloc(
                directions * (mv * 8 + me * 8), label="csr_graph"
            )
            if num_lanes is None:
                sh.device.malloc(2 * mv * 8, label="metadata")
                sh.device.malloc(3 * mv * 4, label="worklists")
            else:
                num_words = -(-num_lanes // LANES_PER_WORD)
                sh.device.malloc(
                    2 * num_lanes * mv * 8, label="metadata_lanes"
                )
                sh.device.malloc(
                    3 * mv * 4 + mv * num_words * 8, label="worklists"
                )

    def _plan_directions(
        self, shards: List[_Shard], shard_out_edges: List[int], iteration: int
    ) -> List[Direction]:
        cfg = self.config
        engine = self.engine
        directions = []
        for t, sh in enumerate(shards):
            if cfg.direction_auto:
                directions.append(sh.selector.decide(shard_out_edges[t]))
            else:
                directions.append(sh.selector.force(
                    engine._forced_direction(
                        iteration, sh.selector.start_direction
                    )
                ))
        return directions

    def _push_owner_mask(self, directions: List[Direction]) -> np.ndarray:
        mask = np.zeros(self.graph.num_vertices, dtype=bool)
        for t, direction in enumerate(directions):
            if direction is Direction.PUSH:
                mask[self.plan.starts[t]:self.plan.stops[t]] = True
        return mask

    def _charge_boundary_merge(
        self, sh: _Shard, received: int, shard_us: np.ndarray
    ) -> None:
        """Charge shard ``sh`` for draining ``received`` boundary updates.

        The receive buffer is a transient allocation (modeled at paper
        scale like every other edge-proportional buffer) and the merge
        itself is one scatter-dominated kernel on the receiving device.
        """
        if received <= 0:
            return
        buffer_alloc = sh.device.malloc(
            min(
                int(
                    received * BOUNDARY_UPDATE_BYTES
                    * self.graph.modeled_edge_scale()
                ),
                EXCHANGE_CHUNK_BYTES,
            ),
            label="boundary_updates",
        )
        work = WorkEstimate(
            scattered_transactions=gmem.metadata_scatter_transactions(received),
            compute_ops=float(received),
        )
        result = sh.device.launch(KernelLaunch(
            kernel=BOUNDARY_MERGE_KERNEL,
            work=work,
            num_ctas=max(
                1, -(-received // BOUNDARY_MERGE_KERNEL.threads_per_cta)
            ),
        ))
        shard_us[sh.index] += result.total_us
        sh.device.free(buffer_alloc)

    def _emit_record(
        self,
        sh: _Shard,
        *,
        algorithm,
        direction: Direction,
        worklist: np.ndarray,
        classifier,
        expansion: _ExpansionResult,
        active_mask: np.ndarray,
        frontier_vertices: int,
        iteration: int,
        success_rate: float,
        lane_pairs: int = 0,
        active_lanes: int = 0,
        shard_us: Optional[np.ndarray] = None,
    ) -> IterationRecord:
        """One per-shard iteration record through the engine's shared tail."""
        engine = self.engine
        classified = classifier.classify(worklist)
        (
            filter_result, filter_name,
            compute_us, launch_us, filter_us, barrier_us,
        ) = engine._finish_iteration(
            algorithm=algorithm,
            classified=classified,
            classifier=classifier,
            direction=direction,
            sortedness=sh.sortedness,
            expansion=expansion,
            active_mask=active_mask,
            frontier=worklist,
            jit=sh.jit,
            standalone_filter=sh.standalone_filter,
            iteration=iteration,
            barrier=sh.barrier,
            success_rate=success_rate,
            extra_lane_pairs=max(0, lane_pairs - expansion.active_edges),
            device=sh.device,
            fusion_plan=sh.fusion_plan,
        )
        sh.sortedness = (
            filter_result.sortedness if filter_result.worklist.size else 1.0
        )
        if shard_us is not None:
            shard_us[sh.index] += (
                compute_us + launch_us + filter_us + barrier_us
            )
        record = IterationRecord(
            iteration=iteration,
            direction=direction.value,
            frontier_vertices=frontier_vertices,
            frontier_edges=int(classified.total_edges),
            filter_used=filter_name,
            filter_overflowed=filter_result.overflowed,
            compute_us=compute_us,
            filter_us=filter_us,
            barrier_us=barrier_us,
            launch_us=launch_us,
            active_edges=int(expansion.active_edges),
            lane_edge_pairs=int(lane_pairs),
            active_lanes=int(active_lanes),
        )
        sh.scanned_edges += record.frontier_edges
        return record

    def _success_rate(self, sh: _Shard, updatable_mean) -> float:
        """Pre-arm success rate for a shard's push record (cost only)."""
        if (
            sh.jit is not None
            and sh.jit.last_direction is Direction.PULL
        ):
            return updatable_mean()
        return 1.0

    def _shared_extra(self, shards: List[_Shard], boundary_updates: int) -> dict:
        cfg = self.config
        breakdown: Dict[str, float] = {}
        for sh in shards:
            for key, value in sh.device.profiler.breakdown().items():
                breakdown[key] = breakdown.get(key, 0.0) + value
        pre_armed = set()
        for sh in shards:
            if sh.jit is not None:
                pre_armed.update(sh.jit.pre_armed_iterations())
        return {
            extra_keys.FUSION: cfg.fusion.value,
            extra_keys.FILTER_MODE: cfg.filter_mode.value,
            extra_keys.DIRECTION_SWITCHES: sum(
                sh.selector.switches() for sh in shards
            ),
            extra_keys.BREAKDOWN: breakdown,
            extra_keys.JIT_PRE_ARMED_ITERATIONS: sorted(pre_armed),
            extra_keys.KERNEL_BACKEND: cfg.kernel_backend,
            extra_keys.KERNEL_EDGES_WALKED: int(
                self.engine._kernel_edges_walked
            ),
            extra_keys.SHARDS: self.plan.num_shards,
            extra_keys.SHARD_BOUNDARY_UPDATES: int(boundary_updates),
            extra_keys.SHARD_SCANNED_EDGES: [
                int(sh.scanned_edges) for sh in shards
            ],
            extra_keys.SHARD_PEAK_BYTES: [
                int(sh.device.profiler.peak_allocated_bytes) for sh in shards
            ],
        }

    # ------------------------------------------------------------------
    # Single-source run
    # ------------------------------------------------------------------
    def run(self, algorithm, **params) -> RunResult:
        engine = self.engine
        graph = self.graph

        def failure(reason: str) -> RunResult:
            return RunResult.failure(
                engine.SYSTEM_NAME, algorithm.name, graph.name, reason,
                device=self.device_name,
            )

        start_direction = (
            Direction.PULL if algorithm.starts_in_pull else Direction.PUSH
        )
        shards = self._make_shards(start_direction)
        try:
            self._allocate(shards)
        except DeviceOutOfMemory as exc:
            return failure(f"OOM: {exc}")

        sanitizer: Optional[RuntimeSanitizer] = None
        if self.config.sanitize:
            sanitizer = RuntimeSanitizer(
                graph, raise_on_violation=self.config.sanitize_raise
            )
        try:
            return self._run_loop(algorithm, shards, sanitizer, **params)
        except DeviceOutOfMemory as exc:
            return failure(f"OOM: {exc}")
        except FilterOverflowError as exc:
            return failure(f"online filter overflow: {exc}")
        finally:
            if sanitizer is not None:
                sanitizer.release()
            for sh in shards:
                sh.device.reset_memory()

    def _run_loop(
        self,
        algorithm,
        shards: List[_Shard],
        sanitizer: Optional[RuntimeSanitizer],
        **params,
    ) -> RunResult:
        engine = self.engine
        cfg = self.config
        graph = self.graph
        plan = self.plan
        n = graph.num_vertices
        num_shards = plan.num_shards

        state = algorithm.init(graph, **params)
        metadata = np.asarray(state.metadata, dtype=np.float64).copy()
        frontier = np.unique(np.asarray(state.frontier, dtype=np.int64))

        if sanitizer is not None:
            algorithm = sanitizer.wrap(algorithm, lane=0)
            sanitizer.freeze_graph()

        max_iterations = (
            cfg.max_iterations if cfg.max_iterations is not None
            else algorithm.max_iterations
        )
        records: List[IterationRecord] = []
        filter_trace: List[str] = []
        direction_trace: List[str] = []
        boundary_updates = 0
        total_us = 0.0
        iteration = 0

        while frontier.size and iteration < max_iterations:
            iteration += 1
            prev_metadata = metadata.copy()
            if sanitizer is not None:
                sanitizer.begin_superstep(iteration, metadata)
            shard_us = np.zeros(num_shards, dtype=np.float64)

            shard_frontiers = plan.split_sorted(frontier)
            shard_out_edges = [
                engine.classifier.edge_count(f) for f in shard_frontiers
            ]
            frontier_out_edges = sum(shard_out_edges)
            directions = self._plan_directions(
                shards, shard_out_edges, iteration
            )
            any_push = any(d is Direction.PUSH for d in directions)
            any_pull = any(d is Direction.PULL for d in directions)
            dst_is_push = (
                self._push_owner_mask(directions) if any_push else None
            )

            # Pull shards gather at their slice of the global candidate
            # worklist (pruned by gather_mask on iteration-start metadata,
            # exactly as one device would prune it).
            shard_candidates: List[np.ndarray] = [
                np.zeros(0, dtype=np.int64)
            ] * num_shards
            if any_pull:
                candidates = engine._gather_candidates(
                    algorithm, metadata, frontier
                )
                shard_candidates = plan.split_sorted(candidates)

            # ---------------- phase 1: compute --------------------------
            # All Compute evaluations read iteration-start metadata; the
            # valid (non-NaN) updates are routed to their destination
            # owner's pending buffer, per source shard in ascending order.
            pending: List[List[Tuple[np.ndarray, np.ndarray]]] = [
                [] for _ in range(num_shards)
            ]
            received_boundary = np.zeros(num_shards, dtype=np.int64)
            scatter_jobs: Dict[int, dict] = {}
            gather_jobs: Dict[int, dict] = {}
            in_frontier: Optional[np.ndarray] = None

            if any_push:
                out_csr = graph.out_csr
                for s in range(num_shards):
                    f_s = shard_frontiers[s]
                    if f_s.size == 0:
                        continue
                    slot, edge_idx, total = engine._walk(out_csr, f_s)
                    job = {
                        "edges_expanded": total,
                        "active_edges": 0,
                        "recorded": np.zeros(0, dtype=np.int64),
                        "producers": np.zeros(0, dtype=np.int64),
                        "num_workers": int(f_s.size),
                    }
                    scatter_jobs[s] = job
                    if total == 0:
                        continue
                    dst = out_csr.targets[edge_idx].astype(np.int64)
                    keep = dst_is_push[dst]
                    if not keep.all():
                        slot = slot[keep]
                        dst = dst[keep]
                        edge_idx = edge_idx[keep]
                    job["active_edges"] = int(dst.size)
                    if dst.size == 0:
                        continue
                    src = f_s[slot]
                    weights = out_csr.weights[edge_idx].astype(np.float64)
                    updates = np.asarray(
                        algorithm.compute_edges(
                            metadata[src], weights, metadata[dst],
                            src, dst, graph,
                        ),
                        dtype=np.float64,
                    )
                    valid = ~np.isnan(updates)
                    if not valid.all():
                        slot = slot[valid]
                        dst = dst[valid]
                        updates = updates[valid]
                    job["recorded"] = dst
                    job["producers"] = slot
                    if dst.size == 0:
                        continue
                    owner = plan.owner_of(dst)
                    remote = owner != s
                    boundary_updates += int(remote.sum())
                    for t in np.unique(owner):
                        t = int(t)
                        member = owner == t
                        pending[t].append((updates[member], dst[member]))
                        if t != s:
                            received_boundary[t] += int(member.sum())

            if any_pull:
                in_csr = graph.in_csr
                in_frontier = engine.kernel.membership_mask(frontier, n)
                for t in range(num_shards):
                    if directions[t] is not Direction.PULL:
                        continue
                    cand_t = shard_candidates[t]
                    if cand_t.size == 0 and shard_frontiers[t].size == 0:
                        continue
                    dst_slot, edge_idx, total = engine._walk(
                        in_csr, cand_t
                    )
                    job = {
                        "edges_expanded": total,
                        "active_edges": 0,
                        "recorded": np.zeros(0, dtype=np.int64),
                        "producers": np.zeros(0, dtype=np.int64),
                        "num_workers": 0,
                        "candidates": cand_t,
                    }
                    gather_jobs[t] = job
                    if total == 0:
                        continue
                    dst = cand_t[dst_slot]
                    src = in_csr.targets[edge_idx].astype(np.int64)
                    keep = in_frontier[src]
                    if not keep.all():
                        dst_slot = dst_slot[keep]
                        dst = dst[keep]
                        src = src[keep]
                        edge_idx = edge_idx[keep]
                    job["active_edges"] = int(src.size)
                    if src.size == 0:
                        continue
                    weights = in_csr.weights[edge_idx].astype(np.float64)
                    updates = np.asarray(
                        algorithm.gather_edges(
                            metadata[src], weights, metadata[dst],
                            src, dst, graph,
                        ),
                        dtype=np.float64,
                    )
                    valid = ~np.isnan(updates)
                    if not valid.all():
                        dst_slot = dst_slot[valid]
                        dst = dst[valid]
                        src = src[valid]
                        updates = updates[valid]
                    if dst.size == 0:
                        continue
                    pending[t].append((updates, dst))
                    remote = int((plan.owner_of(src) != t).sum())
                    boundary_updates += remote
                    received_boundary[t] += remote
                    receiver_slots = np.unique(dst_slot)
                    receivers = cand_t[receiver_slots]
                    job["recorded"] = receivers
                    job["producers"] = np.arange(
                        receivers.size, dtype=np.int64
                    )
                    job["num_workers"] = int(receivers.size)

            # The frontier hook fires once per superstep, on the full
            # frontier, under the single-device condition (the frontier
            # had out-edges to consume) - after all Computes, before any
            # apply, exactly as one device interleaves them.
            if frontier_out_edges > 0:
                algorithm.on_frontier_expanded(frontier, metadata)

            # ---------------- phase 2: merge + apply --------------------
            # Each owner drains its buffers in source-shard order: the
            # concatenated stream is globally source-ascending per
            # destination, so Combine sees the single-device order.
            recorded_parts: List[np.ndarray] = []
            for t in range(num_shards):
                if not pending[t]:
                    continue
                updates = np.concatenate([u for u, _ in pending[t]])
                dsts = np.concatenate([d for _, d in pending[t]])
                engine._combine_and_apply(algorithm, metadata, updates, dsts)

            active_mask = np.asarray(
                algorithm.active_mask(metadata, prev_metadata), dtype=bool
            )

            # ---------------- records + cost accounting ------------------
            def updatable_mean() -> float:
                return engine._offer_success_rate(algorithm, prev_metadata)

            direction_parts: List[str] = []
            filter_parts: List[str] = []
            for t in range(num_shards):
                sh = shards[t]
                job = scatter_jobs.get(t)
                if job is not None:
                    expansion = _ExpansionResult(
                        touched=np.zeros(0, dtype=np.int64),
                        update_destinations=job["recorded"],
                        recorded_destinations=job["recorded"],
                        recorded_producers=job["producers"],
                        num_workers=job["num_workers"],
                        edges_expanded=job["edges_expanded"],
                        active_edges=job["active_edges"],
                    )
                    recorded_parts.append(job["recorded"])
                    record = self._emit_record(
                        sh,
                        algorithm=algorithm,
                        direction=Direction.PUSH,
                        worklist=shard_frontiers[t],
                        classifier=engine.classifier,
                        expansion=expansion,
                        active_mask=active_mask,
                        frontier_vertices=int(shard_frontiers[t].size),
                        iteration=iteration,
                        success_rate=self._success_rate(sh, updatable_mean),
                        shard_us=shard_us,
                    )
                    records.append(record)
                    if sanitizer is not None:
                        sanitizer.observe_record(record)
                    direction_parts.append(Direction.PUSH.value)
                    filter_parts.append(record.filter_used)
                job = gather_jobs.get(t)
                if job is not None:
                    expansion = _ExpansionResult(
                        touched=np.zeros(0, dtype=np.int64),
                        update_destinations=job["recorded"],
                        recorded_destinations=job["recorded"],
                        recorded_producers=job["producers"],
                        num_workers=job["num_workers"],
                        edges_expanded=job["edges_expanded"],
                        active_edges=job["active_edges"],
                    )
                    recorded_parts.append(job["recorded"])
                    record = self._emit_record(
                        sh,
                        algorithm=algorithm,
                        direction=Direction.PULL,
                        worklist=job["candidates"],
                        classifier=engine.pull_classifier,
                        expansion=expansion,
                        active_mask=active_mask,
                        frontier_vertices=int(shard_frontiers[t].size),
                        iteration=iteration,
                        success_rate=1.0,
                        shard_us=shard_us,
                    )
                    records.append(record)
                    if sanitizer is not None:
                        sanitizer.observe_record(record)
                    direction_parts.append(Direction.PULL.value)
                    filter_parts.append(record.filter_used)
                self._charge_boundary_merge(
                    sh, int(received_boundary[t]), shard_us
                )

            direction_trace.append("+".join(direction_parts))
            filter_trace.append("+".join(filter_parts))
            total_us += float(shard_us.max()) if num_shards else 0.0

            # ---------------- next frontier (global) ---------------------
            recorded = (
                np.concatenate(recorded_parts) if recorded_parts
                else np.zeros(0, dtype=np.int64)
            )
            worklist = recorded[active_mask[recorded]]
            frontier = np.unique(worklist)
            if frontier.size == 0 and not algorithm.converged(
                metadata, prev_metadata, iteration
            ):
                frontier = np.nonzero(active_mask)[0].astype(np.int64)
            if sanitizer is not None:
                sanitizer.end_superstep(iteration, metadata)

        extra = self._shared_extra(shards, boundary_updates)
        if sanitizer is not None:
            sanitizer.validate_extra(extra)
            extra[extra_keys.SANITIZER] = sanitizer.report()
        return RunResult(
            system=engine.SYSTEM_NAME,
            algorithm=algorithm.name,
            graph=graph.name,
            values=algorithm.vertex_value(metadata),
            elapsed_us=total_us,
            iterations=iteration,
            device=self.device_name,
            kernel_launches=sum(
                sh.device.profiler.launch_count() for sh in shards
            ),
            filter_trace=filter_trace,
            direction_trace=direction_trace,
            iteration_records=records,
            extra=extra,
        )

    # ------------------------------------------------------------------
    # Batched multi-source run
    # ------------------------------------------------------------------
    def run_batch(
        self, algorithm, sources: List[int], *, lane_params=None, **params
    ) -> BatchRunResult:
        engine = self.engine
        graph = self.graph
        sources = [int(s) for s in sources]

        def failure(reason: str) -> BatchRunResult:
            return BatchRunResult.failure(
                engine.SYSTEM_NAME, algorithm.name, graph.name, sources,
                reason, device=self.device_name,
            )

        start_direction = (
            Direction.PULL if algorithm.starts_in_pull else Direction.PUSH
        )
        shards = self._make_shards(start_direction)
        try:
            self._allocate(shards, num_lanes=len(sources))
        except DeviceOutOfMemory as exc:
            return failure(f"OOM: {exc}")

        sanitizer: Optional[RuntimeSanitizer] = None
        if self.config.sanitize:
            sanitizer = RuntimeSanitizer(
                graph, raise_on_violation=self.config.sanitize_raise
            )
        try:
            return self._run_batch_loop(
                algorithm, sources, shards, sanitizer,
                lane_params=lane_params, **params
            )
        except DeviceOutOfMemory as exc:
            return failure(f"OOM: {exc}")
        except FilterOverflowError as exc:
            return failure(f"online filter overflow: {exc}")
        finally:
            if sanitizer is not None:
                sanitizer.release()
            for sh in shards:
                sh.device.reset_memory()

    def _run_batch_loop(
        self,
        algorithm,
        sources: List[int],
        shards: List[_Shard],
        sanitizer: Optional[RuntimeSanitizer],
        *,
        lane_params=None,
        **params,
    ) -> BatchRunResult:
        engine = self.engine
        cfg = self.config
        graph = self.graph
        plan = self.plan
        n = graph.num_vertices
        num_shards = plan.num_shards
        num_lanes = len(sources)
        per_lane_compute = lane_params is not None

        clones = []
        metadata = np.zeros((num_lanes, n), dtype=np.float64)
        lane_frontiers: List[np.ndarray] = []
        for lane, source in enumerate(sources):
            clone = copy.copy(algorithm)
            if lane_params is not None:
                for key, value in lane_params[lane].items():
                    setattr(clone, key, value)
            state = clone.init(graph, source=source, **params)
            clones.append(clone)
            metadata[lane] = np.asarray(state.metadata, dtype=np.float64)
            lane_frontiers.append(
                np.unique(np.asarray(state.frontier, dtype=np.int64))
            )
        if sanitizer is not None:
            clones = [
                sanitizer.wrap(clone, lane=k) for k, clone in enumerate(clones)
            ]
            algorithm = sanitizer.wrap(algorithm, lane=None)
            sanitizer.freeze_graph()

        max_iterations = (
            cfg.max_iterations if cfg.max_iterations is not None
            else algorithm.max_iterations
        )
        records: List[IterationRecord] = []
        filter_trace: List[str] = []
        direction_trace: List[str] = []
        lane_iterations = [0] * num_lanes
        boundary_updates = 0
        total_us = 0.0
        iteration = 0

        while any(f.size for f in lane_frontiers) and iteration < max_iterations:
            iteration += 1
            live = [k for k in range(num_lanes) if lane_frontiers[k].size]
            for lane in live:
                lane_iterations[lane] = iteration
            prev_metadata = metadata.copy()
            if sanitizer is not None:
                sanitizer.begin_superstep(iteration, metadata)
            shard_us = np.zeros(num_shards, dtype=np.float64)

            batched = BatchedFrontier.from_lanes(
                lane_frontiers, backend=engine.kernel
            )
            union = batched.vertices
            shard_rows = [
                batched.vertex_range_rows(sh.start, sh.stop) for sh in shards
            ]
            shard_out_edges = [
                engine.classifier.edge_count(union[lo:hi])
                for lo, hi in shard_rows
            ]
            lane_out_edges = {
                lane: engine.classifier.edge_count(lane_frontiers[lane])
                for lane in live
            }
            directions = self._plan_directions(
                shards, shard_out_edges, iteration
            )
            any_push = any(d is Direction.PUSH for d in directions)
            any_pull = any(d is Direction.PULL for d in directions)
            dst_is_push = (
                self._push_owner_mask(directions) if any_push else None
            )

            lane_candidates: Dict[int, np.ndarray] = {}
            if any_pull:
                if engine._in_degrees is None:
                    engine._in_degrees = graph.in_degrees()
                for lane in live:
                    mask = np.asarray(
                        clones[lane].gather_mask(
                            metadata[lane], graph, lane_frontiers[lane]
                        ),
                        dtype=bool,
                    )
                    lane_candidates[lane] = np.nonzero(
                        mask & (engine._in_degrees > 0)
                    )[0].astype(np.int64)

            # ---------------- phase 1: compute --------------------------
            pending: Dict[Tuple[int, int], List[Tuple[np.ndarray, np.ndarray]]]
            pending = {}
            lane_recorded_parts: Dict[int, List[np.ndarray]] = {
                lane: [] for lane in live
            }
            received_boundary = np.zeros(num_shards, dtype=np.int64)
            scatter_jobs: Dict[int, dict] = {}
            gather_jobs: Dict[int, dict] = {}

            def route(
                source_shard: int,
                lane: int,
                updates: np.ndarray,
                dst: np.ndarray,
            ) -> int:
                """Split one lane's valid updates by destination owner."""
                crossed = 0
                owner = plan.owner_of(dst)
                for t in np.unique(owner):
                    t = int(t)
                    member = owner == t
                    pending.setdefault((t, lane), []).append(
                        (updates[member], dst[member])
                    )
                    if t != source_shard:
                        count = int(member.sum())
                        crossed += count
                        received_boundary[t] += count
                return crossed

            if any_push:
                out_csr = graph.out_csr
                for s in range(num_shards):
                    lo, hi = shard_rows[s]
                    union_s = union[lo:hi]
                    if union_s.size == 0:
                        continue
                    slot, edge_idx, total = engine._walk(
                        out_csr, union_s
                    )
                    job = {
                        "edges_expanded": total,
                        "active_edges": 0,
                        "recorded": np.zeros(0, dtype=np.int64),
                        "producers": np.zeros(0, dtype=np.int64),
                        "num_workers": int(union_s.size),
                        "lane_pairs": 0,
                        "active_lanes": 0,
                        "worklist": union_s,
                    }
                    scatter_jobs[s] = job
                    if total == 0:
                        continue
                    dst = out_csr.targets[edge_idx].astype(np.int64)
                    keep = dst_is_push[dst]
                    if not keep.all():
                        slot = slot[keep]
                        dst = dst[keep]
                        edge_idx = edge_idx[keep]
                    kept = int(dst.size)
                    job["active_edges"] = kept
                    if kept == 0:
                        continue
                    src = union_s[slot]
                    weights = out_csr.weights[edge_idx].astype(np.float64)
                    pair_parts: List[Tuple[int, np.ndarray]] = []
                    for lane in live:
                        lane_rows = batched.lane_mask(lane)[lo:hi]
                        lane_edges = np.nonzero(lane_rows[slot])[0]
                        if lane_edges.size:
                            pair_parts.append((lane, lane_edges))
                    if not pair_parts:
                        continue
                    job["active_lanes"] = len(pair_parts)
                    if per_lane_compute:
                        updates = np.concatenate([
                            np.asarray(
                                clones[lane].scatter_edges(
                                    metadata[lane, src[idx]], weights[idx],
                                    metadata[lane, dst[idx]],
                                    src[idx], dst[idx], graph,
                                    lanes=np.full(
                                        idx.size, lane, dtype=np.int64
                                    ),
                                ),
                                dtype=np.float64,
                            )
                            for lane, idx in pair_parts
                        ])
                    else:
                        pair_src = np.concatenate(
                            [src[idx] for _, idx in pair_parts]
                        )
                        pair_dst = np.concatenate(
                            [dst[idx] for _, idx in pair_parts]
                        )
                        pair_weights = np.concatenate(
                            [weights[idx] for _, idx in pair_parts]
                        )
                        pair_lane = np.concatenate([
                            np.full(idx.size, lane, dtype=np.int64)
                            for lane, idx in pair_parts
                        ])
                        updates = np.asarray(
                            algorithm.scatter_edges(
                                metadata[pair_lane, pair_src], pair_weights,
                                metadata[pair_lane, pair_dst],
                                pair_src, pair_dst, graph,
                                lanes=pair_lane,
                            ),
                            dtype=np.float64,
                        )
                    job["lane_pairs"] = int(updates.size)
                    valid_any = np.zeros(kept, dtype=bool)
                    offset = 0
                    for lane, lane_edges in pair_parts:
                        begin, offset = offset, offset + lane_edges.size
                        lane_updates = updates[begin:offset]
                        valid = ~np.isnan(lane_updates)
                        valid_any[lane_edges[valid]] = True
                        if valid.any():
                            lane_dst = dst[lane_edges[valid]]
                            lane_recorded_parts[lane].append(lane_dst)
                            boundary_updates += route(
                                s, lane, lane_updates[valid], lane_dst
                            )
                    union_recorded = np.nonzero(valid_any)[0]
                    job["recorded"] = dst[union_recorded]
                    job["producers"] = slot[union_recorded]

            if any_pull:
                in_csr = graph.in_csr
                lane_bitmaps: Dict[int, np.ndarray] = {}
                for t in range(num_shards):
                    if directions[t] is not Direction.PULL:
                        continue
                    sh = shards[t]
                    cand_slices = [
                        lane_candidates[lane][
                            np.searchsorted(lane_candidates[lane], sh.start):
                            np.searchsorted(lane_candidates[lane], sh.stop)
                        ]
                        for lane in live
                    ]
                    non_empty = [c for c in cand_slices if c.size]
                    union_candidates = (
                        np.unique(np.concatenate(non_empty)) if non_empty
                        else np.zeros(0, dtype=np.int64)
                    )
                    lo, hi = shard_rows[t]
                    if union_candidates.size == 0 and lo == hi:
                        continue
                    dst_slot, edge_idx, total = engine._walk(
                        in_csr, union_candidates
                    )
                    job = {
                        "edges_expanded": total,
                        "active_edges": 0,
                        "recorded": np.zeros(0, dtype=np.int64),
                        "producers": np.zeros(0, dtype=np.int64),
                        "num_workers": 0,
                        "lane_pairs": 0,
                        "active_lanes": 0,
                        "worklist": union_candidates,
                    }
                    gather_jobs[t] = job
                    if total == 0:
                        continue
                    src = in_csr.targets[edge_idx].astype(np.int64)
                    dst = union_candidates[dst_slot]

                    kept_any = np.zeros(total, dtype=bool)
                    pair_parts = []
                    for lane_index, lane in enumerate(live):
                        candidates = cand_slices[lane_index]
                        if (
                            candidates.size == 0
                            or lane_frontiers[lane].size == 0
                        ):
                            continue
                        candidate_rows = np.zeros(
                            union_candidates.size, dtype=bool
                        )
                        candidate_rows[
                            engine.kernel.rows_in_sorted(
                                union_candidates, candidates
                            )
                        ] = True
                        if lane not in lane_bitmaps:
                            lane_bitmaps[lane] = engine.kernel.membership_mask(
                                lane_frontiers[lane], n
                            )
                        keep = (
                            candidate_rows[dst_slot]
                            & lane_bitmaps[lane][src]
                        )
                        lane_edges = np.nonzero(keep)[0]
                        if lane_edges.size:
                            kept_any[lane_edges] = True
                            pair_parts.append((lane, lane_edges))
                    job["active_edges"] = int(np.count_nonzero(kept_any))
                    if not pair_parts:
                        continue
                    job["active_lanes"] = len(pair_parts)
                    if per_lane_compute:
                        updates = np.concatenate([
                            np.asarray(
                                clones[lane].gather_edges(
                                    metadata[lane, src[idx]],
                                    in_csr.weights[edge_idx[idx]].astype(
                                        np.float64
                                    ),
                                    metadata[lane, dst[idx]],
                                    src[idx], dst[idx], graph,
                                    lanes=np.full(
                                        idx.size, lane, dtype=np.int64
                                    ),
                                ),
                                dtype=np.float64,
                            )
                            for lane, idx in pair_parts
                        ])
                    else:
                        pair_src = np.concatenate(
                            [src[idx] for _, idx in pair_parts]
                        )
                        pair_dst = np.concatenate(
                            [dst[idx] for _, idx in pair_parts]
                        )
                        pair_weights = np.concatenate([
                            in_csr.weights[edge_idx[idx]].astype(np.float64)
                            for _, idx in pair_parts
                        ])
                        pair_lane = np.concatenate([
                            np.full(idx.size, lane, dtype=np.int64)
                            for lane, idx in pair_parts
                        ])
                        updates = np.asarray(
                            algorithm.gather_edges(
                                metadata[pair_lane, pair_src], pair_weights,
                                metadata[pair_lane, pair_dst],
                                pair_src, pair_dst, graph,
                                lanes=pair_lane,
                            ),
                            dtype=np.float64,
                        )
                    job["lane_pairs"] = int(updates.size)
                    valid_any = np.zeros(total, dtype=bool)
                    offset = 0
                    for lane, lane_edges in pair_parts:
                        begin, offset = offset, offset + lane_edges.size
                        lane_updates = updates[begin:offset]
                        valid = ~np.isnan(lane_updates)
                        valid_any[lane_edges[valid]] = True
                        if valid.any():
                            lane_dst = dst[lane_edges[valid]]
                            lane_src = src[lane_edges[valid]]
                            lane_recorded_parts[lane].append(
                                np.unique(lane_dst)
                            )
                            pending.setdefault((t, lane), []).append(
                                (lane_updates[valid], lane_dst)
                            )
                            remote = int(
                                (plan.owner_of(lane_src) != t).sum()
                            )
                            boundary_updates += remote
                            received_boundary[t] += remote
                    receivers = np.unique(dst[valid_any])
                    job["recorded"] = receivers
                    job["producers"] = np.arange(
                        receivers.size, dtype=np.int64
                    )
                    job["num_workers"] = int(receivers.size)

            # Frontier hooks: once per lane, full lane frontier, under the
            # single-device condition - after all Computes, before applies.
            for lane in live:
                if lane_out_edges[lane] > 0:
                    clones[lane].on_frontier_expanded(
                        lane_frontiers[lane], metadata[lane]
                    )

            # ---------------- phase 2: merge + apply --------------------
            for t in range(num_shards):
                for lane in live:
                    parts = pending.get((t, lane))
                    if not parts:
                        continue
                    updates = np.concatenate([u for u, _ in parts])
                    dsts = np.concatenate([d for _, d in parts])
                    engine._combine_and_apply(
                        clones[lane], metadata[lane], updates, dsts
                    )

            lane_active: Dict[int, np.ndarray] = {}
            union_active = np.zeros(n, dtype=bool)
            for lane in live:
                active = np.asarray(
                    clones[lane].active_mask(
                        metadata[lane], prev_metadata[lane]
                    ),
                    dtype=bool,
                )
                lane_active[lane] = active
                union_active |= active

            # ---------------- records + cost accounting ------------------
            def updatable_mean() -> float:
                updatable = np.zeros(n, dtype=bool)
                for lane in live:
                    updatable |= np.asarray(
                        clones[lane].gather_mask(
                            prev_metadata[lane], graph, None
                        ),
                        dtype=bool,
                    )
                return float(updatable.mean()) if n else 1.0

            direction_parts: List[str] = []
            filter_parts: List[str] = []
            for t in range(num_shards):
                sh = shards[t]
                for direction, jobs, classifier in (
                    (Direction.PUSH, scatter_jobs, engine.classifier),
                    (Direction.PULL, gather_jobs, engine.pull_classifier),
                ):
                    job = jobs.get(t)
                    if job is None:
                        continue
                    expansion = _ExpansionResult(
                        touched=np.zeros(0, dtype=np.int64),
                        update_destinations=job["recorded"],
                        recorded_destinations=job["recorded"],
                        recorded_producers=job["producers"],
                        num_workers=job["num_workers"],
                        edges_expanded=job["edges_expanded"],
                        active_edges=job["active_edges"],
                    )
                    record = self._emit_record(
                        sh,
                        algorithm=algorithm,
                        direction=direction,
                        worklist=job["worklist"],
                        classifier=classifier,
                        expansion=expansion,
                        active_mask=union_active,
                        frontier_vertices=int(job["worklist"].size),
                        iteration=iteration,
                        success_rate=(
                            self._success_rate(sh, updatable_mean)
                            if direction is Direction.PUSH else 1.0
                        ),
                        lane_pairs=job["lane_pairs"],
                        active_lanes=job["active_lanes"],
                        shard_us=shard_us,
                    )
                    records.append(record)
                    if sanitizer is not None:
                        sanitizer.observe_record(record)
                    direction_parts.append(direction.value)
                    filter_parts.append(record.filter_used)
                self._charge_boundary_merge(
                    sh, int(received_boundary[t]), shard_us
                )

            direction_trace.append("+".join(direction_parts))
            filter_trace.append("+".join(filter_parts))
            total_us += float(shard_us.max()) if num_shards else 0.0

            # ---------------- next frontiers (per lane) ------------------
            for lane in live:
                parts = lane_recorded_parts[lane]
                recorded = (
                    np.concatenate(parts) if parts
                    else np.zeros(0, dtype=np.int64)
                )
                active = lane_active[lane]
                worklist = recorded[active[recorded]]
                next_frontier = np.unique(worklist)
                if next_frontier.size == 0 and not clones[lane].converged(
                    metadata[lane], prev_metadata[lane], iteration
                ):
                    next_frontier = np.nonzero(active)[0].astype(np.int64)
                lane_frontiers[lane] = next_frontier
            if sanitizer is not None:
                sanitizer.end_superstep(iteration, metadata)

        values = np.stack(
            [clones[k].vertex_value(metadata[k]) for k in range(num_lanes)]
        )
        extra = self._shared_extra(shards, boundary_updates)
        extra.update({
            extra_keys.UNION_EDGES_WALKED: sum(
                r.frontier_edges for r in records
            ),
            extra_keys.LANE_EDGE_PAIRS: sum(
                r.lane_edge_pairs for r in records
            ),
            extra_keys.PULL_EDGES_SCANNED: sum(
                r.frontier_edges for r in records
                if r.direction == Direction.PULL.value
            ),
            # Per-shard direction selection replaces lane-group splitting
            # (EngineConfig.num_shards docs): the split knobs are inert.
            extra_keys.SPLIT_ITERATIONS: [],
            extra_keys.LANE_SPLITS: 0,
        })
        if sanitizer is not None:
            sanitizer.validate_extra(extra)
            extra[extra_keys.SANITIZER] = sanitizer.report()
        return BatchRunResult(
            system=engine.SYSTEM_NAME,
            algorithm=algorithm.name,
            graph=graph.name,
            sources=sources,
            metadata=metadata,
            values=values,
            elapsed_us=total_us,
            iterations=iteration,
            lane_iterations=lane_iterations,
            device=self.device_name,
            kernel_launches=sum(
                sh.device.profiler.launch_count() for sh in shards
            ),
            filter_trace=filter_trace,
            direction_trace=direction_trace,
            iteration_records=records,
            extra=extra,
        )
