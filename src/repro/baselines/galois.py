"""Galois-like CPU baseline: asynchronous worklist execution.

Galois (Nguyen et al., SOSP'13) executes graph algorithms as unordered or
priority-ordered tasks over a work-stealing scheduler, with no bulk-
synchronous barriers. Two consequences shape its profile in Table 4:

* it pays no per-iteration synchronization, so it does comparatively well on
  high-iteration/low-parallelism workloads - and on uniform-degree graphs
  (the RD dataset) where GPU workload balancing buys nothing, it can even
  beat SIMD-X;
* every task carries scheduler overhead, and total throughput is bounded by
  the CPU's cores and memory system, so on large skewed graphs it falls well
  behind the GPU systems.

The cost model charges per-edge work plus a per-task (per-activated-vertex)
scheduling cost, divided across the cores, with a modest work-efficiency
credit for the asynchronous schedule (priority scheduling avoids some of the
re-relaxations a BSP schedule performs).

The paper also reports that Galois *fails to converge* for SSSP on the
Europe-osm road network; its asynchronous delta-stepping implementation
struggles on graphs whose diameter is in the thousands. With
``reproduce_paper_failures=True`` (the default) the same failure is reported
for SSSP on high-diameter road graphs so Table 4 keeps its blank cell; pass
``False`` to let the run complete instead.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import registry as extra_keys
from repro.baselines.common import CPUSpec, DEFAULT_CPU, ExecutionTrace, trace_execution
from repro.core.acc import ACCAlgorithm
from repro.core.metrics import RunResult
from repro.graph.csr import CSRGraph


class GaloisLike:
    """Galois-style asynchronous worklist execution on a multicore CPU."""

    SYSTEM_NAME = "Galois"

    #: Fraction of BSP edge work the asynchronous schedule actually performs
    #: (priority scheduling skips some re-relaxations).
    WORK_EFFICIENCY = 0.8

    def __init__(
        self,
        cpu: Optional[CPUSpec] = None,
        *,
        reproduce_paper_failures: bool = True,
    ):
        self.cpu = cpu if cpu is not None else DEFAULT_CPU
        self.reproduce_paper_failures = reproduce_paper_failures

    def run(
        self,
        algorithm: ACCAlgorithm,
        graph: CSRGraph,
        *,
        trace: Optional[ExecutionTrace] = None,
        **params,
    ) -> RunResult:
        if self.reproduce_paper_failures and self._known_failure(algorithm, graph):
            return RunResult.failure(
                self.SYSTEM_NAME,
                algorithm.name,
                graph.name,
                "did not converge (asynchronous SSSP on a very-high-diameter "
                "road network; Table 4 reports the same failure)",
                device=self.cpu.name,
            )

        if trace is None:
            trace = trace_execution(algorithm, graph, **params)
        total_us = self._price_trace(trace, algorithm, graph)
        return RunResult(
            system=self.SYSTEM_NAME,
            algorithm=algorithm.name,
            graph=graph.name,
            values=trace.values,
            elapsed_us=total_us,
            iterations=trace.num_iterations,
            device=self.cpu.name,
            extra={extra_keys.MODEL: "CPU asynchronous worklist (work stealing)"},
        )

    # ------------------------------------------------------------------
    def _known_failure(self, algorithm: ACCAlgorithm, graph: CSRGraph) -> bool:
        if algorithm.name != "sssp":
            return False
        meta = getattr(graph, "meta", {}) or {}
        return (
            meta.get("diameter_class") == "high"
            and meta.get("paper_name") == "Europe-osm"
        )

    def _price_trace(
        self, trace: ExecutionTrace, algorithm: ACCAlgorithm, graph: CSRGraph
    ) -> float:
        cpu = self.cpu
        effective_edges = trace.total_frontier_edges * self.WORK_EFFICIENCY
        activated_tasks = sum(t.updates_applied for t in trace.iterations)
        work_ns = (
            effective_edges * cpu.edge_ns
            + activated_tasks * cpu.task_overhead_ns
            + trace.total_updates * 0.5  # conflict detection / commit checks
        )
        # No per-iteration barrier: a single start-up/tear-down cost instead.
        startup_us = 2.0 * cpu.sync_overhead_us
        return work_ns / cpu.cores / 1000.0 + startup_us
