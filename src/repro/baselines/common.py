"""Shared machinery for the baseline systems.

All comparator systems (GPU and CPU) produce results that are functionally
identical to SIMD-X - the paper compares *performance*, not outputs - so
their functional execution is factored out here as :func:`trace_execution`:
a plain BSP run of the ACC algorithm that records, per iteration, the
frontier size, expanded edge count, update count and the destination
distribution (for atomic-contention modelling). Each baseline then converts
that trace into simulated time using its own cost model, which is where the
systems genuinely differ (memory layout, atomics, filtering strategy, kernel
launches, CPU vs GPU execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.acc import ACCAlgorithm
from repro.gpu.atomics import AtomicProfile, profile_atomic_updates
from repro.graph.csr import CSRGraph


@dataclass
class IterationTrace:
    """Workload of one BSP iteration, independent of any cost model."""

    iteration: int
    frontier_vertices: int
    frontier_edges: int
    updates_valid: int          # edges whose compute produced an update
    updates_applied: int        # destinations whose metadata changed
    active_after: int           # active vertices after the iteration
    atomic_profile: AtomicProfile
    max_frontier_degree: int
    mean_frontier_degree: float


@dataclass
class ExecutionTrace:
    """Functional outcome plus per-iteration workload of a full run."""

    algorithm: str
    graph: str
    values: np.ndarray
    iterations: List[IterationTrace] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_frontier_edges(self) -> int:
        return sum(t.frontier_edges for t in self.iterations)

    @property
    def total_updates(self) -> int:
        return sum(t.updates_valid for t in self.iterations)

    @property
    def peak_frontier_edges(self) -> int:
        return max((t.frontier_edges for t in self.iterations), default=0)


def trace_execution(
    algorithm: ACCAlgorithm,
    graph: CSRGraph,
    *,
    max_iterations: Optional[int] = None,
    **params,
) -> ExecutionTrace:
    """Run ``algorithm`` functionally and record its per-iteration workload."""
    state = algorithm.init(graph, **params)
    metadata = np.asarray(state.metadata, dtype=np.float64).copy()
    frontier = np.unique(np.asarray(state.frontier, dtype=np.int64))

    csr = graph.out_csr
    offsets = csr.offsets.astype(np.int64)
    degrees = np.diff(offsets)
    limit = max_iterations or algorithm.max_iterations

    trace = ExecutionTrace(algorithm=algorithm.name, graph=graph.name, values=metadata)
    iteration = 0
    while frontier.size and iteration < limit:
        iteration += 1
        prev = metadata.copy()

        counts = degrees[frontier]
        total = int(counts.sum())
        if total:
            starts = offsets[frontier]
            cum = np.zeros(frontier.size, dtype=np.int64)
            np.cumsum(counts[:-1], out=cum[1:])
            edge_idx = np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)
            src_slot = np.repeat(np.arange(frontier.size, dtype=np.int64), counts)
            src = frontier[src_slot]
            dst = csr.targets[edge_idx].astype(np.int64)
            weights = csr.weights[edge_idx].astype(np.float64)
            updates = np.asarray(
                algorithm.compute_edges(
                    metadata[src], weights, metadata[dst], src, dst, graph
                ),
                dtype=np.float64,
            )
            algorithm.on_frontier_expanded(frontier, metadata)
            valid = ~np.isnan(updates)
            dst_valid = dst[valid]
            updates_valid = updates[valid]
            if updates_valid.size:
                combined = algorithm.combine_op.segment_reduce(
                    updates_valid, dst_valid, graph.num_vertices
                )
                touched = np.unique(dst_valid)
                new_values = algorithm.apply(metadata[touched], combined[touched], touched)
                changed = new_values != metadata[touched]
                metadata[touched[changed]] = new_values[changed]
                applied = int(np.count_nonzero(changed))
            else:
                applied = 0
            atomic_profile = profile_atomic_updates(dst_valid)
            num_valid = int(updates_valid.size)
        else:
            algorithm.on_frontier_expanded(frontier, metadata)
            atomic_profile = profile_atomic_updates(np.zeros(0, dtype=np.int64))
            applied = 0
            num_valid = 0

        active = algorithm.active_mask(metadata, prev)
        next_frontier = np.nonzero(active)[0].astype(np.int64)

        trace.iterations.append(
            IterationTrace(
                iteration=iteration,
                frontier_vertices=int(frontier.size),
                frontier_edges=total,
                updates_valid=num_valid,
                updates_applied=applied,
                active_after=int(next_frontier.size),
                atomic_profile=atomic_profile,
                max_frontier_degree=int(counts.max()) if counts.size else 0,
                mean_frontier_degree=float(counts.mean()) if counts.size else 0.0,
            )
        )
        frontier = next_frontier

    trace.values = algorithm.vertex_value(metadata)
    return trace


@dataclass(frozen=True)
class CPUSpec:
    """Parameters of the CPU host used by the Galois/Ligra cost models.

    The paper's testbed has two Xeon E5-2683 v3 CPUs (28 physical cores,
    512 GB RAM). The throughput constants are calibration values chosen so
    the CPU baselines land in the same performance band relative to SIMD-X
    that Table 4 reports; EXPERIMENTS.md documents the calibration.
    """

    name: str = "2x Xeon E5-2683"
    cores: int = 28
    edge_ns: float = 16.0           # amortized cost of touching one edge
    vertex_ns: float = 25.0         # per-frontier-vertex bookkeeping
    sync_overhead_us: float = 30.0  # parallel-for fork/join + barrier
    task_overhead_ns: float = 120.0 # per-task scheduling (async worklists)
    memory_bytes: int = 512 * 1024**3


DEFAULT_CPU = CPUSpec()
