"""Single-threaded reference implementations used as correctness oracles.

These are deliberately simple, textbook implementations with no cost
modelling; the test suite compares every system's functional output against
them. They are the ground truth for:

* BFS levels (:func:`bfs_levels`)
* shortest-path distances (:func:`sssp_distances`, Dijkstra)
* PageRank fixed point (:func:`pagerank_scores`, power iteration on the
  same un-normalized recurrence the ACC implementation converges to)
* k-core membership (:func:`kcore_membership`, bucket peeling)
* weakly connected components (:func:`wcc_labels`)
* linearised belief propagation (:func:`bp_beliefs`)
* sparse matrix-vector product (:func:`spmv_product`)
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS level of each vertex from ``source``; -1 for unreachable."""
    n = graph.num_vertices
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.out_neighbors(v):
            u = int(u)
            if levels[u] < 0:
                levels[u] = levels[v] + 1
                queue.append(u)
    return levels


def sssp_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Dijkstra shortest-path distances; infinity for unreachable vertices."""
    n = graph.num_vertices
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    heap = [(0.0, source)]
    visited = np.zeros(n, dtype=bool)
    while heap:
        d, v = heapq.heappop(heap)
        if visited[v]:
            continue
        visited[v] = True
        neighbors = graph.out_neighbors(v)
        weights = graph.out_weights(v)
        for u, w in zip(neighbors, weights):
            u = int(u)
            nd = d + float(w)
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist


def pagerank_scores(
    graph: CSRGraph,
    damping: float = 0.85,
    tolerance: float = 1e-10,
    max_iterations: int = 500,
    *,
    normalize: bool = True,
) -> np.ndarray:
    """Power iteration on ``r = (1 - d) + d * A_norm^T r``.

    This is the same (dangling-mass-free) recurrence the delta-accumulative
    ACC PageRank converges to, so the two agree to within their tolerances.
    """
    n = graph.num_vertices
    out_deg = np.maximum(graph.out_degrees().astype(np.float64), 1.0)
    rank = np.full(n, 1.0 - damping, dtype=np.float64)
    srcs = np.repeat(np.arange(n, dtype=np.int64), graph.out_degrees())
    dsts = graph.out_csr.targets.astype(np.int64)
    for _ in range(max_iterations):
        contrib = damping * rank[srcs] / out_deg[srcs]
        new_rank = np.full(n, 1.0 - damping, dtype=np.float64)
        np.add.at(new_rank, dsts, contrib)
        if np.abs(new_rank - rank).max() < tolerance:
            rank = new_rank
            break
        rank = new_rank
    if normalize:
        total = rank.sum()
        if total > 0:
            rank = rank / total
    return rank


def kcore_membership(graph: CSRGraph, k: int) -> np.ndarray:
    """Boolean mask of vertices in the k-core (classic peeling)."""
    n = graph.num_vertices
    degree = graph.out_degrees().astype(np.int64).copy()
    removed = np.zeros(n, dtype=bool)
    queue = deque(int(v) for v in np.nonzero(degree < k)[0])
    in_queue = np.zeros(n, dtype=bool)
    for v in queue:
        in_queue[v] = True
    while queue:
        v = queue.popleft()
        if removed[v]:
            continue
        removed[v] = True
        for u in graph.out_neighbors(v):
            u = int(u)
            if removed[u]:
                continue
            degree[u] -= 1
            if degree[u] < k and not in_queue[u]:
                in_queue[u] = True
                queue.append(u)
    return ~removed


def kcore_remaining_degrees(graph: CSRGraph, k: int) -> np.ndarray:
    """Remaining degree of every vertex after peeling below-k vertices.

    Matches the metadata the ACC k-Core leaves behind: each vertex's original
    degree minus the number of *removed* neighbours, except that decrements
    stop once the vertex itself has fallen below k (the paper's early-cutoff
    optimization), so values below k are not comparable between
    implementations - only the >= k / < k classification is.
    """
    membership = kcore_membership(graph, k)
    remaining = np.zeros(graph.num_vertices, dtype=np.int64)
    for v in range(graph.num_vertices):
        if membership[v]:
            remaining[v] = int(np.count_nonzero(membership[graph.out_neighbors(v)]))
    return remaining


def wcc_labels(graph: CSRGraph) -> np.ndarray:
    """Smallest-reachable-id label per vertex, ignoring edge direction."""
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    for start in range(n):
        if labels[start] >= 0:
            continue
        members = []
        queue = deque([start])
        labels[start] = start
        while queue:
            v = queue.popleft()
            members.append(v)
            neighbors = [graph.out_neighbors(v)]
            if graph.directed:
                neighbors.append(graph.in_neighbors(v))
            for block in neighbors:
                for u in block:
                    u = int(u)
                    if labels[u] < 0:
                        labels[u] = start
                        queue.append(u)
        smallest = min(members)
        for v in members:
            labels[v] = smallest
    return labels


def bp_beliefs(
    graph: CSRGraph,
    priors: np.ndarray,
    damping: float = 0.5,
    num_iterations: int = 20,
    *,
    normalize: bool = True,
) -> np.ndarray:
    """Damped linearised BP sweeps matching the ACC implementation."""
    n = graph.num_vertices
    priors = np.asarray(priors, dtype=np.float64)
    srcs = np.repeat(np.arange(n, dtype=np.int64), graph.out_degrees())
    dsts = graph.out_csr.targets.astype(np.int64)
    weights = graph.out_csr.weights.astype(np.float64)
    out_weight_sum = np.zeros(n, dtype=np.float64)
    np.add.at(out_weight_sum, srcs, weights)
    norm = np.maximum(out_weight_sum, 1e-12)
    belief = priors.copy()
    for _ in range(num_iterations):
        messages = weights / norm[srcs] * belief[srcs]
        incoming = np.zeros(n, dtype=np.float64)
        np.add.at(incoming, dsts, messages)
        belief = priors + damping * incoming
    if normalize:
        total = belief.sum()
        if total > 0:
            belief = belief / total
    return belief


def spmv_product(graph: CSRGraph, x: np.ndarray) -> np.ndarray:
    """y[u] = sum over edges (v, u) of w(v, u) * x[v]."""
    n = graph.num_vertices
    x = np.asarray(x, dtype=np.float64)
    srcs = np.repeat(np.arange(n, dtype=np.int64), graph.out_degrees())
    dsts = graph.out_csr.targets.astype(np.int64)
    weights = graph.out_csr.weights.astype(np.float64)
    y = np.zeros(n, dtype=np.float64)
    np.add.at(y, dsts, weights * x[srcs])
    return y
