"""Gunrock-like GPU baseline: the AFC model with batch filter and atomics.

Gunrock (Wang et al., PPoPP'16) structures each iteration as
Advance / Filter / Compute (Table 1 of the SIMD-X paper):

* **Advance** expands the frontier's neighbour lists and applies per-edge
  updates to vertex state *with atomic operations* (``atomicMin`` /
  ``atomicAdd``), which is the cost ACC's combine avoids (Figure 5);
* **Filter** is a *batch filter*: it materializes the active edge list
  (up to 2|E| entries of device memory - the reason Gunrock OOMs on
  large-graph SSSP in Table 4) and compacts the updated destinations into an
  unsorted, possibly redundant worklist (Figure 6a);
* there is no degree classification of tasks, so thread-per-vertex mapping
  suffers intra-warp divergence on skewed frontiers, mitigated only
  reactively;
* kernels are not fused across the iteration barrier, so every iteration
  pays two kernel launches.

The functional result comes from the shared :func:`trace_execution`; this
class only prices the trace under Gunrock's design decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis import registry as extra_keys
from repro.baselines.common import ExecutionTrace, trace_execution
from repro.core.acc import ACCAlgorithm, CombineKind
from repro.core.metrics import RunResult
from repro.gpu import memory as gmem
from repro.gpu.device import DeviceOutOfMemory, GPUDevice, K40
from repro.gpu.kernel import Kernel, KernelLaunch, WorkEstimate
from repro.graph.csr import CSRGraph


class GunrockLike:
    """Gunrock-style advance/filter execution on the simulated GPU."""

    SYSTEM_NAME = "Gunrock"

    #: Register footprints of the advance and filter kernels (comparable to
    #: the unfused SIMD-X kernels of Table 2).
    ADVANCE_REGISTERS = 32
    FILTER_REGISTERS = 28

    #: Bytes per entry of the batch filter's active edge list.
    EDGE_ENTRY_BYTES = 12

    #: Divergence of the un-classified thread-per-vertex advance on skewed
    #: frontiers (reactive load balancing recovers part of it).
    ADVANCE_DIVERGENCE = 0.30

    def __init__(self, device: Optional[GPUDevice] = None):
        self.device = device if device is not None else GPUDevice(K40)

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm: ACCAlgorithm,
        graph: CSRGraph,
        *,
        trace: Optional[ExecutionTrace] = None,
        **params,
    ) -> RunResult:
        """Execute ``algorithm`` and price it under the Gunrock model.

        ``trace`` lets the benchmark harness share one functional execution
        across baselines (the functional results are identical by design);
        when omitted the baseline runs the algorithm itself.
        """
        device = self.device
        device.profiler.reset()
        device.reset_memory()

        try:
            self._allocate_static(algorithm, graph)
        except DeviceOutOfMemory as exc:
            device.reset_memory()
            return RunResult.failure(
                self.SYSTEM_NAME, algorithm.name, graph.name, f"OOM: {exc}",
                device=device.spec.name,
            )

        if trace is None:
            trace = trace_execution(algorithm, graph, **params)
        total_us = self._price_trace(trace, algorithm, graph)
        device.reset_memory()

        return RunResult(
            system=self.SYSTEM_NAME,
            algorithm=algorithm.name,
            graph=graph.name,
            values=trace.values,
            elapsed_us=total_us,
            iterations=trace.num_iterations,
            device=device.spec.name,
            kernel_launches=device.profiler.launch_count(),
            extra={extra_keys.MODEL: "AFC + batch filter + atomic updates"},
        )

    # ------------------------------------------------------------------
    def _allocate_static(self, algorithm: ACCAlgorithm, graph: CSRGraph) -> None:
        """Reserve CSR, metadata and the batch filter's edge-list buffer.

        Frontier-driven traversal algorithms (BFS, SSSP, WCC) must be able to
        hold the worst-case active edge list; the paper attributes Gunrock's
        SSSP OOM failures on large graphs to exactly this buffer. PageRank-
        style full-graph algorithms stream edges from CSR and skip it.
        """
        v = graph.modeled_num_vertices
        e = graph.modeled_num_edges
        per_edge_csr = 8 if algorithm.uses_weights else 4
        directions = 2 if graph.directed else 1
        self.device.malloc(directions * (v * 8 + e * per_edge_csr), label="csr")
        self.device.malloc(2 * v * 8, label="metadata")
        self.device.malloc(2 * v * 4, label="frontier_queues")
        if algorithm.name in ("bfs", "sssp", "wcc"):
            per_entry = self.EDGE_ENTRY_BYTES if algorithm.uses_weights else 4
            self.device.malloc(e * per_entry, label="batch_edge_list")

    # ------------------------------------------------------------------
    def _price_trace(
        self, trace: ExecutionTrace, algorithm: ACCAlgorithm, graph: CSRGraph
    ) -> float:
        device = self.device
        advance_kernel = Kernel("gunrock_advance", self.ADVANCE_REGISTERS)
        filter_kernel = Kernel("gunrock_filter", self.FILTER_REGISTERS)

        total_us = 0.0
        for it in trace.iterations:
            # Advance: expand frontier (unsorted worklist -> poor offset
            # coalescing), apply updates with atomics.
            traffic = gmem.frontier_expansion_traffic(
                it.frontier_vertices,
                it.frontier_edges,
                sortedness=0.5,
                weighted=algorithm.uses_weights,
            )
            advance_work = WorkEstimate(
                coalesced_bytes=traffic.coalesced_bytes,
                scattered_transactions=traffic.scattered_transactions,
                compute_ops=it.frontier_edges * 4.0 + it.frontier_vertices * 2.0,
                atomic_ops=float(it.updates_valid),
                atomic_contention=it.atomic_profile.contention,
                divergence_fraction=self.ADVANCE_DIVERGENCE,
            )
            threads = max(1, it.frontier_vertices)
            result = device.launch(
                KernelLaunch(
                    kernel=advance_kernel,
                    work=advance_work,
                    num_ctas=-(-threads // advance_kernel.threads_per_cta),
                )
            )
            total_us += result.total_us

            # Filter: materialize + scan the active edge list, compact the
            # (unsorted, redundant) next frontier.
            edge_list_bytes = it.frontier_edges * self.EDGE_ENTRY_BYTES
            filter_work = WorkEstimate(
                coalesced_bytes=2.0 * edge_list_bytes
                + gmem.sequential_bytes(it.updates_valid, gmem.VERTEX_ID_BYTES),
                compute_ops=float(it.frontier_edges),
                warp_primitive_ops=float(-(-max(it.frontier_edges, 1) // 32)),
            )
            result = device.launch(
                KernelLaunch(kernel=filter_kernel, work=filter_work)
            )
            total_us += result.total_us
        return total_us
