"""CuSha-like GPU baseline: edge-list (G-Shards) processing, no task filter.

CuSha (Khorasani et al., HPDC'14) is the ICU-model representative of
Table 1: the graph is stored as *shards* of edges sorted by destination
window, every iteration streams **all** edges through the device, applies
updates in shared memory per shard, and writes the full vertex-state window
back. The SIMD-X paper highlights two consequences which this model
reproduces:

* memory - shards store roughly (source value, source index, destination
  index, weight) per edge (~16 bytes), about twice the CSR footprint, which
  makes CuSha the first system to OOM as graphs grow (the blank FB/TW cells
  of Table 4);
* work - with no task filtering, an iteration costs a full |E| sweep even
  when only a handful of vertices are active, which is catastrophic on
  high-diameter graphs (519,674 ms for SSSP on Europe-osm in the paper,
  ~480x slower than SIMD-X).

On the plus side, shard-local accumulation in shared memory avoids most
global atomics and all accesses are streaming, so for algorithms that really
do touch every edge every iteration (PageRank) CuSha is competitive - the
paper even reports it beating SIMD-X on LJ and OR for PageRank. The cost
model below preserves that trade-off.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import registry as extra_keys
from repro.baselines.common import ExecutionTrace, trace_execution
from repro.core.acc import ACCAlgorithm
from repro.core.metrics import RunResult
from repro.gpu import memory as gmem
from repro.gpu.device import DeviceOutOfMemory, GPUDevice, K40
from repro.gpu.kernel import Kernel, KernelLaunch, WorkEstimate
from repro.graph.csr import CSRGraph


class CuShaLike:
    """CuSha-style full-edge-sweep execution on the simulated GPU."""

    SYSTEM_NAME = "CuSha"

    #: Bytes per shard edge entry: src value, src index, dst index, weight.
    SHARD_ENTRY_BYTES = 16

    #: Registers of the shard-processing kernel (vertex-centric CW kernel).
    KERNEL_REGISTERS = 30

    def __init__(self, device: Optional[GPUDevice] = None):
        self.device = device if device is not None else GPUDevice(K40)

    def run(
        self,
        algorithm: ACCAlgorithm,
        graph: CSRGraph,
        *,
        trace: Optional["ExecutionTrace"] = None,
        **params,
    ) -> RunResult:
        device = self.device
        device.profiler.reset()
        device.reset_memory()

        try:
            self._allocate_static(graph)
        except DeviceOutOfMemory as exc:
            device.reset_memory()
            return RunResult.failure(
                self.SYSTEM_NAME, algorithm.name, graph.name, f"OOM: {exc}",
                device=device.spec.name,
            )

        if trace is None:
            trace = trace_execution(algorithm, graph, **params)
        total_us = self._price_trace(trace, algorithm, graph)
        device.reset_memory()

        return RunResult(
            system=self.SYSTEM_NAME,
            algorithm=algorithm.name,
            graph=graph.name,
            values=trace.values,
            elapsed_us=total_us,
            iterations=trace.num_iterations,
            device=device.spec.name,
            kernel_launches=device.profiler.launch_count(),
            extra={extra_keys.MODEL: "G-Shards edge list, full sweep per iteration"},
        )

    # ------------------------------------------------------------------
    def _allocate_static(self, graph: CSRGraph) -> None:
        v = graph.modeled_num_vertices
        e = graph.modeled_num_edges
        self.device.malloc(e * self.SHARD_ENTRY_BYTES, label="g_shards")
        # Shard construction keeps a per-edge destination index resident in
        # addition to the shards themselves.
        self.device.malloc(e * 4, label="shard_index")
        self.device.malloc(2 * v * 8, label="vertex_windows")

    def _price_trace(
        self, trace: ExecutionTrace, algorithm: ACCAlgorithm, graph: CSRGraph
    ) -> float:
        device = self.device
        kernel = Kernel("cusha_shard_sweep", self.KERNEL_REGISTERS)
        total_edges = graph.num_edges
        num_vertices = graph.num_vertices

        total_us = 0.0
        for _ in trace.iterations:
            # Every iteration streams every shard: all edges in, the whole
            # vertex window out, regardless of how many vertices are active.
            work = WorkEstimate(
                coalesced_bytes=(
                    total_edges * float(self.SHARD_ENTRY_BYTES)
                    + gmem.sequential_bytes(num_vertices, 2 * gmem.METADATA_BYTES)
                ),
                compute_ops=total_edges * 4.0,
                # Shard-local shared-memory accumulation: cheap intra-block
                # reductions instead of global atomics.
                warp_primitive_ops=float(total_edges) / 16.0,
                divergence_fraction=0.05,
            )
            result = device.launch(KernelLaunch(kernel=kernel, work=work))
            total_us += result.total_us
            # A small second kernel decides convergence (flag reduction).
            flag_work = WorkEstimate(
                coalesced_bytes=gmem.sequential_bytes(num_vertices, 1),
                compute_ops=float(num_vertices),
            )
            result = device.launch(
                KernelLaunch(kernel=Kernel("cusha_convergence", 16), work=flag_work)
            )
            total_us += result.total_us
        return total_us
