"""Comparator systems (Section 7.1) and correctness oracles.

* :mod:`repro.baselines.reference` -- straightforward single-threaded
  implementations of every algorithm, used as correctness oracles by the
  test suite (never timed).
* :mod:`repro.baselines.gunrock` -- Gunrock-like GPU system: AFC
  (advance / filter / compute) model with a batch filter and atomic updates.
* :mod:`repro.baselines.cusha` -- CuSha-like GPU system: edge-list (shard)
  ICU model with no task filtering.
* :mod:`repro.baselines.ligra` -- Ligra-like CPU system: shared-memory
  push/pull frontier framework.
* :mod:`repro.baselines.galois` -- Galois-like CPU system: asynchronous
  worklist execution with work-stealing.

The GPU baselines run on the same simulated device and produce the same
functional results as SIMD-X; they differ in how much memory they allocate,
how many atomics they issue, how they build worklists and how many kernels
they launch - exactly the axes along which the paper compares them.
"""

from repro.baselines.gunrock import GunrockLike
from repro.baselines.cusha import CuShaLike
from repro.baselines.ligra import LigraLike
from repro.baselines.galois import GaloisLike
from repro.baselines import reference

SYSTEMS = {
    "gunrock": GunrockLike,
    "cusha": CuShaLike,
    "ligra": LigraLike,
    "galois": GaloisLike,
}

__all__ = ["GunrockLike", "CuShaLike", "LigraLike", "GaloisLike", "reference", "SYSTEMS"]
