"""Ligra-like CPU baseline: shared-memory push/pull frontier framework.

Ligra (Shun & Blelloch, PPoPP'13) runs frontier-based graph algorithms on a
multicore CPU with the dense/sparse (pull/push) representation switch that
SIMD-X's direction selector also uses. Its per-iteration structure is a
parallel ``edgeMap`` over the frontier's edges plus a ``vertexMap``; each
iteration ends with a fork/join barrier whose fixed cost dominates on
high-iteration, small-frontier workloads (road networks), while the edge
processing rate - bounded by CPU memory bandwidth, roughly an order of
magnitude below a K40's - dominates on large frontiers.

The cost model charges:

* a per-iteration synchronization overhead (``sync_overhead_us``),
* per-edge and per-frontier-vertex costs scaled by the core count,
* a dense-iteration surcharge when the frontier is large enough that Ligra
  would switch to the dense (pull) representation, reflecting the |V|-sized
  bitmap sweep that mode performs.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import registry as extra_keys
from repro.baselines.common import CPUSpec, DEFAULT_CPU, ExecutionTrace, trace_execution
from repro.core.acc import ACCAlgorithm
from repro.core.metrics import RunResult
from repro.graph.csr import CSRGraph


class LigraLike:
    """Ligra-style push/pull frontier processing on a multicore CPU."""

    SYSTEM_NAME = "Ligra"

    #: Frontier-edge share beyond which Ligra switches to its dense mode.
    DENSE_THRESHOLD = 0.05

    #: Cost (ns) of scanning one vertex's flag during a dense iteration.
    DENSE_VERTEX_NS = 1.2

    def __init__(self, cpu: Optional[CPUSpec] = None):
        self.cpu = cpu if cpu is not None else DEFAULT_CPU

    def run(
        self,
        algorithm: ACCAlgorithm,
        graph: CSRGraph,
        *,
        trace: Optional[ExecutionTrace] = None,
        **params,
    ) -> RunResult:
        if trace is None:
            trace = trace_execution(algorithm, graph, **params)
        total_us = self._price_trace(trace, algorithm, graph)
        return RunResult(
            system=self.SYSTEM_NAME,
            algorithm=algorithm.name,
            graph=graph.name,
            values=trace.values,
            elapsed_us=total_us,
            iterations=trace.num_iterations,
            device=self.cpu.name,
            extra={extra_keys.MODEL: "CPU push/pull frontier (edgeMap/vertexMap)"},
        )

    def _price_trace(
        self, trace: ExecutionTrace, algorithm: ACCAlgorithm, graph: CSRGraph
    ) -> float:
        cpu = self.cpu
        cores = cpu.cores
        total_us = 0.0
        total_edges = max(1, graph.num_edges)
        for it in trace.iterations:
            parallel_ns = (
                it.frontier_edges * cpu.edge_ns
                + it.frontier_vertices * cpu.vertex_ns
            )
            if it.frontier_edges / total_edges >= self.DENSE_THRESHOLD:
                # Dense iteration: scan every vertex's visited/active flag.
                parallel_ns += graph.num_vertices * self.DENSE_VERTEX_NS
            total_us += parallel_ns / cores / 1000.0 + cpu.sync_overhead_us
        return total_us
