"""Line-delimited JSON-over-TCP front end for :class:`SIMDXServer`.

Demo CLI, not a production protocol: one JSON object per line in, one per
line out, so the server is drivable with ``nc``/``telnet`` or a few lines
of ``asyncio.open_connection``. Requests::

    {"algorithm": "bfs", "source": 3}
    {"algorithm": "sssp", "source": 7, "params": {"delta": 4.0}}
    {"cmd": "update", "inserts": [[3, 9]], "deletes": [[4, 7]]}
    {"cmd": "stats"}

Responses carry a summary instead of the raw per-vertex array (which is
``num_vertices`` floats): the count of reached/finite vertices and the
finite-value checksum, enough to cross-check against a direct
``run_batch`` call. Example::

    {"ok": true, "lane": 1, "batch_size": 4, "iterations": 9,
     "elapsed_us": 1234.5, "queue_wait_ms": 1.9, "reached": 4846,
     "values_sum": 40913.0, "batch_fill": 0.25}

Run ``python -m repro.serve --demo 12`` for a self-contained demo: it
starts the server on an ephemeral port, fires 12 concurrent BFS/SSSP
queries through a TCP client, prints the responses and shuts down - the
mode the docs job executes.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import Optional

import numpy as np

from repro.core.engine import EngineConfig
from repro.graph.datasets import load_dataset
from repro.serve.policy import AdmissionPolicy, ServerOverloaded
from repro.serve.server import EngineFailure, SIMDXServer


def _summarize(values: np.ndarray) -> dict:
    finite = np.isfinite(np.asarray(values, dtype=np.float64))
    return {
        "reached": int(finite.sum()),
        "values_sum": float(np.asarray(values)[finite].sum()),
    }


async def _process(server: SIMDXServer, request: dict) -> dict:
    """One request -> one response payload (exceptions become errors)."""
    if request.get("cmd") == "stats":
        return {"ok": True, "stats": server.stats}
    if request.get("cmd") == "update":
        try:
            receipt = await server.update(
                inserts=request.get("inserts"),
                insert_weights=request.get("insert_weights"),
                deletes=request.get("deletes"),
            )
        except (ValueError, TypeError) as exc:
            return {"ok": False, "error": "bad_update", "detail": str(exc)}
        return {"ok": True, **receipt}
    try:
        result = await server.submit(
            request["algorithm"],
            request["source"],
            request.get("params"),
        )
    except ServerOverloaded as exc:
        return {"ok": False, "error": "overloaded", "detail": str(exc)}
    except EngineFailure as exc:
        return {"ok": False, "error": "engine_failure", "detail": exc.reason}
    except (KeyError, ValueError) as exc:
        return {"ok": False, "error": "bad_request", "detail": str(exc)}
    payload = {
        "ok": True,
        "cache_outcome": result.extra.get("cache_outcome", "miss"),
        "lane": result.lane,
        "batch_size": result.batch_size,
        "iterations": result.iterations,
        "elapsed_us": result.elapsed_us,
        "queue_wait_ms": 1000.0 * result.queue_wait_s,
        "batch_fill": result.extra.get("serve_batch_fill"),
    }
    payload.update(_summarize(result.values))
    return payload


async def _handle_client(
    server: SIMDXServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    # Requests on one connection process *concurrently* (so a pipelined
    # client's queries can share a batch) while responses are written back
    # in request order: the reader enqueues one task per line, the writer
    # loop awaits them FIFO.
    responses: "asyncio.Queue[object]" = asyncio.Queue()

    async def write_responses() -> None:
        while True:
            task = await responses.get()
            if task is None:
                break
            payload = await task
            writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()

    writer_task = asyncio.ensure_future(write_responses())
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                error = {"ok": False, "error": f"bad json: {exc}"}

                async def _echo(payload=error) -> dict:
                    return payload

                responses.put_nowait(asyncio.ensure_future(_echo()))
                continue
            task = asyncio.ensure_future(_process(server, request))
            responses.put_nowait(task)
            if request.get("cmd") == "update":
                # Barrier: later lines on this connection must observe the
                # new graph version (no stale cache hits after the client
                # could have seen the update's acknowledgement).
                await task
        responses.put_nowait(None)
        await writer_task
    except (asyncio.CancelledError, ConnectionResetError):
        # Server closing underneath us (demo teardown) or client gone.
        writer_task.cancel()
    finally:
        writer.close()


async def serve_tcp(
    server: SIMDXServer, host: str, port: int
) -> asyncio.AbstractServer:
    await server.start()
    return await asyncio.start_server(
        lambda r, w: _handle_client(server, r, w), host, port
    )


async def _demo(server: SIMDXServer, host: str, port: int, count: int) -> int:
    tcp = await serve_tcp(server, host, port)
    port = tcp.sockets[0].getsockname()[1]
    print(f"serving {server.graph.name} on {host}:{port}")
    reader, writer = await asyncio.open_connection(host, port)
    degrees = server.graph.out_degrees()
    hubs = np.argsort(-degrees, kind="stable")[: max(count, 1)]
    requests = []
    for index in range(count):
        source = int(hubs[index % len(hubs)])
        if index % 2 == 0:
            requests.append({"algorithm": "bfs", "source": source})
        else:
            requests.append({"algorithm": "sssp", "source": source,
                             "params": {"delta": 2.0 + index % 3}})
    # One writer, many in-flight queries: responses come back in request
    # order per connection (the handler loop is sequential per client),
    # but batches form across whatever is queued when the policy fires.
    for request in requests:
        writer.write((json.dumps(request) + "\n").encode())
    await writer.drain()
    for request in requests:
        line = await reader.readline()
        response = json.loads(line)
        status = "ok" if response.get("ok") else response.get("error")
        print(f"{request['algorithm']:>5} src={request['source']:<8} "
              f"-> {status}, batch={response.get('batch_size')}, "
              f"reached={response.get('reached')}, "
              f"wait={response.get('queue_wait_ms', 0):.2f}ms")
    # Exercise the dynamic-update path: insert two hub-to-hub edges, then
    # repeat the first query - the cache entry is stale after the update,
    # so the server re-runs it on the new snapshot.
    update = {"cmd": "update",
              "inserts": [[int(hubs[0]), int(hubs[-1])],
                          [int(hubs[-1]), int(hubs[1 % len(hubs)])]]}
    writer.write((json.dumps(update) + "\n").encode())
    await writer.drain()
    applied = json.loads(await reader.readline())
    print(f"update -> ok={applied.get('ok')}, "
          f"version={applied.get('version')}, "
          f"inserted={applied.get('inserted')}")
    for _ in range(2):  # first re-runs at the new version, second hits
        writer.write((json.dumps(requests[0]) + "\n").encode())
        await writer.drain()
        response = json.loads(await reader.readline())
        print(f"{requests[0]['algorithm']:>5} "
              f"src={requests[0]['source']:<8} "
              f"-> {response.get('cache_outcome')}, "
              f"reached={response.get('reached')}")
    writer.write((json.dumps({"cmd": "stats"}) + "\n").encode())
    await writer.drain()
    stats = json.loads(await reader.readline())["stats"]
    print(f"stats: {stats}")
    writer.close()
    tcp.close()
    await tcp.wait_closed()
    await server.shutdown()
    return 0


async def _serve_forever(server: SIMDXServer, host: str, port: int) -> int:
    tcp = await serve_tcp(server, host, port)
    port = tcp.sockets[0].getsockname()[1]
    print(f"serving {server.graph.name} on {host}:{port} (ctrl-C to stop)")
    async with tcp:
        await tcp.serve_forever()
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="JSON-over-TCP serving demo for SIMDXServer.",
    )
    parser.add_argument("--dataset", default="LJ",
                        help="dataset abbreviation (default %(default)s)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale factor (default %(default)s)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, printed at start)")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--max-queue", type=int, default=1024)
    parser.add_argument("--demo", type=int, metavar="N", default=None,
                        help="fire N demo queries through a client and exit")
    args = parser.parse_args(argv)
    graph = load_dataset(args.dataset.upper(), args.scale)
    server = SIMDXServer(
        graph,
        policy=AdmissionPolicy(
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue,
        ),
        config=EngineConfig(),
        use_executor=True,
        cache=True,
    )
    if args.demo is not None:
        return asyncio.run(_demo(server, args.host, args.port, args.demo))
    return asyncio.run(_serve_forever(server, args.host, args.port))


if __name__ == "__main__":
    raise SystemExit(main())
