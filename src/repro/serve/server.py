"""Asyncio serving front-end over ``SIMDXEngine.run_batch``.

:class:`SIMDXServer` is the front door the ROADMAP's "millions of users"
story needs: callers ``await submit(algorithm, source, params)`` single
BFS/SSSP queries; the server accumulates them under an
:class:`~repro.serve.policy.AdmissionPolicy` (dispatch at ``max_batch``
lanes or when the oldest query has waited ``max_wait_ms``), answers each
formed batch with **one** union-frontier ``run_batch`` call on **one
reused engine**, and demultiplexes the per-lane results back to their
awaiting callers. Served answers are bit-identical to a direct
``run_batch`` call with the same batch composition
(``tests/test_serve.py`` enforces it, sanitized in CI).

The unhappy paths are part of the contract:

* **cancellation** - a caller that cancels ``submit`` before its batch
  forms is pruned from the queue (never occupies a lane); cancelled
  after dispatch, its lane still runs and the result is discarded;
* **backpressure** - a query arriving with ``max_queue`` live queries
  already queued is shed synchronously with
  :class:`~repro.serve.policy.ServerOverloaded`;
* **engine failure** - an OOM/overflow (or a raising algorithm hook)
  resolves exactly the affected batch's lanes with
  :class:`EngineFailure`; queued and future batches are untouched;
* **shutdown** - ``shutdown(drain=True)`` stops admission, dispatches
  every queued query (ignoring ``max_wait_ms``) and resolves all
  in-flight futures before returning.

Two request types beyond plain queries (docs/dynamic.md, docs/caching.md):

* **updates** - ``await update(inserts=..., deletes=...)`` enqueues an
  edge-update batch against the server's
  :class:`~repro.dyn.overlay.DynamicGraph`. Updates apply *between*
  batches on the dispatch loop (a dispatched batch always runs against
  one consistent snapshot); the awaited future resolves once the update
  is live, so a caller that awaits it sees every later query answered on
  the new graph version. Applying an update swaps in an engine on the new
  snapshot and eagerly repairs the cache's landmark entries.
* **cache** - constructed with ``cache=True`` (or a
  :class:`~repro.cache.results.ResultCache`), ``submit`` consults the
  cache *before* batch admission: a hit at the current graph version
  resolves immediately with the stored values - bit-identical to what a
  batch lane would return - and never occupies queue or batch capacity
  (``tests/test_serve.py`` pins that). Cache-served results carry
  ``lane=-1, batch_index=-1, batch_size=0``.

The engine's ``run_batch`` is synchronous and CPU-bound (the GPU is
simulated), so by default it runs inline on the event loop - dispatches
serialize, which is also what one physical device would do. Pass
``use_executor=True`` to run batches on the default thread pool instead
(the TCP demo does, so slow batches do not stall accepts).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.algorithms import ALGORITHMS
from repro.analysis import registry as extra_keys
from repro.cache.results import ResultCache
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.metrics import BatchRunResult
from repro.dyn.overlay import DynamicGraph, EdgeUpdateBatch
from repro.gpu.device import GPUDevice, K40
from repro.serve.batcher import BatchFormer, PendingQuery
from repro.serve.policy import AdmissionPolicy, ServerOverloaded

__all__ = [
    "EngineFailure",
    "ServedResult",
    "SIMDXServer",
    "ServerOverloaded",
]


class EngineFailure(RuntimeError):
    """The engine failed the batch this query was dispatched in.

    Carries the engine's failure reason (OOM, filter overflow, a raising
    algorithm hook). Only the lanes of the failed batch see it.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class ServedResult:
    """What one caller gets back for one submitted query."""

    #: This query's metadata values (lane slice of the batch result).
    values: np.ndarray
    #: Lane index the query occupied in its batch; -1 for a result served
    #: from the cache (which never occupied a lane).
    lane: int
    #: Index of the batch in :attr:`SIMDXServer.batch_log` - with
    #: ``lane``, the exact coordinates to replay this query's answer
    #: through a direct ``run_batch`` call.
    batch_index: int
    #: Number of lanes the batch dispatched with.
    batch_size: int
    #: Iterations the batch ran (union convergence).
    iterations: int
    #: Simulated device time of the whole batch, microseconds.
    elapsed_us: float
    #: Seconds this query waited between admission and dispatch.
    queue_wait_s: float
    #: The batch's ``extra`` counters plus the ``serve_*`` keys
    #: (:data:`repro.analysis.registry.SERVE_BATCH_FILL`,
    #: :data:`~repro.analysis.registry.SERVE_QUEUE_WAIT_US`). Shared
    #: (read-only by convention) between the batch's lanes.
    extra: Mapping[str, object] = field(default_factory=dict)


#: Algorithms the server accepts: the multi-source traversals
#: ``run_batch`` can lane-parallelize. Constructors must accept
#: ``source=`` (the per-lane override ``run_batch`` applies at init).
SERVABLE_ALGORITHMS: Dict[str, Callable] = {
    name: cls
    for name, cls in ALGORITHMS.items()
    if getattr(cls, "supports_multi_source", False)
}


class SIMDXServer:
    """Admission queue + batch former + one reused engine per device."""

    def __init__(
        self,
        graph,
        *,
        policy: Optional[AdmissionPolicy] = None,
        config: Optional[EngineConfig] = None,
        device: Optional[GPUDevice] = None,
        algorithms: Optional[Dict[str, Callable]] = None,
        use_executor: bool = False,
        cache: Optional[object] = None,
    ):
        #: The dynamic-graph overlay behind ``update``. A plain CSRGraph
        #: is wrapped (its snapshot is the graph itself until the first
        #: update); pass a DynamicGraph to control rebuild_threshold.
        self.dyn = (
            graph if isinstance(graph, DynamicGraph) else DynamicGraph(graph)
        )
        self.graph = self.dyn.snapshot()
        self.policy = policy if policy is not None else AdmissionPolicy()
        #: One engine, reused across every dispatched batch - the
        #: engine-reuse contract ``tests/test_engine_reuse.py`` pins
        #: (consecutive runs bit-identical to fresh-engine runs). An
        #: applied update swaps in a fresh engine on the new snapshot
        #: (graph-derived caches - classifiers, in-degrees, transpose -
        #: belong to one immutable graph).
        self.engine = SIMDXEngine(
            self.graph,
            device=device if device is not None else GPUDevice(K40),
            config=config,
        )
        #: Result cache consulted by ``submit`` before batch admission;
        #: None disables reuse. ``cache=True`` builds a default
        #: ResultCache.
        # Not ``cache or None``: an *empty* ResultCache is falsy (len 0).
        if cache is True:
            self.cache: Optional[ResultCache] = ResultCache()
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self._algorithms = dict(
            algorithms if algorithms is not None else SERVABLE_ALGORITHMS
        )
        # Template instances, built once per algorithm: parameter names in
        # ``submit(params=...)`` are validated against these attributes so
        # a typo'd parameter fails its own caller synchronously instead of
        # poisoning the whole batch inside ``run_batch``.
        self._templates: Dict[str, object] = {}
        self._use_executor = use_executor
        self._former = BatchFormer(self.policy)
        self._wake = asyncio.Event()
        self._dispatch_task: Optional[asyncio.Task] = None
        self._closed = False
        self._drain_on_close = True
        #: Composition of every dispatched batch (algorithm, sources,
        #: lane_params) - the replay record the differential tests use to
        #: re-run each batch directly through a fresh engine.
        self.batch_log: List[Dict[str, object]] = []
        #: Test seam: called with the popped batch after it leaves the
        #: queue and before the engine runs - the only window in which a
        #: caller counts as "cancelled after dispatch".
        self._before_dispatch: Optional[Callable[[List[PendingQuery]], None]] = None
        #: Pending (EdgeUpdateBatch, future) pairs the dispatch loop
        #: applies between batches.
        self._updates: List[tuple] = []
        self._stats: Dict[str, float] = {
            "submitted": 0,
            "served": 0,
            "shed": 0,
            "cancelled_after_dispatch": 0,
            "failed": 0,
            "batches": 0,
            "cache_hits": 0,
            "updates": 0,
        }

    @property
    def stats(self) -> Dict[str, float]:
        """Serving counters (snapshot; includes the former's prune count)."""
        snapshot = dict(self._stats)
        snapshot["cancelled_before_dispatch"] = self._former.pruned
        return snapshot

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SIMDXServer":
        """Start the dispatch loop (idempotent)."""
        if self._dispatch_task is None:
            self._dispatch_task = asyncio.ensure_future(self._dispatch_loop())
        return self

    async def __aenter__(self) -> "SIMDXServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop admission; drain (default) or cancel the queued queries."""
        self._closed = True
        self._drain_on_close = drain
        self._wake.set()
        if self._dispatch_task is not None:
            await self._dispatch_task
            self._dispatch_task = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _template(self, algorithm: str):
        if algorithm not in self._algorithms:
            raise KeyError(
                f"unknown or non-batchable algorithm {algorithm!r}; "
                f"servable: {sorted(self._algorithms)}"
            )
        if algorithm not in self._templates:
            self._templates[algorithm] = self._algorithms[algorithm](source=0)
        return self._templates[algorithm]

    async def submit(
        self,
        algorithm: str,
        source: int,
        params: Optional[Mapping[str, object]] = None,
    ) -> ServedResult:
        """Answer one query; resolves when its batch has been served.

        Raises :class:`~repro.serve.policy.ServerOverloaded` when the
        admission queue is full, ``KeyError``/``ValueError`` on an unknown
        algorithm / parameter / source (synchronously - before the query
        occupies queue capacity), :class:`EngineFailure` when the engine
        fails the batch this query was dispatched in.
        """
        if self._closed:
            raise RuntimeError("server is shut down")
        template = self._template(algorithm)
        source = int(source)
        if not 0 <= source < self.graph.num_vertices:
            raise ValueError(
                f"source {source} out of range for "
                f"{self.graph.num_vertices}-vertex graph"
            )
        params = dict(params or {})
        for key in params:
            if not hasattr(template, key):
                raise ValueError(
                    f"unknown {algorithm} parameter {key!r} in params"
                )
        # Cache consult happens *before* batch admission: a hit at the
        # current graph version is served from the stored values (which
        # came out of an engine run or an exact repair, so they are the
        # bits a batch lane would return) and never consumes queue or
        # batch capacity.
        if self.cache is not None:
            entry = self.cache.lookup(
                algorithm, source, params, version=self.dyn.version
            )
            if entry is not None and entry.version == self.dyn.version:
                self._stats["cache_hits"] += 1
                return ServedResult(
                    values=np.array(entry.values, copy=True),
                    lane=-1,
                    batch_index=-1,
                    batch_size=0,
                    iterations=0,
                    elapsed_us=0.0,
                    queue_wait_s=0.0,
                    extra={
                        extra_keys.CACHE_OUTCOME: "hit",
                        extra_keys.DYN_GRAPH_VERSION: self.dyn.version,
                    },
                )
        if self._dispatch_task is None:
            await self.start()
        loop = asyncio.get_event_loop()
        query = PendingQuery(
            algorithm=algorithm,
            source=source,
            params=params,
            enqueued_at=loop.time(),
            future=loop.create_future(),
        )
        try:
            self._former.add(query)
        except ServerOverloaded:
            self._stats["shed"] += 1
            raise
        self._stats["submitted"] += 1
        self._wake.set()
        return await query.future

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    async def update(
        self,
        *,
        inserts=None,
        insert_weights=None,
        deletes=None,
    ) -> Dict[str, object]:
        """Apply one edge-update batch; resolves once the update is live.

        The batch is validated synchronously (range / self-loop errors
        raise here, before anything is enqueued) and applied on the
        dispatch loop between batches, so every dispatched batch runs
        against one consistent snapshot. The resolved dict reports the
        new graph version, what the batch changed and how many landmark
        cache entries were repaired forward.
        """
        if self._closed:
            raise RuntimeError("server is shut down")
        batch = EdgeUpdateBatch.of(
            inserts=inserts, insert_weights=insert_weights, deletes=deletes
        )
        n = self.graph.num_vertices
        for pairs in (batch.inserts, batch.deletes):
            if pairs.size:
                if pairs.min() < 0 or pairs.max() >= n:
                    raise ValueError(
                        f"update vertex id out of range for {n}-vertex graph"
                    )
                if bool((pairs[:, 0] == pairs[:, 1]).any()):
                    raise ValueError("self-loop updates are not supported")
        if self._dispatch_task is None:
            await self.start()
        loop = asyncio.get_event_loop()
        future = loop.create_future()
        self._updates.append((batch, future))
        self._wake.set()
        return await future

    def _apply_pending_updates(self) -> None:
        """Apply queued updates; runs on the dispatch loop between batches."""
        while self._updates:
            batch, future = self._updates.pop(0)
            try:
                receipt = self.dyn.apply(batch)
            except Exception as exc:  # noqa: BLE001 - caller's batch, caller's error
                if not future.done():
                    future.set_exception(exc)
                continue
            self.graph = self.dyn.snapshot()
            self.engine = SIMDXEngine(
                self.graph,
                device=self.engine.device,
                config=self.engine.config,
            )
            self._stats["updates"] += 1
            refreshed = 0
            if self.cache is not None:
                refreshed = self.cache.refresh_landmarks(
                    receipt,
                    algorithms=self._algorithms,
                    config=self.engine.config,
                )
            if not future.done():
                future.set_result(
                    {
                        "version": self.dyn.version,
                        "inserted": int(receipt.insert_edges.shape[0]),
                        "deleted": int(receipt.delete_edges.shape[0]),
                        "pending_edges": self.dyn.pending_edges,
                        "rebuilds": self.dyn.rebuilds,
                        "landmarks_refreshed": refreshed,
                    }
                )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            self._apply_pending_updates()
            batch = self._former.next_batch(loop.time())
            if batch is not None:
                await self._dispatch(batch)
                continue
            if self._closed:
                break
            deadline = self._former.next_deadline()
            timeout = (
                None if deadline is None else max(0.0, deadline - loop.time())
            )
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        # Closed: drain what is still queued, or cancel it. Either way
        # every queued query pops (force=True ignores the dispatch
        # policy) so no caller is left awaiting a forgotten future.
        while True:
            self._apply_pending_updates()
            batch = self._former.next_batch(loop.time(), force=True)
            if batch is None:
                break
            if self._drain_on_close:
                await self._dispatch(batch)
            else:
                for query in batch:
                    if not query.future.done():
                        query.future.cancel()
        # Updates that arrived during the drain still resolve.
        self._apply_pending_updates()

    async def _dispatch(self, batch: List[PendingQuery]) -> None:
        loop = asyncio.get_event_loop()
        if self._before_dispatch is not None:
            self._before_dispatch(batch)
        sources = [query.source for query in batch]
        lane_params: Optional[List[Dict[str, object]]] = [
            query.params for query in batch
        ]
        if not any(lane_params):
            lane_params = None
        algorithm_name = batch[0].algorithm
        algorithm = self._algorithms[algorithm_name](source=sources[0])
        self.batch_log.append(
            {
                "algorithm": algorithm_name,
                "sources": list(sources),
                "lane_params": (
                    [dict(p) for p in lane_params]
                    if lane_params is not None else None
                ),
                # Snapshot version the batch ran against: replaying a log
                # that interleaves updates must rebuild this version.
                "graph_version": self.dyn.version,
            }
        )
        self._stats["batches"] += 1
        batch_index = len(self.batch_log) - 1
        dispatched_at = loop.time()
        waits = [dispatched_at - query.enqueued_at for query in batch]
        try:
            if self._use_executor:
                result: BatchRunResult = await loop.run_in_executor(
                    None,
                    lambda: self.engine.run_batch(
                        algorithm, sources, lane_params=lane_params
                    ),
                )
            else:
                result = self.engine.run_batch(
                    algorithm, sources, lane_params=lane_params
                )
        except Exception as exc:  # noqa: BLE001 - fault isolation boundary
            self._fail_batch(batch, f"{type(exc).__name__}: {exc}")
            return
        if result.failed:
            self._fail_batch(batch, result.failure_reason)
            return
        extra = dict(result.extra)
        extra[extra_keys.SERVE_BATCH_FILL] = len(batch) / self.policy.max_batch
        extra[extra_keys.SERVE_QUEUE_WAIT_US] = float(
            1e6 * sum(waits) / len(waits)
        )
        extra[extra_keys.DYN_GRAPH_VERSION] = self.dyn.version
        if self.cache is not None:
            # Updates only apply between dispatches on this same loop, so
            # the current version is the version the batch ran against.
            version = self.dyn.version
            for lane, query in enumerate(batch):
                self.cache.store(
                    query.algorithm,
                    query.source,
                    query.params,
                    result.values[lane],
                    version=version,
                )
        for lane, query in enumerate(batch):
            if query.future.done():
                # Cancelled between dispatch and demultiplex: the lane ran
                # with the batch; its result is discarded here.
                self._stats["cancelled_after_dispatch"] += 1
                continue
            query.future.set_result(
                ServedResult(
                    values=result.values[lane],
                    lane=lane,
                    batch_index=batch_index,
                    batch_size=len(batch),
                    iterations=result.iterations,
                    elapsed_us=result.elapsed_us,
                    queue_wait_s=waits[lane],
                    extra=extra,
                )
            )
            self._stats["served"] += 1

    def _fail_batch(self, batch: List[PendingQuery], reason: str) -> None:
        """Engine failure propagates to exactly this batch's lanes."""
        self._stats["failed"] += len(batch)
        for query in batch:
            if not query.future.done():
                query.future.set_exception(EngineFailure(reason))
