"""Asyncio serving layer: live query traffic -> ``run_batch`` batches.

The front door of the reproduction's serving story (docs/serving.md):

* :class:`~repro.serve.policy.AdmissionPolicy` - when a forming batch
  dispatches (``max_batch`` / ``max_wait_ms``) and when load is shed
  (``max_queue``);
* :class:`~repro.serve.batcher.BatchFormer` - the per-algorithm
  admission queues (asyncio-free, shared with the §9 latency simulation);
* :class:`~repro.serve.server.SIMDXServer` - the asyncio server:
  ``await submit(algorithm, source, params)``, one reused engine,
  per-lane demultiplexing, cancellation/backpressure/failure semantics;
* ``python -m repro.serve`` - a line-delimited JSON-over-TCP demo front
  end (:mod:`repro.serve.__main__`).
"""

from repro.serve.batcher import BatchFormer, PendingQuery
from repro.serve.policy import AdmissionPolicy, ServerOverloaded
from repro.serve.server import (
    EngineFailure,
    SERVABLE_ALGORITHMS,
    ServedResult,
    SIMDXServer,
)

__all__ = [
    "AdmissionPolicy",
    "BatchFormer",
    "EngineFailure",
    "PendingQuery",
    "SERVABLE_ALGORITHMS",
    "ServedResult",
    "ServerOverloaded",
    "SIMDXServer",
]
