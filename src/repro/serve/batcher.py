"""Batch formation: turn a stream of single queries into run_batch batches.

:class:`BatchFormer` is the data structure between ``submit`` and the
engine: per-algorithm FIFO queues of :class:`PendingQuery`, a shared
``max_queue`` depth bound, and the dispatch decision delegated to
:class:`~repro.serve.policy.AdmissionPolicy`. It is asyncio-free - time
is passed in and the caller owns the futures - so the server's event loop
and the deterministic §9 latency simulation form batches through the same
code.

Cancellation contract: a query whose future was cancelled while queued is
*pruned* - it never occupies a lane, and it stops counting against
``max_queue`` from the next ``add``/``next_batch`` call on. A query
cancelled after its batch popped is the server's problem (the lane runs;
its result is discarded on demultiplex).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.serve.policy import AdmissionPolicy, ServerOverloaded


@dataclass
class PendingQuery:
    """One admitted query waiting for its batch to form."""

    algorithm: str
    source: int
    #: Per-lane parameter overrides, passed through ``run_batch``'s
    #: ``lane_params`` entry for this query's lane (e.g. an SSSP delta).
    params: Dict[str, object] = field(default_factory=dict)
    #: Admission instant (event-loop or simulated seconds).
    enqueued_at: float = 0.0
    #: The caller's result future; ``None`` in pure simulations.
    future: Optional[object] = None

    @property
    def cancelled(self) -> bool:
        return self.future is not None and self.future.cancelled()


class BatchFormer:
    """Per-algorithm admission queues + the dispatch decision."""

    def __init__(self, policy: AdmissionPolicy):
        self.policy = policy
        # Insertion-ordered so tie-breaks between algorithms are
        # deterministic (first algorithm to queue a query wins).
        self._queues: "OrderedDict[str, Deque[PendingQuery]]" = OrderedDict()
        #: Queries dropped because their future was cancelled while queued.
        self.pruned = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Live (non-cancelled) queries currently queued, all algorithms."""
        self._prune()
        return sum(len(q) for q in self._queues.values())

    def add(self, query: PendingQuery) -> None:
        """Admit ``query`` or shed it with :class:`ServerOverloaded`."""
        self._prune()
        if not self.policy.admits(sum(len(q) for q in self._queues.values())):
            raise ServerOverloaded(
                f"admission queue full (max_queue={self.policy.max_queue})"
            )
        self._queues.setdefault(query.algorithm, deque()).append(query)

    def _prune(self) -> None:
        """Drop queries cancelled while queued (the pre-dispatch contract)."""
        for name, queue in list(self._queues.items()):
            if any(q.cancelled for q in queue):
                kept = deque(q for q in queue if not q.cancelled)
                self.pruned += len(queue) - len(kept)
                self._queues[name] = kept
            if not self._queues[name]:
                del self._queues[name]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def next_deadline(self) -> Optional[float]:
        """Earliest instant some queue's head query must dispatch by."""
        self._prune()
        deadlines = [
            self.policy.deadline(queue[0].enqueued_at)
            for queue in self._queues.values()
        ]
        return min(deadlines) if deadlines else None

    def next_batch(
        self, now: float, *, force: bool = False
    ) -> Optional[List[PendingQuery]]:
        """Pop the next dispatchable batch, or ``None`` if nothing is due.

        Among the algorithms whose queue satisfies
        :meth:`AdmissionPolicy.should_dispatch` at ``now``, the one with
        the oldest head query dispatches first; up to ``max_batch``
        queries pop in FIFO order. ``force=True`` (shutdown drain)
        dispatches the oldest non-empty queue regardless of the policy.
        """
        self._prune()
        best: Optional[str] = None
        for name, queue in self._queues.items():
            due = force or self.policy.should_dispatch(
                len(queue), now - queue[0].enqueued_at
            )
            if due and (
                best is None
                or queue[0].enqueued_at < self._queues[best][0].enqueued_at
            ):
                best = name
        if best is None:
            return None
        queue = self._queues[best]
        batch = [
            queue.popleft()
            for _ in range(min(self.policy.max_batch, len(queue)))
        ]
        if not queue:
            del self._queues[best]
        return batch
