"""Admission policy of the serving layer: when a forming batch dispatches.

The policy is deliberately a pure, time-agnostic value object: the live
asyncio server (:mod:`repro.serve.server`) and the deterministic
discrete-event latency sweep (:func:`repro.bench.experiments.serving_latency`,
EXPERIMENTS.md §9) both drive their batching decisions through the same
three methods here, so the simulated latency numbers exercise exactly the
admission semantics production traffic would see.

Two knobs trade latency against throughput, one bounds memory:

* ``max_batch`` - dispatch as soon as K queued queries of one algorithm
  can fill a full :meth:`SIMDXEngine.run_batch` batch;
* ``max_wait_ms`` - dispatch a partial batch once its *oldest* query has
  waited this long, bounding the latency a lonely query pays for the
  chance of amortization;
* ``max_queue`` - total admission-queue bound (across algorithms): a
  query arriving at a full queue is shed with :class:`ServerOverloaded`
  instead of growing an unbounded backlog (explicit backpressure).
"""

from __future__ import annotations

from dataclasses import dataclass


class ServerOverloaded(RuntimeError):
    """The admission queue is at ``max_queue``; this query was shed.

    Raised synchronously by ``submit`` (before any future is created) so
    the caller can retry with backoff - the serving analogue of HTTP 429.
    """


@dataclass(frozen=True)
class AdmissionPolicy:
    """When does a forming batch dispatch, and when do we shed load."""

    max_batch: int = 16
    max_wait_ms: float = 2.0
    max_queue: int = 1024

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1000.0

    def admits(self, queue_depth: int) -> bool:
        """May a new query join a queue currently holding ``queue_depth``?"""
        return queue_depth < self.max_queue

    def should_dispatch(self, queue_depth: int, oldest_wait_s: float) -> bool:
        """Dispatch when the batch is full OR the oldest query waited out.

        ``queue_depth`` counts the queries of *one* algorithm (lanes of a
        batch must share the algorithm); ``oldest_wait_s`` is how long the
        head query has been queued, in seconds.
        """
        if queue_depth <= 0:
            return False
        return queue_depth >= self.max_batch or oldest_wait_s >= self.max_wait_s

    def deadline(self, oldest_enqueued_at: float) -> float:
        """Latest instant the head query's batch may keep forming."""
        return oldest_enqueued_at + self.max_wait_s
