"""Cross-query result reuse: landmark/result cache (docs/caching.md).

:mod:`repro.cache.results` stores finished per-query values keyed by
``(algorithm, source, params)`` and tagged with the
:class:`repro.dyn.overlay.DynamicGraph` version they were computed at;
hot sources are promoted to pinned *landmarks*. :mod:`repro.cache.reuse`
wraps a dynamic graph, a cache and the engine into one query front-end
that serves repeated queries from the cache, repairs near-repeated ones
(stale entries) forward through the exact update receipts, and falls
back to a normal engine run otherwise - every path returning the same
bits a from-scratch run would (the exactness contract).
"""

from repro.cache.results import CacheEntry, ResultCache
from repro.cache.reuse import CachedAnswer, CachedQueryEngine

__all__ = [
    "CacheEntry",
    "ResultCache",
    "CachedAnswer",
    "CachedQueryEngine",
]
