"""One query front-end over the dynamic graph, cache and engine.

:class:`CachedQueryEngine` answers ``query(algorithm, source)`` calls
through a three-way decision, every branch of which returns the same
bits a from-scratch engine run on the current snapshot would:

* **hit** - the cache holds this query's values at the current graph
  version; serve a copy (the stored array came out of an engine run or
  an exact repair, so it *is* the from-scratch answer);
* **repair** - the cache holds the values at an older version and the
  dynamic graph still retains the receipt chain; repair the entry
  forward through each receipt with
  :class:`repro.dyn.incremental.IncrementalRecompute` (exact by the
  monotone fixed-point argument - see docs/dynamic.md) and serve;
* **miss** - run the engine on the current snapshot (the exact
  fallback), then store.

The differential fuzz harness's dyn axis interleaves random update
batches with queries through this class and checks every answer against
a fresh from-scratch run, bit for bit, sanitize-clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.algorithms import ALGORITHMS
from repro.analysis import registry as extra_keys
from repro.cache.results import ResultCache
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.metrics import RunResult
from repro.dyn.incremental import (
    REPAIRABLE_ALGORITHMS,
    IncrementalRecompute,
)
from repro.dyn.overlay import DynamicGraph, EdgeUpdateBatch, UpdateReceipt


@dataclass(frozen=True)
class CachedAnswer:
    """What ``query`` returns."""

    #: The query's values (a private copy; identical to a from-scratch run).
    values: np.ndarray
    #: "hit", "repair" or "miss" (registry.CACHE_OUTCOME vocabulary).
    outcome: str
    #: Graph version the answer is valid for.
    version: int
    #: The engine result of the miss/repair run; None on a cache hit.
    result: Optional[RunResult] = None
    #: Annotations (cache_outcome, dyn_graph_version).
    extra: Mapping[str, object] = field(default_factory=dict)


class CachedQueryEngine:
    """Serve repeated and near-repeated queries exactly, via the cache."""

    def __init__(
        self,
        graph,
        *,
        config: Optional[EngineConfig] = None,
        device=None,
        cache: Optional[ResultCache] = None,
        algorithms: Optional[Dict[str, Callable]] = None,
        max_repair_chain: int = 8,
    ):
        self.dyn = (
            graph if isinstance(graph, DynamicGraph) else DynamicGraph(graph)
        )
        self.config = config
        self.device = device
        self.cache = cache if cache is not None else ResultCache()
        self._algorithms = dict(
            algorithms if algorithms is not None else ALGORITHMS
        )
        self.max_repair_chain = max_repair_chain
        self._recompute = IncrementalRecompute(config=config, device=device)
        self._engine: Optional[SIMDXEngine] = None
        self._engine_version = -1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        algorithm: str,
        source: Optional[int] = None,
        **params,
    ) -> CachedAnswer:
        """Answer one query, reusing cached results when exact."""
        if algorithm not in self._algorithms:
            raise KeyError(f"unknown algorithm {algorithm!r}")
        version = self.dyn.version
        entry = self.cache.lookup(algorithm, source, params, version=version)

        if entry is not None and entry.version == version:
            return self._answer(entry.values, "hit", version, None)

        if (
            entry is not None
            and algorithm in REPAIRABLE_ALGORITHMS
        ):
            chain = self.dyn.receipts_since(entry.version)
            if chain is not None and len(chain) <= self.max_repair_chain:
                values = entry.values
                result = None
                for receipt in chain:
                    result = self._recompute.run(
                        receipt, self._make(algorithm, source, params), values
                    )
                    if result.failed:
                        break
                    values = result.values
                if result is not None and not result.failed:
                    self.cache.store(
                        algorithm, source, params, values, version=version
                    )
                    return self._answer(values, "repair", version, result)

        result = self._run_scratch(algorithm, source, params)
        if result.failed:
            raise RuntimeError(
                f"engine failed {algorithm} query: {result.failure_reason}"
            )
        self.cache.store(
            algorithm, source, params, result.values, version=version
        )
        return self._answer(result.values, "miss", version, result)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(
        self,
        *,
        inserts=None,
        insert_weights=None,
        deletes=None,
        refresh_landmarks: bool = True,
    ) -> UpdateReceipt:
        """Apply one edge-update batch; optionally keep landmarks warm."""
        receipt = self.dyn.apply(
            EdgeUpdateBatch.of(
                inserts=inserts,
                insert_weights=insert_weights,
                deletes=deletes,
            )
        )
        if refresh_landmarks:
            self.cache.refresh_landmarks(
                receipt,
                algorithms=self._algorithms,
                config=self.config,
                device=self.device,
            )
        return receipt

    @property
    def stats(self) -> Dict[str, object]:
        return {**self.cache.stats, **self.dyn.stats()}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make(self, algorithm: str, source: Optional[int], params: Mapping):
        factory = self._algorithms[algorithm]
        if source is None:
            return factory(**params)
        return factory(source=int(source), **params)

    def _run_scratch(
        self, algorithm: str, source: Optional[int], params: Mapping
    ) -> RunResult:
        version = self.dyn.version
        if self._engine is None or self._engine_version != version:
            self._engine = SIMDXEngine(
                self.dyn.snapshot(), device=self.device, config=self.config
            )
            self._engine_version = version
        return self._engine.run(self._make(algorithm, source, params))

    def _answer(
        self,
        values: np.ndarray,
        outcome: str,
        version: int,
        result: Optional[RunResult],
    ) -> CachedAnswer:
        extra = {
            extra_keys.CACHE_OUTCOME: outcome,
            extra_keys.DYN_GRAPH_VERSION: version,
        }
        if self.config is not None and self.config.sanitize:
            from repro.analysis.sanitizer import validate_dyn_extra

            validate_dyn_extra(extra, raise_on_violation=True)
        return CachedAnswer(
            values=np.array(values, copy=True),
            outcome=outcome,
            version=version,
            result=result,
            extra=extra,
        )
