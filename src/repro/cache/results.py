"""Version-tagged LRU result cache with landmark pinning.

An entry stores one finished query's ``values`` array together with the
:class:`~repro.dyn.overlay.DynamicGraph` version it was computed at. A
lookup at the same version is an **exact hit** - the stored array *is*
the bits a fresh engine run would produce, so serving it preserves the
repository-wide bit-identity contract for free. A lookup at a newer
version is a **stale hit**: the caller may repair the entry forward
through the update receipts (:mod:`repro.dyn.incremental`) or treat it
as a miss; the cache itself never serves stale values.

Sources queried at least ``landmark_threshold`` times are promoted to
**landmarks**: pinned entries exempt from LRU eviction (bounded by
``landmark_capacity``), which the serving layer refreshes eagerly after
each graph update so the hot sources keep answering at the current
version. This is the repository's take on landmark-based distance
serving: rather than approximating d(s, t) through a landmark's
triangle inequality (which would break exactness), a landmark here is a
source whose full result is kept warm.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np


def params_key(params: Optional[Mapping[str, object]]) -> Tuple:
    """Canonical hashable form of a query's extra parameters."""
    if not params:
        return ()
    return tuple(sorted(params.items()))


@dataclass
class CacheEntry:
    """One cached query result."""

    algorithm: str
    source: Optional[int]
    params: Dict[str, object]
    values: np.ndarray
    #: DynamicGraph version the values were computed at.
    version: int
    hits: int = 0
    pinned: bool = False

    @property
    def key(self) -> Tuple:
        return (self.algorithm, self.source, params_key(self.params))


class ResultCache:
    """LRU cache of query results with version tags and landmark pinning."""

    def __init__(
        self,
        capacity: int = 128,
        *,
        landmark_threshold: int = 4,
        landmark_capacity: int = 16,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.landmark_threshold = landmark_threshold
        self.landmark_capacity = landmark_capacity
        self._entries: "OrderedDict[Tuple, CacheEntry]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "hits": 0,
            "stale_hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
            "landmarks_promoted": 0,
            "landmarks_refreshed": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def landmarks(self) -> int:
        return sum(1 for e in self._entries.values() if e.pinned)

    def entries(self) -> Iterator[CacheEntry]:
        return iter(list(self._entries.values()))

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def lookup(
        self,
        algorithm: str,
        source: Optional[int],
        params: Optional[Mapping[str, object]],
        *,
        version: int,
    ) -> Optional[CacheEntry]:
        """The entry for this query, or None.

        The returned entry may be *stale* (``entry.version < version``);
        callers decide whether to repair it forward or fall back. Stats
        classify the access as hit / stale_hit / miss against ``version``.
        """
        key = (algorithm, source, params_key(params))
        entry = self._entries.get(key)
        if entry is None:
            self.stats["misses"] += 1
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        if (
            not entry.pinned
            and entry.hits >= self.landmark_threshold
            and self.landmarks < self.landmark_capacity
        ):
            entry.pinned = True
            self.stats["landmarks_promoted"] += 1
        if entry.version == version:
            self.stats["hits"] += 1
        else:
            self.stats["stale_hits"] += 1
        return entry

    def store(
        self,
        algorithm: str,
        source: Optional[int],
        params: Optional[Mapping[str, object]],
        values: np.ndarray,
        *,
        version: int,
    ) -> CacheEntry:
        """Insert or refresh the entry for this query."""
        key = (algorithm, source, params_key(params))
        entry = self._entries.get(key)
        if entry is not None:
            entry.values = values
            entry.version = version
            self._entries.move_to_end(key)
        else:
            entry = CacheEntry(
                algorithm=algorithm,
                source=None if source is None else int(source),
                params=dict(params or {}),
                values=values,
                version=version,
            )
            self._entries[key] = entry
            self._evict()
        self.stats["stores"] += 1
        return entry

    def _evict(self) -> None:
        """Drop least-recently-used unpinned entries over capacity."""
        while len(self._entries) > self.capacity:
            victim_key = None
            for key, entry in self._entries.items():
                if not entry.pinned:
                    victim_key = key
                    break
            if victim_key is None:
                # Everything is pinned; capacity is soft in that case.
                return
            del self._entries[victim_key]
            self.stats["evictions"] += 1

    # ------------------------------------------------------------------
    # Update integration
    # ------------------------------------------------------------------
    def refresh_landmarks(
        self,
        receipt,
        *,
        algorithms: Mapping[str, object],
        config=None,
        device=None,
    ) -> int:
        """Repair pinned entries forward through one update receipt.

        Only entries that were current before the update (``version ==
        receipt.version - 1``) and whose algorithm supports incremental
        repair are refreshed; the repaired values are bit-identical to a
        from-scratch run on the new snapshot. Returns the refresh count.
        """
        from repro.dyn.incremental import (
            REPAIRABLE_ALGORITHMS,
            IncrementalRecompute,
        )

        recompute = IncrementalRecompute(config=config, device=device)
        refreshed = 0
        for entry in self.entries():
            if not entry.pinned:
                continue
            if entry.version != receipt.version - 1:
                continue
            if entry.algorithm not in REPAIRABLE_ALGORITHMS:
                continue
            factory = algorithms.get(entry.algorithm)
            if factory is None:
                continue
            if entry.source is None:
                algorithm = factory(**entry.params)
            else:
                algorithm = factory(source=entry.source, **entry.params)
            result = recompute.run(receipt, algorithm, entry.values)
            if result.failed:
                continue
            entry.values = result.values
            entry.version = receipt.version
            refreshed += 1
            self.stats["landmarks_refreshed"] += 1
        return refreshed

    def drop_stale(self, version: int) -> int:
        """Evict unpinned entries older than ``version``; returns count."""
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.version != version and not entry.pinned
        ]
        for key in stale:
            del self._entries[key]
            self.stats["evictions"] += 1
        return len(stale)
