"""Incremental recompute for the monotone min-combine algorithms.

BFS, SSSP and WCC share one structure: metadata starts at an upper bound
(infinity, or a vertex's own id) and only ever *decreases*, through a MIN
combine over per-edge offers that are monotone in their operands. On a
fixed graph that gives each of them a unique fixed point - the same one
the engine reaches from scratch, bit for bit, regardless of schedule or
direction (for SSSP the offer ``dist + w`` is evaluated in float64 the
same way on every path, so even float results are schedule-independent).

That uniqueness is what makes *repair* exact: seed the engine with any
warm state that is (a) everywhere >= the new fixed point and (b) paired
with a frontier from which every stale vertex is still reachable by
improving offers, and running to convergence lands on the identical bits
a from-scratch run produces. This module constructs such warm states from
an :class:`repro.dyn.overlay.UpdateReceipt`:

* **Inserts** only add offers, so values can only improve: keep the old
  result and seed the frontier with the inserted edges' source endpoints.
* **Deletes** can invalidate values. For BFS/SSSP the *support graph*
  (edges with ``old[v] == old[u] + w``, exact in float64) captures every
  way a value is justified; vertices whose every justification chain
  crossed a deleted support edge form the reset set - computed as the
  support-closure of the deleted support edges' destinations - and go
  back to infinity. For WCC, equal-label support cycles make that closure
  unsound, so repair resets every vertex of the components the deleted
  edges touched back to its own id.
* The seed frontier is the reset set's in-boundary in the *new* graph,
  plus insert sources, plus the query source when it was reset.

One warm-start hazard is handled explicitly: BFS's ``gather_mask`` only
gathers at unvisited (infinite) vertices, which is correct from scratch
but would starve a visited vertex whose level must *decrease* after an
insert. The warm-start wrapper substitutes the frontier-bound mask
(``level > min(frontier levels) + 1``), which never excludes a vertex an
offer could improve. SSSP's and WCC's masks are already frontier-bound
and warm-start safe.

Repair falls back to a from-scratch run (still exact, by definition)
whenever its preconditions do not hold - unsupported algorithm, or
non-positive edge weights, where the support graph may contain cycles.
The differential fuzz harness (`tests/test_differential_fuzz.py`, dyn
axis) checks repaired-vs-scratch bit-identity on every cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis import registry
from repro.core.acc import ACCAlgorithm, InitialState
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.metrics import RunResult
from repro.dyn.overlay import UpdateReceipt
from repro.graph.csr import CSRGraph

#: Algorithms incremental repair supports (monotone min-combine with a
#: unique fixed point). Everything else takes the from-scratch fallback.
REPAIRABLE_ALGORITHMS = ("bfs", "sssp", "wcc")


@dataclass(frozen=True)
class RepairPlan:
    """Warm state for one repair run: seeded metadata + frontier."""

    metadata: np.ndarray
    frontier: np.ndarray
    reset_vertices: int
    #: Frontier-bound gather-mask increment overriding the inner
    #: algorithm's mask (BFS); None delegates to the inner mask.
    gather_bound: Optional[float] = None

    @property
    def seed_vertices(self) -> int:
        return int(self.frontier.shape[0])


def metadata_from_values(name: str, values: np.ndarray, num_vertices: int) -> np.ndarray:
    """Reconstruct engine metadata from a result's ``values`` array."""
    values = np.asarray(values)
    if values.shape[0] != num_vertices:
        raise ValueError(
            f"result has {values.shape[0]} values for {num_vertices} vertices"
        )
    if name == "bfs":
        out = values.astype(np.float64)
        return np.where(out < 0, np.inf, out)
    if name in ("sssp", "wcc"):
        return values.astype(np.float64)
    raise ValueError(f"algorithm {name!r} is not repairable")


def plan_repair(
    name: str,
    receipt: UpdateReceipt,
    old_values: np.ndarray,
    *,
    source: Optional[int] = None,
) -> Optional[RepairPlan]:
    """Build the warm state for repairing ``old_values`` through ``receipt``.

    Returns ``None`` when repair preconditions fail and the caller must
    fall back to a from-scratch run.
    """
    if name not in REPAIRABLE_ALGORITHMS:
        return None
    n = receipt.num_vertices
    if receipt.old_graph.num_vertices != n:
        return None
    old_meta = metadata_from_values(name, old_values, n)

    if name == "wcc":
        return _plan_wcc(receipt, old_meta)

    if source is None or not (0 <= source < n):
        return None
    if name == "sssp":
        # Support-closure soundness needs strictly positive weights (the
        # support graph is acyclic because values strictly increase along
        # support edges).
        for g in (receipt.old_graph, receipt.new_graph):
            w = g.out_csr.weights
            if w.size and float(w.min()) <= 0.0:
                return None
    return _plan_traversal(name, receipt, old_meta, source)


def _plan_traversal(
    name: str, receipt: UpdateReceipt, old_meta: np.ndarray, source: int
) -> RepairPlan:
    """BFS/SSSP repair: support-closure reset + boundary frontier."""
    n = receipt.num_vertices
    weighted = name == "sssp"

    # Seeds: destinations of deleted edges that supported their old value.
    seeds = np.zeros(n, dtype=bool)
    if receipt.delete_edges.shape[0]:
        ds = receipt.delete_edges[:, 0]
        dd = receipt.delete_edges[:, 1]
        dw = (
            receipt.delete_weights.astype(np.float64)
            if weighted
            else np.ones(ds.shape[0], dtype=np.float64)
        )
        support = np.isfinite(old_meta[ds]) & (old_meta[dd] == old_meta[ds] + dw)
        seeds[dd[support]] = True

    reset = _support_closure(receipt.old_graph, old_meta, seeds, weighted)

    metadata = old_meta.copy()
    metadata[reset] = np.inf
    metadata[source] = 0.0

    frontier_mask = np.zeros(n, dtype=bool)
    _mark_boundary(frontier_mask, receipt.new_graph, reset, metadata)
    ins_src = receipt.insert_edges[:, 0]
    if ins_src.size:
        finite_src = ins_src[np.isfinite(metadata[ins_src])]
        frontier_mask[finite_src] = True
    if reset[source]:
        frontier_mask[source] = True
    reset_count = int(np.count_nonzero(reset))
    return RepairPlan(
        metadata=metadata,
        frontier=np.flatnonzero(frontier_mask).astype(np.int64),
        reset_vertices=reset_count,
        gather_bound=1.0 if name == "bfs" else None,
    )


def _plan_wcc(receipt: UpdateReceipt, old_meta: np.ndarray) -> RepairPlan:
    """WCC repair: reset whole components the deleted edges touched."""
    n = receipt.num_vertices
    reset = np.zeros(n, dtype=bool)
    if receipt.delete_edges.shape[0]:
        endpoints = receipt.delete_edges.reshape(-1)
        affected_labels = np.unique(old_meta[endpoints])
        reset = np.isin(old_meta, affected_labels)

    metadata = old_meta.copy()
    metadata[reset] = np.flatnonzero(reset).astype(np.float64)

    frontier_mask = reset.copy()
    _mark_boundary(frontier_mask, receipt.new_graph, reset, metadata)
    ins_src = receipt.insert_edges[:, 0]
    if ins_src.size:
        frontier_mask[ins_src] = True
    return RepairPlan(
        metadata=metadata,
        frontier=np.flatnonzero(frontier_mask).astype(np.int64),
        reset_vertices=int(np.count_nonzero(reset)),
    )


def _mark_boundary(
    frontier_mask: np.ndarray,
    graph: CSRGraph,
    reset: np.ndarray,
    metadata: np.ndarray,
) -> None:
    """Mark vertices with a finite value and an out-edge into the reset set."""
    if not reset.any():
        return
    out = graph.out_csr
    srcs = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), out.degrees())
    targets = out.targets.astype(np.int64)
    cand = srcs[reset[targets]]
    if cand.size:
        cand = np.unique(cand)
        frontier_mask[cand[np.isfinite(metadata[cand])]] = True


def _support_closure(
    graph: CSRGraph, old_meta: np.ndarray, seeds: np.ndarray, weighted: bool
) -> np.ndarray:
    """Closure of ``seeds`` over the old graph's support edges.

    A support edge satisfies ``old[v] == old[u] + w`` with ``u`` finite -
    the exact float64 identity the engine's relaxation established. With
    strictly positive weights values strictly increase along support
    edges, so the support graph is a DAG rooted at the query source and
    the closure collects exactly the vertices whose every justification
    chain crossed a seed.
    """
    out = graph.out_csr
    offsets = out.offsets.astype(np.int64)
    targets = out.targets.astype(np.int64)
    weights = out.weights.astype(np.float64)
    reset = seeds.copy()
    wave = np.flatnonzero(seeds)
    while wave.size:
        degs = offsets[wave + 1] - offsets[wave]
        total = int(degs.sum())
        if total == 0:
            break
        starts = offsets[wave]
        pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(np.cumsum(degs) - degs, degs)
            + np.repeat(starts, degs)
        )
        src_rep = np.repeat(wave, degs)
        tg = targets[pos]
        w = weights[pos] if weighted else 1.0
        support = np.isfinite(old_meta[src_rep]) & (
            old_meta[tg] == old_meta[src_rep] + w
        )
        cand = np.unique(tg[support])
        wave = cand[~reset[cand]]
        reset[wave] = True
    return reset


class WarmStartAlgorithm(ACCAlgorithm):
    """Wrap an ACC algorithm so the engine starts from a repair plan.

    ``init`` first runs the inner algorithm's ``init`` (allocating its
    per-run state - SSSP's pending set and bucket limit - against the new
    graph), then substitutes the plan's warm metadata and frontier and
    re-seeds the pending set from the warm frontier. All other hooks
    delegate, except ``gather_mask`` when the plan carries a
    ``gather_bound`` (the BFS warm-start hazard described in the module
    docstring).
    """

    def __init__(self, inner: ACCAlgorithm, plan: RepairPlan):
        self._inner = inner
        self._plan = plan
        self.name = inner.name
        self.combine_kind = inner.combine_kind
        self.combine_op = inner.combine_op
        self.max_iterations = inner.max_iterations
        self.uses_weights = inner.uses_weights
        self.starts_in_pull = inner.starts_in_pull
        self.no_update = inner.no_update
        # Warm runs repair one query; the batched path is not used.
        self.supports_multi_source = False

    def init(self, graph: CSRGraph, **params) -> InitialState:
        self._inner.init(graph, **params)
        metadata = self._plan.metadata.copy()
        frontier = self._plan.frontier.copy()
        pending = getattr(self._inner, "_pending", None)
        if pending is not None:
            pending[:] = False
            pending[frontier] = True
        return InitialState(metadata=metadata, frontier=frontier)

    def active_mask(self, curr, prev):
        return self._inner.active_mask(curr, prev)

    def compute_edges(self, src_meta, weights, dst_meta, src_ids, dst_ids, graph):
        return self._inner.compute_edges(
            src_meta, weights, dst_meta, src_ids, dst_ids, graph
        )

    def apply(self, old, combined, touched):
        return self._inner.apply(old, combined, touched)

    def converged(self, curr, prev, iteration):
        return self._inner.converged(curr, prev, iteration)

    def on_frontier_expanded(self, frontier, metadata):
        self._inner.on_frontier_expanded(frontier, metadata)

    def scatter_edges(
        self, src_meta, weights, dst_meta, src_ids, dst_ids, graph, lanes=None
    ):
        return self._inner.scatter_edges(
            src_meta, weights, dst_meta, src_ids, dst_ids, graph, lanes
        )

    def gather_edges(
        self, src_meta, weights, dst_meta, src_ids, dst_ids, graph, lanes=None
    ):
        return self._inner.gather_edges(
            src_meta, weights, dst_meta, src_ids, dst_ids, graph, lanes
        )

    def gather_mask(self, metadata, graph, frontier=None):
        bound = self._plan.gather_bound
        if bound is None:
            return self._inner.gather_mask(metadata, graph, frontier)
        if frontier is None or frontier.size == 0:
            return np.ones(metadata.shape[0], dtype=bool)
        # Frontier-bound form of the inner mask, safe under warm starts:
        # every offer this iteration is at least min(frontier) + bound, so
        # only strictly larger destinations can improve.
        return metadata > float(np.min(metadata[frontier])) + bound

    def vertex_value(self, metadata):
        return self._inner.vertex_value(metadata)

    def describe(self) -> dict:
        return {
            **self._inner.describe(),
            "warm_start": True,
            "reset_vertices": self._plan.reset_vertices,
            "seed_vertices": self._plan.seed_vertices,
        }


class IncrementalRecompute:
    """Repair previous results through update receipts, exactly.

    ``run`` returns a :class:`RunResult` bit-identical to a from-scratch
    engine run of ``algorithm`` on ``receipt.new_graph`` - via warm-start
    repair when the plan's preconditions hold, via the from-scratch
    fallback otherwise. The ``extra`` mapping is annotated with the
    repair-mode keys registered in :mod:`repro.analysis.registry`; under
    ``config.sanitize`` the annotations are validated against the
    sanitizer's dyn invariants.

    Composes with every engine configuration, including ``num_shards > 1``
    (the warm wrapper is an ordinary ACC algorithm, and repair runs on a
    materialized snapshot like any other run).
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        device=None,
    ):
        self.config = config
        self.device = device

    def run(
        self,
        receipt: UpdateReceipt,
        algorithm: ACCAlgorithm,
        old_values: Optional[np.ndarray],
        *,
        force_scratch: bool = False,
    ) -> RunResult:
        plan = None
        if old_values is not None and not force_scratch:
            plan = plan_repair(
                algorithm.name,
                receipt,
                old_values,
                source=getattr(algorithm, "source", None),
            )
        engine = SIMDXEngine(
            receipt.new_graph, device=self.device, config=self.config
        )
        if plan is None:
            result = engine.run(algorithm)
            mode, reset, seeds = "from_scratch", 0, 0
        else:
            result = engine.run(WarmStartAlgorithm(algorithm, plan))
            mode, reset, seeds = "incremental", plan.reset_vertices, plan.seed_vertices
        result.extra[registry.DYN_REPAIR_MODE] = mode
        result.extra[registry.DYN_REPAIR_RESET_VERTICES] = reset
        result.extra[registry.DYN_REPAIR_SEED_VERTICES] = seeds
        result.extra[registry.DYN_GRAPH_VERSION] = int(receipt.version)
        if self.config is not None and self.config.sanitize:
            from repro.analysis.sanitizer import validate_dyn_extra

            validate_dyn_extra(result.extra, raise_on_violation=True)
        return result
