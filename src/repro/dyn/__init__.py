"""Dynamic graph updates and incremental recompute (docs/dynamic.md).

Two pieces:

* :mod:`repro.dyn.overlay` - a delta overlay over the immutable
  :class:`repro.graph.csr.CSRGraph`: edge insert/delete batches accumulate
  in a small dictionary, every query runs against a materialized CSR
  snapshot, and a periodic rebuild folds the overlay back into the base
  CSR (invalidating the lazily-cached in-CSR transpose along the way).
* :mod:`repro.dyn.incremental` - incremental recompute for the monotone
  min-combine algorithms (BFS/SSSP/WCC): repair a previous result from
  the affected frontier instead of rerunning from scratch, with results
  bit-identical to a from-scratch engine run (the exactness contract the
  differential fuzz harness enforces).
"""

from repro.dyn.overlay import DynamicGraph, EdgeUpdateBatch, UpdateReceipt
from repro.dyn.incremental import (
    REPAIRABLE_ALGORITHMS,
    IncrementalRecompute,
    RepairPlan,
    plan_repair,
)

__all__ = [
    "DynamicGraph",
    "EdgeUpdateBatch",
    "UpdateReceipt",
    "REPAIRABLE_ALGORITHMS",
    "IncrementalRecompute",
    "RepairPlan",
    "plan_repair",
]
