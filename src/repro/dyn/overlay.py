"""Delta overlay over the immutable CSR graph.

:class:`repro.graph.csr.CSRGraph` is read-only shared state by contract -
every engine, shard and cache in the repository relies on that. Dynamic
workloads are therefore layered *on top*: a :class:`DynamicGraph` holds an
immutable base CSR plus a small dictionary of pending per-edge overrides
(insert with weight / delete), and materializes a fresh ``CSRGraph``
snapshot whenever the edge set changed. Queries always run against a
snapshot, so everything downstream - push/pull direction selection,
kernel backends, ``num_shards > 1`` sharding - composes unchanged: a
snapshot is just another immutable CSR graph.

Two consequences the rest of the subsystem depends on:

* **Snapshot equivalence.** A snapshot is bit-identical (offsets, targets,
  weights) to ``CSRGraph.from_edges`` on the merged logical edge list:
  the overlay reuses the same lexsort ordering and min-weight dedup
  semantics, so "dynamic" and "rebuilt from scratch" graphs are
  indistinguishable to the engine.
* **Transpose invalidation.** The in-CSR transpose of a directed graph is
  built lazily and cached *per CSRGraph object*. Because every apply
  produces a new snapshot object (and the periodic rebuild promotes a
  freshly-constructed base), a stale transpose can never be observed: the
  cache is invalidated by construction, which
  ``tests/test_dyn_overlay.py`` pins.

The vertex set is fixed at construction; updates add and remove edges
only. Undirected graphs store each logical edge in both directions
(matching ``from_edges`` symmetrization), and the overlay applies every
update to both stored directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.csr import (
    CSRGraph,
    GraphFormatError,
    WEIGHT_DTYPE,
    _build_csr,
)


@dataclass(frozen=True)
class EdgeUpdateBatch:
    """One batch of logical edge updates.

    ``inserts`` is an (I, 2) array of ``(src, dst)`` pairs with optional
    ``insert_weights`` (default weight 1.0 - deterministic, like the rest
    of the repository); ``deletes`` is a (D, 2) array of pairs. Within a
    batch, deletes are applied before inserts, so a pair appearing in both
    ends up present. Inserting an existing edge overwrites its weight
    (recorded as delete+insert in the receipt when the weight changed, so
    incremental repair sees weight increases as what they are: a removal
    of the old edge).
    """

    inserts: np.ndarray
    insert_weights: Optional[np.ndarray] = None
    deletes: np.ndarray = field(default_factory=lambda: np.zeros((0, 2), np.int64))

    @staticmethod
    def of(inserts=None, insert_weights=None, deletes=None) -> "EdgeUpdateBatch":
        """Normalizing constructor accepting lists or arrays."""
        ins = np.asarray(
            inserts if inserts is not None else np.zeros((0, 2)), dtype=np.int64
        ).reshape(-1, 2)
        dels = np.asarray(
            deletes if deletes is not None else np.zeros((0, 2)), dtype=np.int64
        ).reshape(-1, 2)
        w = None
        if insert_weights is not None:
            w = np.asarray(insert_weights, dtype=WEIGHT_DTYPE).reshape(-1)
        return EdgeUpdateBatch(inserts=ins, insert_weights=w, deletes=dels)


@dataclass(frozen=True)
class UpdateReceipt:
    """What one applied batch changed, in stored-direction terms.

    ``old_graph`` / ``new_graph`` are the materialized snapshots before and
    after the batch; the edge arrays list *stored* directed edges (an
    undirected logical edge contributes both directions), which is exactly
    the granularity incremental repair reasons about. ``delete_edges``
    carries the weights the removed edges had; a weight change of an
    existing edge appears as that edge in both lists.
    """

    version: int
    old_graph: CSRGraph
    new_graph: CSRGraph
    insert_edges: np.ndarray
    insert_weights: np.ndarray
    delete_edges: np.ndarray
    delete_weights: np.ndarray

    @property
    def num_vertices(self) -> int:
        return self.new_graph.num_vertices


class DynamicGraph:
    """An immutable base CSR plus pending edge updates.

    ``apply`` merges a batch into the overlay and bumps ``version``;
    ``snapshot`` materializes (and caches) the current edge set as a fresh
    :class:`CSRGraph`. When the overlay grows past ``rebuild_threshold``
    distinct stored edges, ``apply`` folds it into a rebuilt base CSR -
    the periodic rebuild that bounds overlay size and, for directed
    graphs, leaves the new base with no cached in-CSR transpose (it is
    re-derived lazily on the next pull access).

    Receipts of the last ``keep_receipts`` batches are retained so the
    result cache can repair stale entries forward through the exact
    sequence of updates (:meth:`receipts_since`).
    """

    def __init__(
        self,
        base: CSRGraph,
        *,
        rebuild_threshold: int = 4096,
        keep_receipts: int = 64,
    ):
        if rebuild_threshold < 1:
            raise ValueError("rebuild_threshold must be >= 1")
        self._base = base
        self.rebuild_threshold = rebuild_threshold
        self.keep_receipts = keep_receipts
        #: (src, dst) -> weight (present, overriding the base) or None
        #: (deleted from the base).
        self._overlay: Dict[Tuple[int, int], Optional[float]] = {}
        self._snapshot: Optional[CSRGraph] = base
        self._receipts: List[UpdateReceipt] = []
        self._version = 0
        self.rebuilds = 0
        self.applied_inserts = 0
        self.applied_deletes = 0
        self.noop_deletes = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone update-batch counter (0 for the pristine base)."""
        return self._version

    @property
    def num_vertices(self) -> int:
        return self._base.num_vertices

    @property
    def directed(self) -> bool:
        return self._base.directed

    @property
    def pending_edges(self) -> int:
        """Distinct stored edges currently overridden by the overlay."""
        return len(self._overlay)

    def stats(self) -> dict:
        return {
            "version": self._version,
            "pending_edges": self.pending_edges,
            "rebuilds": self.rebuilds,
            "applied_inserts": self.applied_inserts,
            "applied_deletes": self.applied_deletes,
            "noop_deletes": self.noop_deletes,
        }

    def receipts_since(self, version: int) -> Optional[List[UpdateReceipt]]:
        """Receipts taking ``version`` to the current version, oldest first.

        Returns ``None`` when the chain is no longer fully retained (the
        caller must fall back to a from-scratch run - the cache's exact
        fallback path).
        """
        if version > self._version:
            return None
        needed = [r for r in self._receipts if r.version > version]
        if len(needed) != self._version - version:
            return None
        return needed

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def apply(self, batch: EdgeUpdateBatch) -> UpdateReceipt:
        """Apply one update batch; returns the receipt of what changed."""
        n = self.num_vertices
        ins = np.asarray(batch.inserts, dtype=np.int64).reshape(-1, 2)
        dels = np.asarray(batch.deletes, dtype=np.int64).reshape(-1, 2)
        if batch.insert_weights is None:
            ins_w = np.ones(ins.shape[0], dtype=WEIGHT_DTYPE)
        else:
            ins_w = np.asarray(batch.insert_weights, dtype=WEIGHT_DTYPE).reshape(-1)
        if ins_w.shape[0] != ins.shape[0]:
            raise GraphFormatError("insert_weights length must equal insert count")
        for pairs in (ins, dels):
            if pairs.size:
                if pairs.min() < 0 or pairs.max() >= n:
                    raise GraphFormatError("update vertex id out of range")
                if np.any(pairs[:, 0] == pairs[:, 1]):
                    raise GraphFormatError("self-loop updates are not supported")
        if ins_w.size and np.any(ins_w < 0):
            raise GraphFormatError("edge weights must be non-negative")

        old_graph = self.snapshot()

        # Deletes first (see EdgeUpdateBatch): record only edges that were
        # actually present, with the weights they had.
        del_records: List[Tuple[int, int, float]] = []
        seen_del = set()
        for u, v in self._stored_pairs(dels):
            if (u, v) in seen_del:
                continue
            seen_del.add((u, v))
            current = self._edge_weight(u, v)
            if current is None:
                self.noop_deletes += 1
                continue
            del_records.append((u, v, current))
            self._set_overlay(u, v, None)
            self.applied_deletes += 1

        ins_records: List[Tuple[int, int, float]] = []
        for (u, v), w in self._stored_pairs_weighted(ins, ins_w):
            current = self._edge_weight(u, v)
            if current is not None and current != w:
                # Weight change = delete old + insert new, so repair sees
                # a possible value *increase* on this edge.
                del_records.append((u, v, current))
                self.applied_deletes += 1
            ins_records.append((u, v, w))
            self._set_overlay(u, v, w)
            self.applied_inserts += 1

        self._version += 1
        self._snapshot = None
        if len(self._overlay) >= self.rebuild_threshold:
            self.rebuild()
        new_graph = self.snapshot()

        receipt = UpdateReceipt(
            version=self._version,
            old_graph=old_graph,
            new_graph=new_graph,
            insert_edges=_pairs_array([(u, v) for u, v, _ in ins_records]),
            insert_weights=np.asarray(
                [w for _, _, w in ins_records], dtype=WEIGHT_DTYPE
            ),
            delete_edges=_pairs_array([(u, v) for u, v, _ in del_records]),
            delete_weights=np.asarray(
                [w for _, _, w in del_records], dtype=WEIGHT_DTYPE
            ),
        )
        self._receipts.append(receipt)
        if len(self._receipts) > self.keep_receipts:
            del self._receipts[: len(self._receipts) - self.keep_receipts]
        return receipt

    def snapshot(self) -> CSRGraph:
        """The current edge set as an immutable CSR graph (cached)."""
        if self._snapshot is not None:
            return self._snapshot
        base = self._base
        if not self._overlay:
            self._snapshot = base
            return base
        n = base.num_vertices
        base_edges = base.to_edge_array()
        base_w = base.out_csr.weights
        overlay_pairs = np.asarray(sorted(self._overlay), dtype=np.int64)
        overlay_keys = overlay_pairs[:, 0] * n + overlay_pairs[:, 1]
        base_keys = base_edges[:, 0] * n + base_edges[:, 1]
        keep = ~np.isin(base_keys, overlay_keys)
        add = [
            (u, v, w) for (u, v), w in self._overlay.items() if w is not None
        ]
        add_pairs = _pairs_array([(u, v) for u, v, _ in add])
        add_w = np.asarray([w for _, _, w in add], dtype=WEIGHT_DTYPE)
        src = np.concatenate([base_edges[keep, 0], add_pairs[:, 0]])
        dst = np.concatenate([base_edges[keep, 1], add_pairs[:, 1]])
        w = np.concatenate([base_w[keep], add_w])
        view = _build_csr(n, src, dst, w)
        self._snapshot = CSRGraph(
            out_csr=view,
            in_csr=None if base.directed else view,
            directed=base.directed,
            name=base.name,
            meta=dict(base.meta),
        )
        return self._snapshot

    def rebuild(self) -> CSRGraph:
        """Fold the overlay into a rebuilt base CSR.

        The promoted base is the freshly-materialized snapshot: a new
        ``CSRGraph`` object whose in-CSR transpose (directed graphs) is
        unset and will be re-derived lazily - the cached transpose of any
        earlier snapshot is left behind with that snapshot.
        """
        if not self._overlay:
            return self._base
        self._snapshot = None
        self._base = self.snapshot()
        self._overlay.clear()
        self.rebuilds += 1
        return self._base

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stored_pairs(self, pairs: np.ndarray):
        """Logical pairs expanded to stored directions, in batch order."""
        for u, v in pairs:
            u, v = int(u), int(v)
            yield u, v
            if not self.directed:
                yield v, u

    def _stored_pairs_weighted(self, pairs: np.ndarray, weights: np.ndarray):
        for (u, v), w in zip(pairs, weights):
            u, v, w = int(u), int(v), float(w)
            yield (u, v), w
            if not self.directed:
                yield (v, u), w

    def _set_overlay(self, u: int, v: int, value: Optional[float]) -> None:
        self._overlay[(u, v)] = value

    def _edge_weight(self, u: int, v: int) -> Optional[float]:
        """Weight of stored edge (u, v) in the current edge set, or None."""
        if (u, v) in self._overlay:
            return self._overlay[(u, v)]
        out = self._base.out_csr
        lo = int(out.offsets[u])
        hi = int(out.offsets[u + 1])
        row = out.targets[lo:hi]
        i = int(np.searchsorted(row, v))
        if i < row.shape[0] and int(row[i]) == v:
            return float(out.weights[lo + i])
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph(v{self._version}, base={self._base!r}, "
            f"pending={self.pending_edges})"
        )


def _pairs_array(pairs: List[Tuple[int, int]]) -> np.ndarray:
    if not pairs:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)
