"""SIMD-X core: the ACC model, JIT task management and kernel fusion.

This subpackage is the paper's primary contribution:

* :mod:`repro.core.acc` -- the Active-Compute-Combine programming model a
  user implements to express a graph algorithm (Section 3).
* :mod:`repro.core.frontier` -- worklists, degree classification into
  small/medium/large lists and bounded per-thread bins (Section 4).
* :mod:`repro.core.filters` -- the online and ballot filters plus the
  prior-work batch / strided / atomic filters used as ablation baselines.
* :mod:`repro.core.jit` -- the just-in-time controller that picks a filter
  each iteration (Section 4, Figure 7).
* :mod:`repro.core.fusion` -- push-pull based kernel fusion and the register
  model behind Table 2 (Section 5).
* :mod:`repro.core.direction` -- push/pull direction selection.
* :mod:`repro.core.engine` -- the BSP execution engine tying it together.
* :mod:`repro.core.metrics` -- per-run metrics and traces for the figures.
"""

from repro.core.acc import ACCAlgorithm, CombineKind, CombineOp
from repro.core.direction import (
    DEFAULT_TRAFFIC_MODEL,
    Direction,
    DirectionSelector,
    TrafficModel,
)
from repro.core.engine import EngineConfig, SIMDXEngine, RunResult
from repro.core.filters import FilterMode
from repro.core.frontier import WorklistClassifier, WorklistSizes
from repro.core.fusion import FusionStrategy
from repro.core.jit import JITDecision, JITTaskManager

__all__ = [
    "ACCAlgorithm",
    "CombineKind",
    "CombineOp",
    "DEFAULT_TRAFFIC_MODEL",
    "Direction",
    "DirectionSelector",
    "EngineConfig",
    "SIMDXEngine",
    "RunResult",
    "FilterMode",
    "TrafficModel",
    "WorklistClassifier",
    "WorklistSizes",
    "FusionStrategy",
    "JITDecision",
    "JITTaskManager",
]
