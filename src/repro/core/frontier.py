"""Worklists, degree classification and per-thread bins (Section 4, step I/II).

SIMD-X splits the active vertices of an iteration into three worklists by
degree so that each is processed at a matching thread granularity:

* ``small_list``  -- low-degree vertices, one *thread* each;
* ``med_list``    -- medium-degree vertices, one *warp* (32 threads) each;
* ``large_list``  -- high-degree vertices, one *CTA* (256 threads) each.

The degree that matters depends on the execution direction: a push (scatter)
iteration expands the *out*-edges of its worklist, a pull (gather) iteration
walks the *in*-edges of its worklist, so the classifier is built per
direction (:class:`~repro.core.direction.Direction`) and the engine keeps
one instance for each.

The separators default to the warp size (32) and the CTA compute size (256);
the paper reports performance is flat for the small/medium separator in
[4, 128] and for the medium/large separator in [128, 2048], which the
worklist-separator bench reproduces.

The bounded per-thread bins used by the online filter also live here: each
simulated thread owns a bin of ``capacity`` slots (the overflow threshold,
64 by default per Figure 9a) and records the destinations it updated; when
any bin would exceed its capacity the iteration reports overflow, which is
the JIT controller's signal to switch to the ballot filter.

For batched multi-source execution (``SIMDXEngine.run_batch``), the
:class:`BatchedFrontier` carries K concurrent query *lanes* over one graph
as an ``(active_vertices, lane_bitmask)`` pair: the sorted union of every
lane's frontier plus, per union vertex, a packed bitmask of the lanes it is
active in. One CSR walk over the union then serves all K queries; the lane
bitmask recovers each lane's exact edge subset. See ``docs/batching.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.direction import Direction
from repro.core.kernels import KernelBackend, get_kernel_backend
from repro.graph.csr import CSRGraph

#: Default worklist separators (paper Section 4, "Classification of small,
#: medium and large worklists").
DEFAULT_SMALL_MEDIUM_SEPARATOR = 32
DEFAULT_MEDIUM_LARGE_SEPARATOR = 256

#: Threads used per task at each granularity (Figure 7).
THREADS_PER_SMALL_TASK = 1
THREADS_PER_MEDIUM_TASK = 32
THREADS_PER_LARGE_TASK = 256


@dataclass(frozen=True)
class WorklistSizes:
    """Vertex and edge totals per worklist, used for cost estimation."""

    small_vertices: int
    medium_vertices: int
    large_vertices: int
    small_edges: int
    medium_edges: int
    large_edges: int

    @property
    def total_vertices(self) -> int:
        return self.small_vertices + self.medium_vertices + self.large_vertices

    @property
    def total_edges(self) -> int:
        return self.small_edges + self.medium_edges + self.large_edges


@dataclass(frozen=True)
class ClassifiedFrontier:
    """The three degree-classified worklists for one iteration."""

    small: np.ndarray
    medium: np.ndarray
    large: np.ndarray
    sizes: WorklistSizes

    @property
    def total_vertices(self) -> int:
        return self.sizes.total_vertices

    @property
    def total_edges(self) -> int:
        return self.sizes.total_edges

    def all_vertices(self) -> np.ndarray:
        """Concatenated worklists (order: small, medium, large)."""
        return np.concatenate([self.small, self.medium, self.large])


class WorklistClassifier:
    """Splits a worklist into small/medium/large lists by degree.

    ``direction`` selects which degree the classification (and the per-list
    edge totals) use: :attr:`Direction.PUSH` classifies by out-degree (the
    worklist is a scatter frontier), :attr:`Direction.PULL` by in-degree
    (the worklist is a gather list of destinations). The legacy
    ``use_out_degrees`` flag is kept as an alias; ``direction`` wins when
    both are given.
    """

    def __init__(
        self,
        graph: CSRGraph,
        *,
        small_medium_separator: int = DEFAULT_SMALL_MEDIUM_SEPARATOR,
        medium_large_separator: int = DEFAULT_MEDIUM_LARGE_SEPARATOR,
        use_out_degrees: bool = True,
        direction: Optional[Direction] = None,
    ):
        if small_medium_separator <= 0:
            raise ValueError("small/medium separator must be positive")
        if medium_large_separator < small_medium_separator:
            raise ValueError("medium/large separator must be >= small/medium separator")
        if direction is None:
            direction = Direction.PUSH if use_out_degrees else Direction.PULL
        self.graph = graph
        self.direction = direction
        self.small_medium_separator = small_medium_separator
        self.medium_large_separator = medium_large_separator
        degrees = (
            graph.out_degrees() if direction is Direction.PUSH
            else graph.in_degrees()
        )
        self._degrees = degrees

    def classify(self, frontier: np.ndarray) -> ClassifiedFrontier:
        """Split ``frontier`` (vertex ids) into the three worklists."""
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return ClassifiedFrontier(
                empty, empty, empty, WorklistSizes(0, 0, 0, 0, 0, 0)
            )
        degs = self._degrees[frontier]
        small_mask = degs < self.small_medium_separator
        large_mask = degs >= self.medium_large_separator
        medium_mask = ~small_mask & ~large_mask
        small = frontier[small_mask]
        medium = frontier[medium_mask]
        large = frontier[large_mask]
        sizes = WorklistSizes(
            small_vertices=int(small.size),
            medium_vertices=int(medium.size),
            large_vertices=int(large.size),
            small_edges=int(degs[small_mask].sum()),
            medium_edges=int(degs[medium_mask].sum()),
            large_edges=int(degs[large_mask].sum()),
        )
        return ClassifiedFrontier(small=small, medium=medium, large=large, sizes=sizes)

    def degrees_of(self, frontier: np.ndarray) -> np.ndarray:
        """Directional degree of each worklist vertex (divergence modelling)."""
        return self._degrees[np.asarray(frontier, dtype=np.int64)]

    def edge_count(self, frontier: np.ndarray) -> int:
        """Total directional degree of ``frontier`` without classifying it.

        The engine uses the push classifier's count as the Beamer-style
        frontier-share estimate that drives direction selection, before any
        worklist is materialized.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            return 0
        return int(self._degrees[frontier].sum())


@dataclass
class ThreadBins:
    """Bounded per-thread bins used by the online filter.

    ``num_threads`` simulated threads each own a private bin of ``capacity``
    slots. :meth:`scatter` assigns recorded vertices to the bin of the thread
    that produced them (the thread processing the corresponding frontier
    vertex). If any bin would exceed its capacity, the overflow flag is set
    and the surplus entries are dropped - exactly the situation in which the
    online filter's worklist would be incomplete and the JIT controller must
    fall back to the ballot filter to generate a *correct* list.
    """

    num_threads: int
    capacity: int
    overflowed: bool = False
    bins: List[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if not self.bins:
            self.bins = [np.zeros(0, dtype=np.int64) for _ in range(self.num_threads)]

    def scatter(self, recorded: np.ndarray, producer_thread: np.ndarray) -> None:
        """Append recorded vertex ids to the producing threads' bins."""
        recorded = np.asarray(recorded, dtype=np.int64)
        producer_thread = np.asarray(producer_thread, dtype=np.int64)
        if recorded.shape != producer_thread.shape:
            raise ValueError("recorded and producer_thread must align")
        if recorded.size == 0:
            return
        if producer_thread.size and (
            producer_thread.min() < 0 or producer_thread.max() >= self.num_threads
        ):
            raise ValueError("producer thread id out of range")
        order = np.argsort(producer_thread, kind="stable")
        recorded = recorded[order]
        producer_thread = producer_thread[order]
        boundaries = np.searchsorted(
            producer_thread, np.arange(self.num_threads + 1)
        )
        for t in range(self.num_threads):
            chunk = recorded[boundaries[t]:boundaries[t + 1]]
            if chunk.size == 0:
                continue
            existing = self.bins[t]
            space = self.capacity - existing.size
            if chunk.size > space:
                self.overflowed = True
                chunk = chunk[:max(space, 0)]
            if chunk.size:
                self.bins[t] = np.concatenate([existing, chunk])

    def occupancy(self) -> np.ndarray:
        """Entries per bin."""
        return np.array([b.size for b in self.bins], dtype=np.int64)

    def concatenated(self) -> np.ndarray:
        """All bin contents in thread order (the online filter's worklist)."""
        non_empty = [b for b in self.bins if b.size]
        if not non_empty:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(non_empty)

    def reset(self) -> None:
        self.overflowed = False
        self.bins = [np.zeros(0, dtype=np.int64) for _ in range(self.num_threads)]


def threads_for_frontier(classified: ClassifiedFrontier) -> int:
    """Simulated threads participating in one iteration's compute kernels."""
    return (
        classified.sizes.small_vertices * THREADS_PER_SMALL_TASK
        + classified.sizes.medium_vertices * THREADS_PER_MEDIUM_TASK
        + classified.sizes.large_vertices * THREADS_PER_LARGE_TASK
    )


#: Lanes packed per bitmask word (uint64).
LANES_PER_WORD = 64


@dataclass(frozen=True)
class BatchedFrontier:
    """K query lanes over one graph: union frontier + per-vertex lane bits.

    ``vertices`` is the sorted, duplicate-free union of all lanes'
    frontiers; ``lane_bits`` has one row per union vertex holding a packed
    uint64 bitmask (``ceil(num_lanes / 64)`` words) of the lanes the vertex
    is active in. The engine walks the union's CSR rows once per iteration
    and uses the bitmask to expand each edge only into the lanes whose
    frontier contains its source - the K-wide amortization behind
    ``SIMDXEngine.run_batch``.

    Memory cost is ``8 * ceil(K / 64)`` bytes per union vertex on top of the
    union worklist itself - negligible next to the K metadata rows the
    batched run keeps (see ``docs/batching.md``).
    """

    vertices: np.ndarray   # sorted unique union of the lane frontiers, int64
    lane_bits: np.ndarray  # (vertices.size, num_words) uint64
    num_lanes: int
    #: For a sub-batch view (:meth:`sub_batch`): the *global* lane id of
    #: each local lane, so the engine can map a sub-batch's rows back onto
    #: the full batch's per-lane state. ``None`` for a full batch, where
    #: local and global ids coincide.
    lane_ids: Optional[Tuple[int, ...]] = None
    #: Kernel backend the bitmask primitives run on (``docs/kernels.md``);
    #: defaults to the vectorized backend and is excluded from equality.
    backend: Optional[KernelBackend] = field(
        default=None, compare=False, repr=False
    )

    def _kernel(self) -> KernelBackend:
        return self.backend or get_kernel_backend("numpy")

    @classmethod
    def from_lanes(
        cls,
        lane_frontiers: List[np.ndarray],
        backend: Optional[KernelBackend] = None,
    ) -> "BatchedFrontier":
        """Build the union + bitmask pair from per-lane frontiers.

        Each per-lane frontier is a 1-D array of vertex ids (duplicates
        tolerated); an empty array is a lane that has finished or is
        momentarily inactive. ``backend`` selects the kernel backend the
        union/bitmask primitives (and later :meth:`lane_mask` calls) run
        on; both backends produce bit-identical structures.
        """
        num_lanes = len(lane_frontiers)
        if num_lanes == 0:
            raise ValueError("at least one lane is required")
        kernel = backend or get_kernel_backend("numpy")
        lanes = [
            kernel.sorted_unique(np.asarray(f, dtype=np.int64))
            for f in lane_frontiers
        ]
        vertices = kernel.union_sorted(lanes)
        lane_bits = kernel.build_lane_bits(vertices, lanes, num_lanes)
        return cls(
            vertices=vertices,
            lane_bits=lane_bits,
            num_lanes=num_lanes,
            backend=backend,
        )

    @property
    def is_empty(self) -> bool:
        return self.vertices.size == 0

    def lane_mask(self, lane: int) -> np.ndarray:
        """Boolean mask over ``vertices``: which union slots lane holds."""
        if not (0 <= lane < self.num_lanes):
            raise IndexError(f"lane {lane} out of range")
        return self._kernel().lane_mask(self.lane_bits, lane)

    def lane_vertices(self, lane: int) -> np.ndarray:
        """The lane's frontier (sorted, unique) recovered from the bitmask."""
        return self.vertices[self.lane_mask(lane)]

    def lane_sizes(self) -> np.ndarray:
        """Frontier size per lane."""
        return np.array(
            [int(self.lane_mask(k).sum()) for k in range(self.num_lanes)],
            dtype=np.int64,
        )

    def vertex_range_rows(self, start: int, stop: int) -> Tuple[int, int]:
        """Union-row span ``[lo, hi)`` of vertex ids in ``[start, stop)``.

        ``vertices`` is sorted, so a contiguous vertex-range shard owns a
        contiguous block of union rows; the sharded executor slices the
        union (and the per-row ``lane_bits``) with the two bounds instead
        of materializing per-shard masks.
        """
        lo = int(np.searchsorted(self.vertices, start, side="left"))
        hi = int(np.searchsorted(self.vertices, stop, side="left"))
        return lo, hi

    def global_lane(self, lane: int) -> int:
        """Global lane id of local ``lane`` (identity for a full batch)."""
        if self.lane_ids is None:
            return lane
        return self.lane_ids[lane]

    def sub_batch(self, lanes: Sequence[int]) -> "BatchedFrontier":
        """View of this batch restricted to ``lanes`` (global lane ids).

        The selected lanes are remapped to local ids ``0..len(lanes)-1``
        (recorded in :attr:`lane_ids`), the union shrinks to the vertices
        active in at least one selected lane, and the packed bitmask is
        rebuilt at the sub-batch's own word width - each group of a K=65
        batch split into 64 + 1 lanes needs one mask word, not two.
        Lane-aware direction splitting (``docs/batching.md``) walks each
        sub-batch's CSR rows with exactly this view.
        """
        lanes = [int(l) for l in lanes]
        for lane in lanes:
            if not (0 <= lane < self.num_lanes):
                raise IndexError(f"lane {lane} out of range")
        if self.lane_ids is not None:
            raise ValueError("sub_batch of a sub_batch is not supported")
        sub = BatchedFrontier.from_lanes(
            [self.lane_vertices(lane) for lane in lanes], backend=self.backend
        )
        return BatchedFrontier(
            vertices=sub.vertices,
            lane_bits=sub.lane_bits,
            num_lanes=sub.num_lanes,
            lane_ids=tuple(lanes),
            backend=self.backend,
        )

    def total_memberships(self) -> int:
        """Sum of per-lane frontier sizes (the would-be serial worklist)."""
        counts = np.zeros(self.vertices.shape[0], dtype=np.int64)
        bits = self.lane_bits.copy()
        while bits.any():
            counts += (bits & np.uint64(1)).sum(axis=1).astype(np.int64)
            bits >>= np.uint64(1)
        return int(counts.sum())
