"""Pluggable execution backends for the shared CSR-walk kernel primitives.

The engine's hot loops — edge expansion over CSR rows, frontier-membership
masks, lane-bitmask construction/extraction for batched runs, and the
per-destination Combine reduction — are expressed against a small backend
interface so the same superstep logic can run two ways:

* :class:`NumpyKernelBackend` (``kernel_backend="numpy"``, the default) -
  fully vectorized: ``np.repeat``/``np.cumsum`` edge expansion, boolean
  scatter membership, packed ``uint64`` lane-bit rows built with bulk OR,
  and ``np.bincount`` / sort + ``ufunc.reduceat`` segment reductions.
* :class:`PythonKernelBackend` (``kernel_backend="python"``) - the same
  primitives as explicit Python loops.  It exists as the *reference
  semantics* the vectorized backend is checked against: every primitive is
  bit-identical by construction (see ``docs/kernels.md`` for the argument),
  so the differential fuzz matrix can cross the backend axis with every
  direction/batching/sharding mode and demand exact equality.

Bit-identity notes (the contract both backends implement):

* ``walk_edges`` emits (slot, edge index) pairs in worklist order with
  edge indices ascending within each slot - the order ``np.repeat`` +
  ``np.arange`` produces and the Python double loop reproduces.
* ``segment_reduce`` for SUM accumulates in *input order* (``np.bincount``
  adds weights sequentially, exactly like the Python ``out[s] += v``
  loop); MIN/MAX are order-independent for non-NaN floats.  The engine
  filters NaN updates before Combine, so NaN never reaches a reduction.
* Every empty result uses ``dtype=np.int64`` so downstream concatenation
  and indexing behave identically.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "BACKEND_NAMES",
    "KernelBackend",
    "NumpyKernelBackend",
    "PythonKernelBackend",
    "get_kernel_backend",
]

#: Lanes packed per bitmask word (uint64); mirrors ``frontier.LANES_PER_WORD``
#: (defined here too so this module stays import-cycle free).
_LANES_PER_WORD = 64

#: Valid ``EngineConfig.kernel_backend`` values, reference backend first.
BACKEND_NAMES = ("python", "numpy")


class KernelBackend:
    """Interface of the CSR-walk kernel primitives.

    Both implementations are stateless; the engine caches one instance per
    run configuration (``SIMDXEngine.kernel``).
    """

    #: Backend name as spelled in ``EngineConfig.kernel_backend``.
    name: str = "abstract"

    # ------------------------------------------------------------------
    def walk_edges(
        self, csr, worklist: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Expand the CSR rows of ``worklist``.

        Returns ``(slot, edge_idx, total)``: for every edge of every
        worklist vertex, the worklist *slot* (position in ``worklist``)
        that produced it and the flat CSR edge index, in worklist order
        with edge indices ascending per slot.
        """
        raise NotImplementedError

    def membership_mask(self, vertices: np.ndarray, size: int) -> np.ndarray:
        """Boolean array of ``size`` with ``True`` at each of ``vertices``."""
        raise NotImplementedError

    def rows_in_sorted(
        self, universe: np.ndarray, members: np.ndarray
    ) -> np.ndarray:
        """Positions of ``members`` in the sorted array ``universe``.

        Every member must be present in ``universe`` (the batched-frontier
        invariant); both backends then return identical int64 rows.
        """
        raise NotImplementedError

    def sorted_unique(self, values: np.ndarray) -> np.ndarray:
        """Sorted duplicate-free copy of ``values`` (int64)."""
        raise NotImplementedError

    def union_sorted(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Sorted duplicate-free union of int64 arrays (int64)."""
        raise NotImplementedError

    def build_lane_bits(
        self,
        vertices: np.ndarray,
        lanes: Sequence[np.ndarray],
        num_lanes: int,
    ) -> np.ndarray:
        """Packed ``(vertices.size, ceil(num_lanes/64))`` uint64 lane bits.

        ``lanes[k]`` is lane ``k``'s sorted unique frontier, a subset of
        ``vertices``; bit ``k`` of a row is set iff the row's vertex is in
        lane ``k``'s frontier.
        """
        raise NotImplementedError

    def lane_mask(self, lane_bits: np.ndarray, lane: int) -> np.ndarray:
        """Boolean mask over the bit rows: which rows have bit ``lane``."""
        raise NotImplementedError

    def segment_reduce(
        self,
        op,
        values: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        """Per-destination Combine: ``op`` over ``values`` grouped by id."""
        raise NotImplementedError


class NumpyKernelBackend(KernelBackend):
    """Vectorized primitives (the shipped default)."""

    name = "numpy"

    def walk_edges(self, csr, worklist):
        offsets = csr.offsets.astype(np.int64)
        counts = np.diff(offsets)[worklist]
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, 0
        starts = offsets[worklist]
        cum = np.zeros(worklist.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=cum[1:])
        edge_idx = np.repeat(starts - cum, counts) + np.arange(
            total, dtype=np.int64
        )
        slot = np.repeat(np.arange(worklist.size, dtype=np.int64), counts)
        return slot, edge_idx, total

    def membership_mask(self, vertices, size):
        mask = np.zeros(size, dtype=bool)
        mask[np.asarray(vertices, dtype=np.int64)] = True
        return mask

    def rows_in_sorted(self, universe, members):
        return np.searchsorted(universe, members).astype(np.int64, copy=False)

    def sorted_unique(self, values):
        return np.unique(np.asarray(values, dtype=np.int64))

    def union_sorted(self, arrays):
        non_empty = [a for a in arrays if a.size]
        if not non_empty:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(non_empty))

    def build_lane_bits(self, vertices, lanes, num_lanes):
        num_words = -(-num_lanes // _LANES_PER_WORD)
        lane_bits = np.zeros((vertices.size, num_words), dtype=np.uint64)
        for lane, frontier in enumerate(lanes):
            if frontier.size == 0:
                continue
            rows = self.rows_in_sorted(vertices, frontier)
            word, bit = divmod(lane, _LANES_PER_WORD)
            lane_bits[rows, word] |= np.uint64(1 << bit)
        return lane_bits

    def lane_mask(self, lane_bits, lane):
        word, bit = divmod(lane, _LANES_PER_WORD)
        return (lane_bits[:, word] >> np.uint64(bit)) & np.uint64(1) == 1

    def segment_reduce(self, op, values, segment_ids, num_segments):
        # The numpy path lives on CombineOp itself (it predates the backend
        # split); delegating keeps one copy of the vectorized reduction.
        return op.segment_reduce(values, segment_ids, num_segments)


class PythonKernelBackend(KernelBackend):
    """Loop-based reference primitives (bit-identical, unvectorized)."""

    name = "python"

    def walk_edges(self, csr, worklist):
        offsets = csr.offsets
        slots: List[int] = []
        edges: List[int] = []
        for i in range(len(worklist)):
            v = int(worklist[i])
            start = int(offsets[v])
            stop = int(offsets[v + 1])
            for e in range(start, stop):
                slots.append(i)
                edges.append(e)
        total = len(edges)
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, 0
        return (
            np.asarray(slots, dtype=np.int64),
            np.asarray(edges, dtype=np.int64),
            total,
        )

    def membership_mask(self, vertices, size):
        mask = np.zeros(size, dtype=bool)
        for v in vertices:
            mask[int(v)] = True
        return mask

    def rows_in_sorted(self, universe, members):
        rows = [bisect_left(universe, int(m)) for m in members]
        return np.asarray(rows, dtype=np.int64)

    def sorted_unique(self, values):
        unique = sorted({int(v) for v in np.asarray(values).ravel()})
        return np.asarray(unique, dtype=np.int64)

    def union_sorted(self, arrays):
        seen = set()
        for arr in arrays:
            for v in arr:
                seen.add(int(v))
        return np.asarray(sorted(seen), dtype=np.int64)

    def build_lane_bits(self, vertices, lanes, num_lanes):
        num_words = -(-num_lanes // _LANES_PER_WORD)
        lane_bits = np.zeros((len(vertices), num_words), dtype=np.uint64)
        position: Dict[int, int] = {
            int(v): row for row, v in enumerate(vertices)
        }
        for lane, frontier in enumerate(lanes):
            word, bit = divmod(lane, _LANES_PER_WORD)
            flag = np.uint64(1 << bit)
            for v in frontier:
                row = position[int(v)]
                lane_bits[row, word] |= flag
        return lane_bits

    def lane_mask(self, lane_bits, lane):
        word, bit = divmod(lane, _LANES_PER_WORD)
        mask = np.zeros(lane_bits.shape[0], dtype=bool)
        for row in range(lane_bits.shape[0]):
            mask[row] = bool((int(lane_bits[row, word]) >> bit) & 1)
        return mask

    def segment_reduce(self, op, values, segment_ids, num_segments):
        kind = op.value  # "min" / "max" / "sum" - avoids importing acc
        out = np.full(num_segments, op.identity, dtype=np.float64)
        for i in range(len(values)):
            seg = int(segment_ids[i])
            v = float(values[i])
            if kind == "sum":
                out[seg] = out[seg] + v
            elif kind == "min":
                if v < out[seg]:
                    out[seg] = v
            else:  # max
                if v > out[seg]:
                    out[seg] = v
        return out


_BACKENDS: Dict[str, KernelBackend] = {
    "numpy": NumpyKernelBackend(),
    "python": PythonKernelBackend(),
}


def get_kernel_backend(name: str) -> KernelBackend:
    """The shared backend instance for ``name`` (stateless singletons)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; known: {BACKEND_NAMES}"
        ) from None
