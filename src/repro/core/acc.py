"""The Active-Compute-Combine (ACC) programming model (Section 3).

A graph algorithm is expressed by subclassing :class:`ACCAlgorithm` and
providing three data-parallel functions plus an initializer:

* ``init``     -- set up the metadata array and the initial frontier;
* ``active``   -- decide whether a vertex is active, given its current and
  previous metadata (Section 3.2: "∃v ← active(Mv, v)");
* ``compute``  -- produce the update an edge (v, u) sends to u from the
  metadata of v, the edge weight and the metadata of u
  ("update_{v→u} ← compute(Mv, M(v,u), Mu)");
* ``combine``  -- merge all updates arriving at a vertex with a commutative,
  associative operator ("update_u ← ⊕ update_{v→u}").

The engine calls the vectorized variants (`active_mask`, `compute_edges`),
which operate on NumPy arrays covering many edges at once: that is the
functional analogue of thousands of CUDA threads each evaluating the scalar
function on one edge. Scalar versions are derived automatically and are used
by the tests to check the vectorized forms agree with the paper's
one-edge-at-a-time semantics.

Two combine classes exist (Section 3.2):

* **aggregation** -- every update matters (SSSP's min, PageRank's sum,
  k-Core's decrement count); overwrites are not tolerated.
* **voting** -- all updates are identical, so receiving any one of them is
  enough (BFS, WCC); this enables collaborative early termination.

The same three functions serve both execution directions: a push iteration
scatters ``compute`` over the frontier's out-edges, a pull iteration gathers
the identical per-edge updates over destinations' in-edges (the optional
``gather_edges`` / ``gather_mask`` hooks let an algorithm specialize the
gather without changing its results).

They also serve the *batched* multi-source path
(``SIMDXEngine.run_batch``): because ``compute`` is a pure per-edge map, a
K-lane batch flattens its ``(edge, lane)`` pairs into one vectorized call.
The :meth:`ACCAlgorithm.scatter_edges` / :meth:`ACCAlgorithm.gather_edges`
hooks receive the flattened lane axis (``lanes`` - the owning query lane of
every pair) and by default delegate to the lane-oblivious per-edge forms,
which keeps a batched run bit-identical to K independent runs.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.graph.csr import CSRGraph


class CombineKind(enum.Enum):
    """The two classes of combine operators SIMD-X optimizes (Section 3.2)."""

    AGGREGATION = "aggregation"
    VOTING = "voting"


class CombineOp(enum.Enum):
    """Supported commutative/associative reduction operators."""

    MIN = "min"
    MAX = "max"
    SUM = "sum"

    @property
    def ufunc(self) -> np.ufunc:
        return {
            CombineOp.MIN: np.minimum,
            CombineOp.MAX: np.maximum,
            CombineOp.SUM: np.add,
        }[self]

    @property
    def identity(self) -> float:
        return {
            CombineOp.MIN: np.inf,
            CombineOp.MAX: -np.inf,
            CombineOp.SUM: 0.0,
        }[self]

    def reduce(self, values: np.ndarray) -> float:
        """Reduce an array to a scalar with this operator."""
        if values.size == 0:
            return self.identity
        return float(self.ufunc.reduce(values))

    def segment_reduce(
        self,
        values: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
        *,
        backend=None,
    ) -> np.ndarray:
        """Reduce ``values`` grouped by ``segment_ids`` (destination vertex).

        This is the functional equivalent of the per-destination Combine: it
        produces, for every destination, the operator applied over all
        updates that target it, without any atomic read-modify-write.

        ``backend`` (a :class:`repro.core.kernels.KernelBackend`) routes the
        reduction through an engine-selected kernel backend; ``None`` (and
        the numpy backend itself) runs the vectorized implementation below.
        Both produce bit-identical results: SUM accumulates in input order
        either way, MIN/MAX are order-independent for the non-NaN floats
        the engine feeds Combine.

        Implementation note: ``ufunc.at`` would be the one-liner but is far
        too slow for hot loops, so SUM uses ``bincount`` and MIN/MAX use a
        sort + ``reduceat`` (both vectorized).
        """
        if backend is not None and backend.name != "numpy":
            return backend.segment_reduce(self, values, segment_ids, num_segments)
        out = np.full(num_segments, self.identity, dtype=np.float64)
        if not values.size:
            return out
        values = values.astype(np.float64, copy=False)
        segment_ids = np.asarray(segment_ids)
        if self is CombineOp.SUM:
            counted = np.bincount(segment_ids, weights=values, minlength=num_segments)
            out[: counted.shape[0]] = counted
            return out
        order = np.argsort(segment_ids, kind="stable")
        sorted_ids = segment_ids[order]
        sorted_values = values[order]
        boundaries = np.ones(sorted_ids.shape[0], dtype=bool)
        boundaries[1:] = sorted_ids[1:] != sorted_ids[:-1]
        starts = np.nonzero(boundaries)[0]
        reduced = self.ufunc.reduceat(sorted_values, starts)
        out[sorted_ids[starts]] = reduced
        return out


@dataclass
class InitialState:
    """What ``init`` returns: the metadata array and the source frontier."""

    metadata: np.ndarray
    frontier: np.ndarray


class ACCAlgorithm(abc.ABC):
    """Base class a graph algorithm implements to run on SIMD-X.

    Subclasses set the class attributes and implement the four abstract
    methods. Everything else (worklists, filters, direction, fusion,
    synchronization) is the engine's responsibility - the decoupling of
    programming from processing that the paper advocates.
    """

    #: Human-readable algorithm name ("bfs", "sssp", ...).
    name: str = "acc"

    #: Whether the combine is an aggregation or a vote (Section 3.2).
    combine_kind: CombineKind = CombineKind.AGGREGATION

    #: The reduction operator used by Combine.
    combine_op: CombineOp = CombineOp.MIN

    #: Hard iteration cap (safety net; algorithms normally converge earlier).
    max_iterations: int = 100_000

    #: True when edge weights participate in ``compute`` (SSSP, BP, SpMV).
    uses_weights: bool = True

    #: Algorithms that start in pull mode (PageRank, BP, k-Core) override
    #: this; BFS/SSSP start in push mode from a single source.
    starts_in_pull: bool = False

    #: Value meaning "no update produced" for this algorithm; compute may
    #: return it to signal that an edge contributes nothing.
    no_update: float = np.inf

    #: Whether ``init(graph, source=...)`` accepts a per-query source so the
    #: engine can batch K queries into one ``run_batch`` execution (BFS,
    #: SSSP, landmark-distance style traversals). Algorithms without a
    #: per-query source (PageRank, SpMV, ...) leave this False - one run
    #: already answers the "query" for every vertex.
    supports_multi_source: bool = False

    # ------------------------------------------------------------------
    # The ACC API (vectorized forms used by the engine)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def init(self, graph: CSRGraph, **params) -> InitialState:
        """Create the metadata array and the initial active frontier."""

    @abc.abstractmethod
    def active_mask(self, curr: np.ndarray, prev: np.ndarray) -> np.ndarray:
        """Boolean mask of active vertices given current/previous metadata."""

    @abc.abstractmethod
    def compute_edges(
        self,
        src_meta: np.ndarray,
        weights: np.ndarray,
        dst_meta: np.ndarray,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        graph: CSRGraph,
    ) -> np.ndarray:
        """Per-edge updates (vectorized ``compute``).

        The extra ``src_ids`` / ``dst_ids`` / ``graph`` arguments let
        degree-normalized algorithms (PageRank, BP) look up degrees without
        storing them in the metadata; scalar ``compute`` in the paper closes
        over the same information through the edge object.
        """

    @abc.abstractmethod
    def apply(
        self, old: np.ndarray, combined: np.ndarray, touched: np.ndarray
    ) -> np.ndarray:
        """Merge combined updates into the metadata of ``touched`` vertices.

        Returns the new metadata values for exactly the ``touched`` vertices
        (e.g. ``min(old, combined)`` for SSSP, the damped rank formula for
        PageRank). The engine writes them back and derives the next frontier
        from what changed.
        """

    # ------------------------------------------------------------------
    # Optional hooks
    # ------------------------------------------------------------------
    def converged(self, curr: np.ndarray, prev: np.ndarray, iteration: int) -> bool:
        """Extra convergence condition checked after the frontier empties."""
        return True

    def on_frontier_expanded(self, frontier: np.ndarray, metadata: np.ndarray) -> None:
        """Called once per iteration after ``compute`` ran over the frontier.

        Delta-accumulative algorithms (PageRank, BP) use this to mark the
        frontier's pending contributions as pushed; the default is a no-op.
        On the GPU this bookkeeping happens inside the compute kernel itself.
        The engine fires the hook in pull iterations too (the frontier's
        contributions are consumed whether they are scattered or gathered),
        under the same condition as in push mode: the frontier had at least
        one out-edge to expand.
        """

    def scatter_edges(
        self,
        src_meta: np.ndarray,
        weights: np.ndarray,
        dst_meta: np.ndarray,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        graph: CSRGraph,
        lanes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Push-mode ``Compute`` with an optional lane axis (batched runs).

        ``SIMDXEngine.run_batch`` walks the union frontier's out-edges once
        and expands every edge into the lanes whose frontier contains its
        source; the resulting ``(edge, lane)`` pairs arrive here flattened,
        with per-pair metadata operands (``src_meta[i]`` is lane
        ``lanes[i]``'s metadata of the pair's source) and ``lanes`` naming
        the owning query lane of each pair. Because ACC ``compute`` is a
        pure per-edge map, the default delegates to :meth:`compute_edges`
        and ignores the lane axis - which is exactly what makes a batched
        run bit-identical to K independent runs. Override only for
        algorithms whose batched scatter genuinely differs per lane.
        """
        return self.compute_edges(src_meta, weights, dst_meta, src_ids, dst_ids, graph)

    def gather_edges(
        self,
        src_meta: np.ndarray,
        weights: np.ndarray,
        dst_meta: np.ndarray,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        graph: CSRGraph,
        lanes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Pull-mode ``Compute``: the update an in-edge (v, u) contributes
        while destination ``u`` gathers over its in-neighbours.

        Arguments keep the push orientation (``src`` is the producing
        endpoint ``v``), so the default delegates to :meth:`compute_edges`
        and both directions evaluate bit-identical per-edge arithmetic -
        the invariant the engine's push/pull equivalence tests enforce.
        Algorithms override this only when the gather formulation itself
        differs; savings like voting early-termination are modelled in the
        engine's cost layer instead.

        ``lanes`` is the flattened lane axis of a batched gather
        (``SIMDXEngine.run_batch``): the owning query lane of every
        ``(in-edge, lane)`` pair, ``None`` in single-query runs. The
        default is lane-oblivious for the same reason as
        :meth:`scatter_edges`.
        """
        return self.compute_edges(src_meta, weights, dst_meta, src_ids, dst_ids, graph)

    def gather_mask(
        self,
        metadata: np.ndarray,
        graph: CSRGraph,
        frontier: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Boolean mask of vertices worth gathering at in a pull iteration.

        The engine gathers at every masked vertex that has at least one
        in-edge. The default - every vertex - is always correct; algorithms
        whose ``compute`` provably yields no update for some destinations
        (BFS's already-visited vertices, k-Core's deleted ones) override it
        to shrink the gather worklist, the way Beamer's bottom-up BFS skips
        visited vertices.

        ``frontier`` is the iteration's active frontier: only its vertices
        source updates this iteration, so an override may use
        frontier-dependent bounds as well (SSSP prunes destinations whose
        distance is already at or below the best possible frontier offer,
        WCC prunes labels at or below the frontier's minimum). The engine
        always passes the frontier; ``None`` (direct calls) must degrade to
        a frontier-independent mask.

        An override must never exclude a destination that could still
        receive a valid (non-``no_update``) offer from a frontier source.
        Overriding this together with :meth:`on_frontier_expanded` is safe:
        the engine fires the hook whenever the frontier had out-edges to
        consume, regardless of how far the mask shrank the gather worklist,
        so the hook's firing condition stays identical in both directions.
        """
        return np.ones(metadata.shape[0], dtype=bool)

    def vertex_value(self, metadata: np.ndarray) -> np.ndarray:
        """Translate metadata into the user-facing result (default identity)."""
        return metadata

    # ------------------------------------------------------------------
    # Scalar forms (paper semantics, used for cross-validation in tests)
    # ------------------------------------------------------------------
    def active(self, v: int, curr: np.ndarray, prev: np.ndarray) -> bool:
        """Scalar ``Active``: is vertex ``v`` active?"""
        return bool(self.active_mask(curr, prev)[v])

    def compute(
        self,
        src: int,
        dst: int,
        weight: float,
        metadata: np.ndarray,
        graph: CSRGraph,
    ) -> float:
        """Scalar ``Compute`` for a single edge (derived from the vector form)."""
        result = self.compute_edges(
            np.asarray([metadata[src]], dtype=np.float64),
            np.asarray([weight], dtype=np.float64),
            np.asarray([metadata[dst]], dtype=np.float64),
            np.asarray([src], dtype=np.int64),
            np.asarray([dst], dtype=np.int64),
            graph,
        )
        return float(result[0])

    def combine(self, updates: np.ndarray) -> float:
        """Scalar ``Combine``: reduce the updates arriving at one vertex."""
        updates = np.asarray(updates, dtype=np.float64)
        valid = updates[~np.isnan(updates)]
        return self.combine_op.reduce(valid)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Summary used by the examples and by DESIGN/EXPERIMENTS docs."""
        return {
            "name": self.name,
            "combine_kind": self.combine_kind.value,
            "combine_op": self.combine_op.value,
            "uses_weights": self.uses_weights,
            "starts_in_pull": self.starts_in_pull,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, combine={self.combine_op.value})"
