"""The SIMD-X execution engine (Figure 4(b), Sections 3-5 combined).

The engine runs an :class:`~repro.core.acc.ACCAlgorithm` as a BSP loop. Each
iteration:

1. picks the execution direction with the Beamer-style selector (Section 5):
   the frontier's out-edge share decides between *push* (scatter the
   frontier's out-edges) and *pull* (every candidate destination gathers
   over its in-edges); manual configurations pin the direction through
   :meth:`DirectionSelector.force` so the selector's history still matches
   what ran;
2. classifies the direction's worklist into small/medium/large lists by the
   matching degree - out-degree of the frontier in push mode, in-degree of
   the gather candidates in pull mode (Section 4 step I) - so the Thread /
   Warp / CTA kernels each receive similarly-sized tasks (step II);
3. functionally evaluates ``Compute`` over the expanded edges (out-CSR
   scatter or in-CSR gather, both with the same vectorized ``np.repeat`` /
   ``cumsum`` CSR walk) and ``Combine`` per destination with NumPy - the
   atomic-free combine of the ACC model. Push and pull feed every edge the
   identical operands in the identical per-destination order, so the two
   directions produce bit-identical vertex values;
4. applies the combined updates, derives the new active mask, and asks the
   configured filter (JIT / online / ballot / batch / strided / atomic) for
   the next worklist. In push mode the recording workers are the frontier
   slots (one per scatter source); in pull mode each gather worker records
   its own destination once, post-combine;
5. charges the simulated device for the compute kernels, the task-management
   kernel, the software global barrier (for fused strategies) and any kernel
   launches the fusion strategy requires - and the push-pull fusion plan
   relaunches exactly when the executed direction switches, so
   ``direction_trace`` always reflects the expansion path that actually ran.

The functional result (distances, ranks, core flags) is identical across
filter modes, fusion strategies, directions and devices; only the simulated
time and the recorded traces change. That separation mirrors the paper's own
claim that programming (ACC) is decoupled from processing (JIT + fusion).
"""

from __future__ import annotations

import copy

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.acc import ACCAlgorithm, CombineKind
from repro.core.direction import (
    BatchDirectionPolicy,
    DEFAULT_TRAFFIC_MODEL,
    Direction,
    DirectionSelector,
    SubBatchPlan,
    TrafficModel,
)
from repro.core.filters import (
    FilterContext,
    FilterMode,
    FilterOverflowError,
    FilterResult,
    make_filter,
)
from repro.core.frontier import (
    BatchedFrontier,
    ClassifiedFrontier,
    LANES_PER_WORD,
    WorklistClassifier,
    threads_for_frontier,
)
from repro.analysis import registry as extra_keys
from repro.analysis.sanitizer import RuntimeSanitizer
from repro.core import kernels as kernel_backends
from repro.core.fusion import FusionPlan, FusionStrategy
from repro.core.jit import JITTaskManager
from repro.core.metrics import BatchRunResult, IterationRecord, RunResult
from repro.gpu import memory as gmem
from repro.gpu.atomics import profile_atomic_updates
from repro.gpu.barrier import SoftwareGlobalBarrier
from repro.gpu.device import DeviceOutOfMemory, GPUDevice, K40
from repro.gpu.kernel import Kernel, KernelLaunch, WorkEstimate
from repro.gpu.warp import divergence_fraction, reduction_primitive_ops


@dataclass
class EngineConfig:
    """Tunable knobs of the SIMD-X engine.

    The defaults correspond to the configuration the paper evaluates:
    JIT task management with a 64-entry overflow threshold, push-pull based
    kernel fusion, 128 threads per CTA and worklist separators at the warp
    and CTA sizes.
    """

    filter_mode: FilterMode = FilterMode.JIT
    fusion: FusionStrategy = FusionStrategy.PUSH_PULL
    overflow_threshold: int = 64
    small_medium_separator: int = 32
    medium_large_separator: int = 256
    threads_per_cta: int = 128
    to_pull_threshold: float = 0.05
    to_push_threshold: float = 0.01
    direction_auto: bool = True
    #: With ``direction_auto=False``, every iteration runs in this direction
    #: (``None`` falls back to the algorithm's starting direction). Useful
    #: for forcing a pure scatter or pure gather execution.
    forced_direction: Optional[Direction] = None
    #: With ``direction_auto=False``: explicit per-iteration directions
    #: (iteration i runs ``schedule[min(i - 1, len - 1)]``, i.e. the last
    #: entry repeats). Used by the calibration sweep and the differential
    #: fuzz harness to pin arbitrary push/pull schedules; mutually exclusive
    #: with ``forced_direction``.
    forced_direction_schedule: Optional[Sequence[Direction]] = None
    max_iterations: Optional[int] = None
    #: Batched runs (``run_batch``) only: score every lane's own frontier
    #: with the traffic model each iteration and, when lane interests
    #: diverge from the union decision past ``split_margin``, split the
    #: batch into a push-leaning and a pull-leaning sub-batch that each
    #: walk the CSR (or in-CSR) with their own frontier view, JIT filter
    #: state and pre-arm bound (docs/batching.md, "Lane-aware direction
    #: selection"). Off = PR-3 behaviour: one union decision per iteration.
    lane_aware_split: bool = True
    #: Minimum modelled compute-op saving, as a fraction of the decide-once
    #: cost, before a diverging batch actually splits - the knob that
    #: absorbs the per-sub-batch fixed costs (each sub-batch pays its own
    #: kernel launches, barriers and task-management pass).
    split_margin: float = 0.5
    #: Test/harness hook: ``split_schedule(iteration, live_lanes)`` may
    #: return an explicit list of ``(direction, lanes)`` sub-batches for
    #: that iteration (a partition of ``live_lanes``), or ``None`` to fall
    #: through to the automatic policy. Per-lane results are bit-identical
    #: under *every* schedule - the differential fuzz harness drives random
    #: schedules through this hook to prove it.
    split_schedule: Optional[
        Callable[[int, List[int]], Optional[List[Tuple[Direction, List[int]]]]]
    ] = None
    shadow_online: bool = True
    #: When True, the Combine step is priced as Gunrock prices it - direct
    #: atomic updates to vertex state instead of the ACC model's shared-memory
    #: staging - which is the ablation behind Figure 5. Functional results are
    #: unchanged; only the cost differs.
    atomic_combine: bool = False
    #: Per-direction compute-op constants of the cost model. The default is
    #: the calibrated set recorded in EXPERIMENTS.md; the calibration
    #: experiments override it to test fitted alternatives.
    traffic_model: TrafficModel = DEFAULT_TRAFFIC_MODEL
    #: Shadow every superstep with the runtime sanitizer
    #: (:mod:`repro.analysis.sanitizer`): ACC hooks run on read-only views,
    #: the CSR arrays are frozen, and the Compute->Combine->apply stream is
    #: recorded and compared against the metadata each iteration. Functional
    #: results are bit-identical; a clean run lands its report in
    #: ``RunResult.extra["sanitizer"]``.
    sanitize: bool = False
    #: With ``sanitize=True``: raise :class:`SanitizerError` on the first
    #: violation (default) or collect violations into the report only.
    sanitize_raise: bool = True
    #: Partition the graph into this many contiguous vertex-range shards,
    #: each with its own simulated device, memory budget, frontier slice
    #: and direction/JIT state; supersteps run as local push/pull
    #: expansion plus a boundary-update merge (docs/sharding.md). Results
    #: are bit-identical to ``num_shards=1``; only the memory ceiling and
    #: the cost accounting change. With ``num_shards > 1`` the batched
    #: lane-split knobs (``lane_aware_split``, ``split_schedule``) are
    #: inert - per-shard direction selection replaces lane grouping.
    num_shards: int = 1
    #: Execution backend of the CSR-walk kernel primitives
    #: (:mod:`repro.core.kernels`): ``"numpy"`` (vectorized, the default)
    #: or ``"python"`` (loop-based reference). Results are bit-identical;
    #: only wall-clock differs. Threaded through single, batched and
    #: sharded runs; ``RunResult.extra["kernel_backend"]`` records it.
    kernel_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.kernel_backend not in kernel_backends.BACKEND_NAMES:
            raise ValueError(
                f"unknown kernel_backend {self.kernel_backend!r}; known: "
                f"{kernel_backends.BACKEND_NAMES}"
            )
        if self.direction_auto and self.forced_direction is not None:
            raise ValueError(
                "forced_direction requires direction_auto=False; with "
                "direction_auto=True the selector would silently ignore it"
            )
        if self.forced_direction_schedule is not None:
            if self.direction_auto:
                raise ValueError(
                    "forced_direction_schedule requires direction_auto=False"
                )
            if self.forced_direction is not None:
                raise ValueError(
                    "forced_direction and forced_direction_schedule are "
                    "mutually exclusive"
                )
            if not self.forced_direction_schedule:
                raise ValueError("forced_direction_schedule must be non-empty")
        if self.split_margin < 0:
            raise ValueError("split_margin must be non-negative")


@dataclass
class _ExpansionResult:
    """Functional outcome of expanding one frontier (push or pull)."""

    touched: np.ndarray          # unique destinations whose value changed
    update_destinations: np.ndarray   # destination of every valid update
    #: What the task-management filter observes: in push mode one entry per
    #: valid update (the scatter thread saw each one happen); in pull mode
    #: one entry per destination that received any update (the gather thread
    #: learns about its own vertex once, post-combine).
    recorded_destinations: np.ndarray
    recorded_producers: np.ndarray    # worker slot owning each recorded entry
    num_workers: int                  # worker threads (frontier / receivers)
    edges_expanded: int
    #: Edges whose source was in the frontier (== ``edges_expanded`` in push
    #: mode). A pull iteration scans every candidate in-edge but only these
    #: pay the scattered source-metadata read and the Compute evaluation.
    active_edges: int = 0


class SIMDXEngine:
    """Run ACC algorithms on a simulated GPU with SIMD-X's optimizations."""

    SYSTEM_NAME = "SIMD-X"

    def __init__(
        self,
        graph,
        device: Optional[GPUDevice] = None,
        config: Optional[EngineConfig] = None,
    ):
        self.graph = graph
        self.device = device if device is not None else GPUDevice(K40)
        self.config = config if config is not None else EngineConfig()
        self.classifier = WorklistClassifier(
            graph,
            small_medium_separator=self.config.small_medium_separator,
            medium_large_separator=self.config.medium_large_separator,
            direction=Direction.PUSH,
        )
        # Built on the first pull iteration: classifying a gather worklist
        # needs in-degrees, which force the lazy in-CSR transpose.
        self._pull_classifier: Optional[WorklistClassifier] = None
        self._in_degrees: Optional[np.ndarray] = None
        self.fusion_plan = FusionPlan(
            self.config.fusion, threads_per_cta=self.config.threads_per_cta
        )
        self._graph_alloc = None
        #: Kernel backend the CSR-walk primitives run on (docs/kernels.md).
        self.kernel = kernel_backends.get_kernel_backend(
            self.config.kernel_backend
        )
        #: Edges expanded by this run's CSR walks (reset per run; equals
        #: the iteration records' frontier_edges total).
        self._kernel_edges_walked = 0

    def _begin_run(self) -> None:
        """Reset all cross-run mutable state before a ``run``/``run_batch``.

        One engine instance may serve any number of consecutive
        ``run``/``run_batch`` calls (the serving layer reuses one engine
        per device), so every piece of per-run mutable state must be
        reset here: the profiler's records, the device's simulated
        allocations (also cleared on the way out, but an aborted run must
        not leak into the next), the fusion plan's active-kernel latch
        and the kernel-edge counter. Everything else that persists on the
        instance is a deterministic graph-derived cache (the worklist
        classifiers, in-degrees, the lazily-built in-CSR transpose) -
        the *intended* reuse. Per-run controllers (JIT task managers,
        direction selector, batch direction policy, barrier) are
        constructed inside each run. ``tests/test_engine_reuse.py`` pins
        the contract: call N on a reused engine is bit-identical, values
        and ``extra`` counters alike, to the same call on a fresh engine.
        """
        self._kernel_edges_walked = 0
        self.device.profiler.reset()
        self.device.reset_memory()
        self.fusion_plan.reset()

    @property
    def pull_classifier(self) -> WorklistClassifier:
        """In-degree classifier for gather (pull) worklists, built lazily."""
        if self._pull_classifier is None:
            self._pull_classifier = WorklistClassifier(
                self.graph,
                small_medium_separator=self.config.small_medium_separator,
                medium_large_separator=self.config.medium_large_separator,
                direction=Direction.PULL,
            )
        return self._pull_classifier

    def _forced_direction(self, iteration: int, start: Direction) -> Direction:
        """Direction of iteration ``iteration`` under a manual configuration."""
        cfg = self.config
        if cfg.forced_direction_schedule is not None:
            schedule = cfg.forced_direction_schedule
            return schedule[min(iteration - 1, len(schedule) - 1)]
        return cfg.forced_direction or start

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, algorithm: ACCAlgorithm, **params) -> RunResult:
        """Execute ``algorithm`` to convergence and return its result."""
        # Before the shard delegation: the sharded executor walks edges
        # through this same engine instance, so the counter covers it too.
        self._kernel_edges_walked = 0
        if self.config.num_shards > 1:
            from repro.shard.executor import ShardedExecutor

            return ShardedExecutor(self).run(algorithm, **params)
        device = self.device
        self._begin_run()

        try:
            # Allocation sizes follow the modeled (paper-scale) graph so the
            # memory-feasibility behaviour of Table 4 is reproduced even
            # though the functional run uses the scaled-down analogue.
            self._graph_alloc = device.malloc(
                self.graph.modeled_csr_bytes(), label="csr_graph"
            )
            metadata_alloc = device.malloc(
                2 * self.graph.modeled_num_vertices * 8, label="metadata"
            )
            device.malloc(
                3 * self.graph.modeled_num_vertices * 4, label="worklists"
            )
        except DeviceOutOfMemory as exc:
            return RunResult.failure(
                self.SYSTEM_NAME, algorithm.name, self.graph.name, f"OOM: {exc}",
                device=device.spec.name,
            )

        try:
            result = self._run_loop(algorithm, **params)
        except DeviceOutOfMemory as exc:
            result = RunResult.failure(
                self.SYSTEM_NAME, algorithm.name, self.graph.name, f"OOM: {exc}",
                device=device.spec.name,
            )
        except FilterOverflowError as exc:
            result = RunResult.failure(
                self.SYSTEM_NAME, algorithm.name, self.graph.name,
                f"online filter overflow: {exc}", device=device.spec.name,
            )
        finally:
            device.reset_memory()
        return result

    def run_batch(
        self,
        algorithm: ACCAlgorithm,
        sources: Sequence[int],
        lane_params: Optional[Sequence[Mapping[str, object]]] = None,
        **params,
    ) -> BatchRunResult:
        """Answer K queries of ``algorithm`` (one per source) in one run.

        Each source owns a query *lane*: lane k's metadata evolves exactly
        as ``run(algorithm_from(sources[k]))`` would evolve it - lanes
        advance in lockstep with their independent runs, so the final
        metadata is bit-identical per lane (for delta-stepping SSSP the
        lockstep is per-value, not per-iteration - see
        :class:`~repro.core.metrics.BatchRunResult`) - but every iteration
        walks the CSR over the *union* of the lane frontiers
        (:class:`~repro.core.frontier.BatchedFrontier`) and expands each
        union edge only into the lanes whose frontier contains its source.

        Direction selection is *lane-aware* by default
        (``EngineConfig.lane_aware_split``): each iteration every lane's
        own frontier is scored with the traffic model and the batch splits
        into a push-leaning and a pull-leaning sub-batch when lane
        interests diverge past ``split_margin`` - each sub-batch walks the
        CSR (or in-CSR) with its own frontier view, JIT filter state and
        pre-arm bound, and lanes re-merge when their decisions reconverge.
        With ``lane_aware_split=False`` direction and the task-management
        filter are decided once on the union (the PR-3 cost-only
        approximation); ``docs/batching.md`` documents both regimes.

        ``algorithm`` must set ``supports_multi_source`` (its ``init`` takes
        a per-query ``source``); the instance itself is used only for the
        stateless per-edge Compute - per-lane state lives in per-lane
        copies, so stateful hooks (SSSP's pending set) stay isolated.

        ``lane_params`` optionally overrides per-lane algorithm parameters:
        entry k is a mapping of attribute overrides applied to lane k's
        private copy before ``init`` (e.g. a per-lane SSSP ``delta``). With
        heterogeneous parameters the per-edge Compute is evaluated through
        each lane's own copy rather than the shared flattened call, so
        parameter-dependent computes stay correct per lane.
        """
        device = self.device
        graph = self.graph
        sources = [int(s) for s in sources]
        if not sources:
            raise ValueError("run_batch needs at least one source")
        if not algorithm.supports_multi_source:
            raise ValueError(
                f"algorithm {algorithm.name!r} does not support multi-source "
                "batching (no per-query source to batch over)"
            )
        if lane_params is not None:
            lane_params = [dict(p) for p in lane_params]
            if len(lane_params) != len(sources):
                raise ValueError(
                    f"lane_params has {len(lane_params)} entries for "
                    f"{len(sources)} sources"
                )
            for overrides in lane_params:
                for key in overrides:
                    if not hasattr(algorithm, key):
                        raise ValueError(
                            f"unknown algorithm parameter {key!r} in lane_params"
                        )
        num_lanes = len(sources)
        self._kernel_edges_walked = 0
        if self.config.num_shards > 1:
            from repro.shard.executor import ShardedExecutor

            return ShardedExecutor(self).run_batch(
                algorithm, sources, lane_params=lane_params, **params
            )
        self._begin_run()

        num_words = -(-num_lanes // LANES_PER_WORD)
        try:
            self._graph_alloc = device.malloc(
                graph.modeled_csr_bytes(), label="csr_graph"
            )
            # The dominant batching cost: one metadata array (current +
            # previous) per lane.
            device.malloc(
                2 * num_lanes * graph.modeled_num_vertices * 8,
                label="metadata_lanes",
            )
            # Union worklists plus the per-vertex lane bitmask words.
            device.malloc(
                3 * graph.modeled_num_vertices * 4
                + graph.modeled_num_vertices * num_words * 8,
                label="worklists",
            )
        except DeviceOutOfMemory as exc:
            return BatchRunResult.failure(
                self.SYSTEM_NAME, algorithm.name, graph.name, sources,
                f"OOM: {exc}", device=device.spec.name,
            )

        try:
            result = self._run_batch_loop(
                algorithm, sources, lane_params=lane_params, **params
            )
        except DeviceOutOfMemory as exc:
            result = BatchRunResult.failure(
                self.SYSTEM_NAME, algorithm.name, graph.name, sources,
                f"OOM: {exc}", device=device.spec.name,
            )
        except FilterOverflowError as exc:
            result = BatchRunResult.failure(
                self.SYSTEM_NAME, algorithm.name, graph.name, sources,
                f"online filter overflow: {exc}", device=device.spec.name,
            )
        finally:
            device.reset_memory()
        return result

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _run_loop(self, algorithm: ACCAlgorithm, **params) -> RunResult:
        sanitizer: Optional[RuntimeSanitizer] = None
        if self.config.sanitize:
            sanitizer = RuntimeSanitizer(
                self.graph, raise_on_violation=self.config.sanitize_raise
            )
        try:
            return self._run_loop_impl(algorithm, sanitizer, **params)
        finally:
            if sanitizer is not None:
                # Unfreeze the CSR arrays on every exit path, including a
                # raised SanitizerError - the graph outlives the run.
                sanitizer.release()

    def _run_loop_impl(
        self,
        algorithm: ACCAlgorithm,
        sanitizer: Optional[RuntimeSanitizer],
        **params,
    ) -> RunResult:
        cfg = self.config
        graph = self.graph
        device = self.device
        n = graph.num_vertices

        state = algorithm.init(graph, **params)
        metadata = np.asarray(state.metadata, dtype=np.float64).copy()
        worklist_raw = np.asarray(state.frontier, dtype=np.int64)
        frontier = np.unique(worklist_raw)
        sortedness = 1.0

        if sanitizer is not None:
            # Wrapping after init: init owns its arrays, every later hook
            # call is intercepted and checked.
            algorithm = sanitizer.wrap(algorithm, lane=0)
            sanitizer.freeze_graph()

        jit: Optional[JITTaskManager] = None
        standalone_filter = None
        if cfg.filter_mode == FilterMode.JIT:
            jit = JITTaskManager(
                overflow_threshold=cfg.overflow_threshold,
                shadow_online=cfg.shadow_online,
            )
        else:
            standalone_filter = make_filter(
                cfg.filter_mode, online_capacity=cfg.overflow_threshold
            )

        selector = DirectionSelector(
            total_edges=graph.num_edges,
            to_pull_threshold=cfg.to_pull_threshold,
            to_push_threshold=cfg.to_push_threshold,
            start_direction=Direction.PULL if algorithm.starts_in_pull else Direction.PUSH,
        )

        barrier = self._make_barrier()

        max_iterations = (
            cfg.max_iterations if cfg.max_iterations is not None
            else algorithm.max_iterations
        )
        records: List[IterationRecord] = []
        filter_trace: List[str] = []
        direction_trace: List[str] = []
        total_us = 0.0
        iteration = 0

        while frontier.size and iteration < max_iterations:
            iteration += 1
            prev_metadata = metadata.copy()
            if sanitizer is not None:
                sanitizer.begin_superstep(iteration, metadata)

            # ---------------- direction + worklist classification --------
            # The Beamer-style test prices the frontier by its out-edges
            # (the would-be push cost); pull iterations then reclassify the
            # gather worklist by in-degree, push iterations reuse the
            # frontier classification as-is.
            push_classified = self.classifier.classify(frontier)
            frontier_out_edges = push_classified.total_edges
            if cfg.direction_auto:
                direction = selector.decide(frontier_out_edges)
            else:
                direction = selector.force(
                    self._forced_direction(iteration, selector.start_direction)
                )

            if direction is Direction.PULL:
                candidates = self._gather_candidates(algorithm, metadata, frontier)
                classifier = self.pull_classifier
                classified = classifier.classify(candidates)
            else:
                candidates = None
                classifier = self.classifier
                classified = push_classified
            frontier_edges = classified.total_edges

            # ---------------- functional compute + combine + apply ------
            expansion = self._expand_and_apply(
                algorithm, metadata, frontier, direction,
                candidates=candidates,
                frontier_out_edges=frontier_out_edges,
            )

            # ---------------- next worklist (task management) -----------
            active_mask = algorithm.active_mask(metadata, prev_metadata)
            success_rate = 1.0
            if (
                jit is not None
                and direction is Direction.PUSH
                and direction_trace
                and direction_trace[-1] == Direction.PULL.value
            ):
                # Pull->push switch: the pre-arm bound folds in the
                # expected offer success rate, estimated from the
                # pre-iteration metadata (see _offer_success_rate).
                success_rate = self._offer_success_rate(algorithm, prev_metadata)
            (
                filter_result, filter_name,
                compute_us, launch_us, filter_us, barrier_us,
            ) = self._finish_iteration(
                algorithm=algorithm,
                classified=classified,
                classifier=classifier,
                direction=direction,
                sortedness=sortedness,
                expansion=expansion,
                active_mask=active_mask,
                frontier=frontier,
                jit=jit,
                standalone_filter=standalone_filter,
                iteration=iteration,
                barrier=barrier,
                success_rate=success_rate,
            )

            iteration_us = compute_us + launch_us + filter_us + barrier_us
            total_us += iteration_us
            records.append(
                IterationRecord(
                    iteration=iteration,
                    direction=direction.value,
                    frontier_vertices=int(frontier.size),
                    frontier_edges=int(frontier_edges),
                    filter_used=filter_name,
                    filter_overflowed=filter_result.overflowed,
                    compute_us=compute_us,
                    filter_us=filter_us,
                    barrier_us=barrier_us,
                    launch_us=launch_us,
                    active_edges=int(expansion.active_edges),
                )
            )
            if sanitizer is not None:
                sanitizer.observe_record(records[-1])
            filter_trace.append(filter_name)
            direction_trace.append(direction.value)

            # ---------------- advance to the next iteration --------------
            worklist_raw = filter_result.worklist
            sortedness = filter_result.sortedness if worklist_raw.size else 1.0
            frontier = np.unique(worklist_raw)
            if frontier.size == 0 and not algorithm.converged(
                metadata, prev_metadata, iteration
            ):
                # Algorithm wants more iterations despite an empty frontier
                # (not used by the shipped algorithms, but part of the API).
                frontier = np.nonzero(active_mask)[0].astype(np.int64)
            if sanitizer is not None:
                sanitizer.end_superstep(iteration, metadata)

        extra = {
            extra_keys.FUSION: cfg.fusion.value,
            extra_keys.FILTER_MODE: cfg.filter_mode.value,
            extra_keys.DIRECTION_SWITCHES: selector.switches(),
            extra_keys.BREAKDOWN: device.profiler.breakdown(),
            # Iterations whose ballot was pre-armed at a pull->push
            # switch (empty for non-JIT filter modes).
            extra_keys.JIT_PRE_ARMED_ITERATIONS: (
                jit.pre_armed_iterations() if jit is not None else []
            ),
            extra_keys.KERNEL_BACKEND: cfg.kernel_backend,
            extra_keys.KERNEL_EDGES_WALKED: int(self._kernel_edges_walked),
        }
        if sanitizer is not None:
            sanitizer.validate_extra(extra)
            extra[extra_keys.SANITIZER] = sanitizer.report()
        return RunResult(
            system=self.SYSTEM_NAME,
            algorithm=algorithm.name,
            graph=graph.name,
            values=algorithm.vertex_value(metadata),
            elapsed_us=total_us,
            iterations=iteration,
            device=device.spec.name,
            kernel_launches=device.profiler.launch_count(),
            filter_trace=filter_trace,
            direction_trace=direction_trace,
            iteration_records=records,
            extra=extra,
        )

    # ------------------------------------------------------------------
    # Batched multi-source loop (with lane-aware direction splitting)
    # ------------------------------------------------------------------
    def _plan_groups(
        self,
        iteration: int,
        live: List[int],
        lane_out_edges: Dict[int, int],
        lane_frontiers: List[np.ndarray],
        pull_estimate,
        union_direction: Direction,
        policy: Optional[BatchDirectionPolicy],
        pull_scan_fraction: float,
    ) -> List[SubBatchPlan]:
        """Sub-batches for one batched iteration, in execution order.

        A forced ``split_schedule`` wins; otherwise the lane-aware policy
        plans (when enabled and the direction is automatic); otherwise the
        whole batch runs as one sub-batch in ``union_direction``.
        """
        cfg = self.config
        if cfg.split_schedule is not None:
            forced = cfg.split_schedule(iteration, list(live))
            if forced is not None:
                seen: List[int] = []
                groups = []
                for direction, lanes in forced:
                    lanes = [int(l) for l in lanes]
                    seen.extend(lanes)
                    if lanes:  # an empty group has nothing to execute
                        groups.append(SubBatchPlan(direction, tuple(lanes)))
                if sorted(seen) != sorted(live):
                    raise ValueError(
                        f"split_schedule for iteration {iteration} must "
                        f"partition the live lanes {sorted(live)}, got {sorted(seen)}"
                    )
                if policy is not None:
                    # Keep the per-lane selectors (and split_history) in
                    # step with what actually executes, so automatic
                    # iterations interleaved with forced ones plan from
                    # real hysteresis.
                    policy.force(groups)
                return groups
        if policy is not None:
            decision = policy.plan(
                live,
                lane_out_edges,
                {lane: int(lane_frontiers[lane].size) for lane in live},
                pull_estimate,
                union_direction,
                pull_scan_fraction=pull_scan_fraction,
            )
            return list(decision.groups)
        return [SubBatchPlan(union_direction, tuple(live))]

    def _run_batch_loop(
        self,
        algorithm: ACCAlgorithm,
        sources: List[int],
        *,
        lane_params: Optional[List[Dict[str, object]]] = None,
        **params,
    ) -> BatchRunResult:
        sanitizer: Optional[RuntimeSanitizer] = None
        if self.config.sanitize:
            sanitizer = RuntimeSanitizer(
                self.graph, raise_on_violation=self.config.sanitize_raise
            )
        try:
            return self._run_batch_loop_impl(
                algorithm, sources, sanitizer, lane_params=lane_params, **params
            )
        finally:
            if sanitizer is not None:
                sanitizer.release()

    def _run_batch_loop_impl(
        self,
        algorithm: ACCAlgorithm,
        sources: List[int],
        sanitizer: Optional[RuntimeSanitizer],
        *,
        lane_params: Optional[List[Dict[str, object]]] = None,
        **params,
    ) -> BatchRunResult:
        cfg = self.config
        graph = self.graph
        device = self.device
        n = graph.num_vertices
        num_lanes = len(sources)

        # Per-lane algorithm copies isolate stateful hooks (SSSP's pending
        # set, k-Core's bookkeeping); the shared prototype serves the
        # stateless flattened Compute calls - unless heterogeneous per-lane
        # parameters require evaluating Compute through each lane's copy.
        per_lane_compute = lane_params is not None
        clones: List[ACCAlgorithm] = []
        metadata = np.zeros((num_lanes, n), dtype=np.float64)
        lane_frontiers: List[np.ndarray] = []
        for lane, source in enumerate(sources):
            clone = copy.copy(algorithm)
            if lane_params is not None:
                for key, value in lane_params[lane].items():
                    setattr(clone, key, value)
            state = clone.init(graph, source=source, **params)
            clones.append(clone)
            metadata[lane] = np.asarray(state.metadata, dtype=np.float64)
            lane_frontiers.append(
                np.unique(np.asarray(state.frontier, dtype=np.int64))
            )
        if sanitizer is not None:
            # Wrap after cloning/init: each clone's hooks are checked on
            # its own lane row; the prototype's flattened calls carry the
            # lane axis explicitly.
            clones = [
                sanitizer.wrap(clone, lane=k) for k, clone in enumerate(clones)
            ]
            algorithm = sanitizer.wrap(algorithm, lane=None)
            sanitizer.freeze_graph()

        # Task-management streams: the primary stream serves single-group
        # iterations and the first sub-batch of a split; a split forks a
        # side stream from the primary (same ballot/online mode, same last
        # direction - what every lane experienced up to the split), which
        # persists across consecutive split iterations and retires on
        # re-merge. Stream identity affects cost and traces only, never
        # per-lane results.
        jit_main: Optional[JITTaskManager] = None
        jit_side: Optional[JITTaskManager] = None
        retired_side_jits: List[JITTaskManager] = []
        standalone_filter = None
        if cfg.filter_mode == FilterMode.JIT:
            jit_main = JITTaskManager(
                overflow_threshold=cfg.overflow_threshold,
                shadow_online=cfg.shadow_online,
            )
        else:
            standalone_filter = make_filter(
                cfg.filter_mode, online_capacity=cfg.overflow_threshold
            )

        start_direction = (
            Direction.PULL if algorithm.starts_in_pull else Direction.PUSH
        )
        selector = DirectionSelector(
            total_edges=graph.num_edges,
            to_pull_threshold=cfg.to_pull_threshold,
            to_push_threshold=cfg.to_push_threshold,
            start_direction=start_direction,
        )
        policy: Optional[BatchDirectionPolicy] = None
        if cfg.direction_auto and cfg.lane_aware_split:
            policy = BatchDirectionPolicy(
                total_edges=graph.num_edges,
                num_lanes=num_lanes,
                to_pull_threshold=cfg.to_pull_threshold,
                to_push_threshold=cfg.to_push_threshold,
                start_direction=start_direction,
                traffic_model=cfg.traffic_model,
                margin=cfg.split_margin,
            )
        pull_scan_fraction = (
            cfg.traffic_model.voting_pull_scan_fraction
            if algorithm.combine_kind is CombineKind.VOTING else 1.0
        )
        barrier = self._make_barrier()
        max_iterations = (
            cfg.max_iterations if cfg.max_iterations is not None
            else algorithm.max_iterations
        )

        records: List[IterationRecord] = []
        filter_trace: List[str] = []
        direction_trace: List[str] = []
        split_iterations: List[int] = []
        lane_iterations = [0] * num_lanes
        total_us = 0.0
        iteration = 0
        sortedness = {"main": 1.0, "side": 1.0}

        while any(f.size for f in lane_frontiers) and iteration < max_iterations:
            iteration += 1
            live = [k for k in range(num_lanes) if lane_frontiers[k].size]
            for lane in live:
                lane_iterations[lane] = iteration
            prev_metadata = metadata.copy()
            if sanitizer is not None:
                sanitizer.begin_superstep(iteration, metadata)
            batched = BatchedFrontier.from_lanes(
                lane_frontiers, backend=self.kernel
            )
            union = batched.vertices

            # ------------- direction: union decision + lane-aware plan ---
            # The union selector still runs every iteration (its history is
            # the direction_switches trace and the fallback decision); the
            # lane-aware policy may override it per sub-batch. Per-lane
            # out-edge counts are needed only for planning (policy or
            # forced schedule) and for gating pull-mode frontier hooks, so
            # pure decide-once push iterations skip the K degree sums.
            if policy is not None or cfg.split_schedule is not None:
                lane_out_edges = {
                    lane: self.classifier.edge_count(lane_frontiers[lane])
                    for lane in live
                }
            else:
                lane_out_edges = {}
            union_out_edges = self.classifier.edge_count(union)
            if cfg.direction_auto:
                union_direction = selector.decide(union_out_edges)
            else:
                union_direction = selector.force(
                    self._forced_direction(iteration, selector.start_direction)
                )

            # Gather candidates are cached per (iteration, lane) so the
            # planner's pull scoring and the pull expansion both price the
            # same pruned worklist, computed from iteration-start metadata.
            lane_candidates_cache: Dict[int, np.ndarray] = {}

            def lane_gather_candidates(lane: int) -> np.ndarray:
                if lane not in lane_candidates_cache:
                    if self._in_degrees is None:
                        self._in_degrees = graph.in_degrees()
                    mask = np.asarray(
                        clones[lane].gather_mask(
                            metadata[lane], graph, lane_frontiers[lane]
                        ),
                        dtype=bool,
                    )
                    lane_candidates_cache[lane] = np.nonzero(
                        mask & (self._in_degrees > 0)
                    )[0].astype(np.int64)
                return lane_candidates_cache[lane]

            def pull_estimate(lane: int) -> Tuple[int, int]:
                candidates = lane_gather_candidates(lane)
                scanned = int(self._in_degrees[candidates].sum())
                return scanned, int(candidates.size)

            groups = self._plan_groups(
                iteration, live, lane_out_edges, lane_frontiers,
                pull_estimate, union_direction, policy, pull_scan_fraction,
            )
            if sanitizer is not None:
                sanitizer.check_groups(iteration, live, groups)
            if len(groups) > 1:
                split_iterations.append(iteration)
                if jit_main is not None and jit_side is None:
                    jit_side = jit_main.fork()
            elif jit_side is not None:
                # Decisions reconverged: the side stream retires, the
                # primary stream carries on for the merged batch.
                retired_side_jits.append(jit_side)
                jit_side = None

            # ------------- per-sub-batch expansion + tail ----------------
            group_directions: List[str] = []
            group_filters: List[str] = []
            for group_index, group in enumerate(groups):
                group_lanes = list(group.lanes)
                direction = group.direction
                stream_key = "main" if group_index == 0 else "side"
                jit_stream = jit_main if group_index == 0 else jit_side

                if direction is Direction.PULL:
                    lane_candidates = {
                        lane: lane_gather_candidates(lane)
                        for lane in group_lanes
                    }
                    non_empty = [
                        c for c in lane_candidates.values() if c.size
                    ]
                    union_candidates = (
                        np.unique(np.concatenate(non_empty)) if non_empty
                        else np.zeros(0, dtype=np.int64)
                    )
                    classifier = self.pull_classifier
                    classified = classifier.classify(union_candidates)
                    group_out_edges = {
                        l: (
                            lane_out_edges[l] if l in lane_out_edges
                            else self.classifier.edge_count(lane_frontiers[l])
                        )
                        for l in group_lanes
                    }
                    expansion, lane_recorded, lane_pairs = self._expand_batch_pull(
                        algorithm, clones, metadata, lane_frontiers,
                        group_lanes, lane_candidates, union_candidates,
                        group_out_edges,
                        per_lane_compute=per_lane_compute,
                    )
                    front_parts = [
                        lane_frontiers[l] for l in group_lanes
                        if lane_frontiers[l].size
                    ]
                    group_frontier = (
                        np.unique(np.concatenate(front_parts)) if front_parts
                        else np.zeros(0, dtype=np.int64)
                    )
                else:
                    view = (
                        batched if len(groups) == 1
                        else batched.sub_batch(group_lanes)
                    )
                    if sanitizer is not None:
                        # Before expansion: group lanes' frontiers are
                        # still the iteration-start ones here.
                        sanitizer.check_sub_batch(
                            view, group_lanes, lane_frontiers, iteration
                        )
                    group_frontier = (
                        union if len(groups) == 1 else view.vertices
                    )
                    classifier = self.classifier
                    classified = classifier.classify(group_frontier)
                    expansion, lane_recorded, lane_pairs = self._expand_batch_push(
                        algorithm, clones, metadata, view, group_lanes,
                        per_lane_compute=per_lane_compute,
                    )
                frontier_edges = classified.total_edges

                # Per-lane next frontiers: mirror the single-run worklist
                # derivation (recorded ∩ active, with the convergence
                # re-seed) on each group lane's own metadata row.
                group_active = np.zeros(n, dtype=bool)
                for lane in group_lanes:
                    active = np.asarray(
                        clones[lane].active_mask(
                            metadata[lane], prev_metadata[lane]
                        ),
                        dtype=bool,
                    )
                    group_active |= active
                    recorded_lane = lane_recorded[lane]
                    worklist = (
                        recorded_lane[active[recorded_lane]]
                        if recorded_lane.size else recorded_lane
                    )
                    next_frontier = np.unique(worklist)
                    if next_frontier.size == 0 and not clones[lane].converged(
                        metadata[lane], prev_metadata[lane], iteration
                    ):
                        next_frontier = np.nonzero(active)[0].astype(np.int64)
                    lane_frontiers[lane] = next_frontier

                # One task-management pass per sub-batch, charged and traced
                # exactly like a single-source iteration over the group's
                # union worklist; its output worklist is redundant with the
                # per-lane derivation above and feeds only the sortedness of
                # the stream's next iteration.
                success_rate = 1.0
                if (
                    jit_stream is not None
                    and direction is Direction.PUSH
                    and jit_stream.last_direction is Direction.PULL
                ):
                    # Group analogue of _offer_success_rate: a destination
                    # is still updatable if any group lane can update it.
                    updatable = np.zeros(n, dtype=bool)
                    for lane in group_lanes:
                        updatable |= np.asarray(
                            clones[lane].gather_mask(
                                prev_metadata[lane], graph, None
                            ),
                            dtype=bool,
                        )
                    success_rate = float(updatable.mean()) if n else 1.0
                (
                    filter_result, filter_name,
                    compute_us, launch_us, filter_us, barrier_us,
                ) = self._finish_iteration(
                    algorithm=algorithm,
                    classified=classified,
                    classifier=classifier,
                    direction=direction,
                    sortedness=sortedness[stream_key],
                    expansion=expansion,
                    active_mask=group_active,
                    frontier=group_frontier,
                    jit=jit_stream,
                    standalone_filter=standalone_filter,
                    iteration=iteration,
                    barrier=barrier,
                    success_rate=success_rate,
                    extra_lane_pairs=max(0, lane_pairs - expansion.active_edges),
                )
                sortedness[stream_key] = (
                    filter_result.sortedness if filter_result.worklist.size
                    else 1.0
                )

                total_us += compute_us + launch_us + filter_us + barrier_us
                records.append(
                    IterationRecord(
                        iteration=iteration,
                        direction=direction.value,
                        frontier_vertices=int(group_frontier.size),
                        frontier_edges=int(frontier_edges),
                        filter_used=filter_name,
                        filter_overflowed=filter_result.overflowed,
                        compute_us=compute_us,
                        filter_us=filter_us,
                        barrier_us=barrier_us,
                        launch_us=launch_us,
                        active_edges=int(expansion.active_edges),
                        lane_edge_pairs=int(lane_pairs),
                        active_lanes=len(group_lanes),
                    )
                )
                if sanitizer is not None:
                    sanitizer.observe_record(records[-1])
                group_directions.append(direction.value)
                group_filters.append(filter_name)

            filter_trace.append("+".join(group_filters))
            direction_trace.append("+".join(group_directions))
            if sanitizer is not None:
                sanitizer.end_superstep(iteration, metadata)

        pre_armed: List[int] = []
        for manager in (jit_main, jit_side, *retired_side_jits):
            if manager is not None:
                pre_armed.extend(manager.pre_armed_iterations())
        values = np.stack(
            [clones[k].vertex_value(metadata[k]) for k in range(num_lanes)]
        )
        extra = {
            extra_keys.FUSION: cfg.fusion.value,
            extra_keys.FILTER_MODE: cfg.filter_mode.value,
            extra_keys.DIRECTION_SWITCHES: selector.switches(),
            extra_keys.BREAKDOWN: device.profiler.breakdown(),
            extra_keys.JIT_PRE_ARMED_ITERATIONS: sorted(set(pre_armed)),
            # Amortization bookkeeping: edges the union walks touched vs
            # the (edge, lane) pairs a serial execution would have
            # walked, plus the gather share (the quantity lane-aware
            # splitting shrinks on road-style graphs).
            extra_keys.UNION_EDGES_WALKED: sum(
                r.frontier_edges for r in records
            ),
            extra_keys.LANE_EDGE_PAIRS: sum(
                r.lane_edge_pairs for r in records
            ),
            extra_keys.PULL_EDGES_SCANNED: sum(
                r.frontier_edges for r in records
                if r.direction == Direction.PULL.value
            ),
            extra_keys.SPLIT_ITERATIONS: split_iterations,
            extra_keys.LANE_SPLITS: len(split_iterations),
            extra_keys.KERNEL_BACKEND: cfg.kernel_backend,
            extra_keys.KERNEL_EDGES_WALKED: int(self._kernel_edges_walked),
        }
        if sanitizer is not None:
            sanitizer.validate_extra(extra)
            extra[extra_keys.SANITIZER] = sanitizer.report()
        return BatchRunResult(
            system=self.SYSTEM_NAME,
            algorithm=algorithm.name,
            graph=graph.name,
            sources=sources,
            metadata=metadata,
            values=values,
            elapsed_us=total_us,
            iterations=iteration,
            lane_iterations=lane_iterations,
            device=device.spec.name,
            kernel_launches=device.profiler.launch_count(),
            filter_trace=filter_trace,
            direction_trace=direction_trace,
            iteration_records=records,
            extra=extra,
        )

    # ------------------------------------------------------------------
    # Shared iteration tail (task management + cost accounting)
    # ------------------------------------------------------------------
    def _finish_iteration(
        self,
        *,
        algorithm: ACCAlgorithm,
        classified: ClassifiedFrontier,
        classifier: WorklistClassifier,
        direction: Direction,
        sortedness: float,
        expansion: _ExpansionResult,
        active_mask: np.ndarray,
        frontier: np.ndarray,
        jit: Optional[JITTaskManager],
        standalone_filter,
        iteration: int,
        barrier: Optional[SoftwareGlobalBarrier],
        success_rate: float = 1.0,
        extra_lane_pairs: int = 0,
        device: Optional[GPUDevice] = None,
        fusion_plan: Optional[FusionPlan] = None,
    ) -> Tuple[FilterResult, str, float, float, float, float]:
        """Task management + cost accounting shared by both loops.

        ``frontier`` is the executed push worklist (the active frontier in
        a single run, the lane union in a batch) whose out-degrees bound a
        scatter worker's recordings; ``active_mask``/``expansion`` describe
        what the iteration updated. Returns ``(filter_result, filter_name,
        compute_us, launch_us, filter_us, barrier_us)``. Keeping this tail
        in one place guarantees batched iterations are charged and traced
        exactly like single-source iterations over the union worklist.
        """
        cfg = self.config
        graph = self.graph
        device = device if device is not None else self.device

        # The online/batch/atomic filters record destinations that just
        # became active, as observed by the worker that updated them.
        recorded = active_mask[expansion.recorded_destinations]
        # Only the JIT controller reads the static overflow bound; keep
        # the standalone-filter ablations free of the extra degree scan.
        max_producer_records = 0
        if jit is not None:
            if direction is Direction.PULL:
                # A gather worker records only its own destination.
                max_producer_records = 1 if expansion.num_workers else 0
            else:
                degrees = self.classifier.degrees_of(frontier)
                max_producer_records = int(degrees.max()) if degrees.size else 0
        ctx = FilterContext(
            num_vertices=graph.num_vertices,
            updated_destinations=expansion.recorded_destinations[recorded],
            producer_thread=expansion.recorded_producers[recorded],
            active_mask=active_mask,
            frontier_edges=expansion.edges_expanded,
            num_worker_threads=max(1, expansion.num_workers),
            max_producer_records=max_producer_records,
            success_rate=success_rate,
        )
        if jit is not None:
            filter_result = jit.build(ctx, iteration, direction=direction)
            filter_name = jit.decisions[-1].filter_used
        else:
            filter_result = standalone_filter.build(ctx)
            filter_name = standalone_filter.name
            if filter_result.overflowed and cfg.filter_mode == FilterMode.ONLINE:
                raise FilterOverflowError(
                    f"iteration {iteration}: thread bin exceeded "
                    f"{cfg.overflow_threshold} entries"
                )

        # Batch-filter style approaches need the active edge list resident;
        # its size scales with the modeled graph like everything else.
        transient_alloc = None
        if filter_result.extra_memory_bytes:
            transient_alloc = device.malloc(
                int(filter_result.extra_memory_bytes * graph.modeled_edge_scale()),
                label="active_edge_list",
            )

        atomic_profile = None
        if cfg.atomic_combine:
            atomic_profile = profile_atomic_updates(expansion.update_destinations)
        compute_us, launch_us, task_kernel = self._charge_compute(
            classified, classifier, direction, sortedness, algorithm,
            atomic_profile=atomic_profile,
            active_edge_fraction=(
                expansion.active_edges / expansion.edges_expanded
                if expansion.edges_expanded else 1.0
            ),
            extra_lane_pairs=extra_lane_pairs,
            device=device,
            fusion_plan=fusion_plan,
        )
        filter_us = self._charge_filter(
            filter_result, direction, task_kernel, device=device
        )
        barrier_us = self._charge_barrier(barrier)

        if transient_alloc is not None:
            device.free(transient_alloc)
        return (
            filter_result, filter_name,
            compute_us, launch_us, filter_us, barrier_us,
        )

    def _offer_success_rate(
        self, algorithm: ACCAlgorithm, metadata: np.ndarray
    ) -> float:
        """Estimated share of scatter offers that can still change a vertex.

        A scatter worker records an entry only when its offer *changes* the
        destination, so the pre-arm bound (max frontier out-degree) is
        pessimistic on mostly-settled graphs. The algorithm's frontier-free
        ``gather_mask`` marks exactly the vertices that can still receive a
        valid update (the unvisited share for BFS, the surviving core for
        k-Core); its population share over the pre-iteration metadata is
        the global estimate of a hub's per-neighbour success probability.
        The estimate assumes the hub's neighbourhood is not systematically
        less settled than the rest of the graph - if it ever is, the
        generic overflow signal still corrects the filter choice within
        the same iteration, at the cost of the incomplete online pass the
        pre-arm exists to skip.
        """
        if metadata.shape[0] == 0:
            return 1.0
        mask = np.asarray(
            algorithm.gather_mask(metadata, self.graph, None), dtype=bool
        )
        return float(mask.mean())

    # ------------------------------------------------------------------
    # Functional expansion (Compute + Combine + apply)
    # ------------------------------------------------------------------
    def _gather_candidates(
        self, algorithm: ACCAlgorithm, metadata: np.ndarray, frontier: np.ndarray
    ) -> np.ndarray:
        """Destinations a pull iteration gathers at.

        The algorithm's ``gather_mask`` prunes destinations that provably
        cannot receive a valid update - including frontier-dependent bounds
        (only frontier sources contribute this iteration, so e.g. SSSP can
        prune destinations already at or below the frontier's best
        distance); vertices without in-edges have nothing to gather either
        way.
        """
        mask = np.asarray(
            algorithm.gather_mask(metadata, self.graph, frontier), dtype=bool
        )
        if self._in_degrees is None:
            self._in_degrees = self.graph.in_degrees()
        return np.nonzero(mask & (self._in_degrees > 0))[0].astype(np.int64)

    def _expand_and_apply(
        self,
        algorithm: ACCAlgorithm,
        metadata: np.ndarray,
        frontier: np.ndarray,
        direction: Direction,
        *,
        candidates: Optional[np.ndarray] = None,
        frontier_out_edges: int = 0,
    ) -> _ExpansionResult:
        if direction is Direction.PULL:
            if candidates is None:
                candidates = self._gather_candidates(algorithm, metadata, frontier)
            return self._expand_pull(
                algorithm, metadata, frontier, candidates, frontier_out_edges
            )
        return self._expand_push(algorithm, metadata, frontier)

    @staticmethod
    def _walk_edges(csr, worklist: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
        """Vectorized CSR walk shared by both directions.

        For every vertex in ``worklist``, produces the global edge indices
        of its adjacency row in ``csr`` plus the owning worklist slot per
        edge; returns ``(slot, edge_idx, total_edges)``. Push walks the
        out-CSR with the frontier, pull walks the in-CSR with the gather
        candidates - one implementation so the two cannot drift apart.
        """
        offsets = csr.offsets.astype(np.int64)
        counts = np.diff(offsets)[worklist]
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, 0
        starts = offsets[worklist]
        cum = np.zeros(worklist.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=cum[1:])
        edge_idx = np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)
        slot = np.repeat(np.arange(worklist.size, dtype=np.int64), counts)
        return slot, edge_idx, total

    def _walk(self, csr, worklist: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
        """Backend-dispatched CSR walk; every expansion goes through here.

        The numpy backend routes through the class-level :meth:`_walk_edges`
        staticmethod (the historical entry point tests may patch); the
        python backend runs the loop reference from
        :mod:`repro.core.kernels`. Either way the per-run
        ``kernel_edges_walked`` counter advances by the edges expanded.
        """
        if self.kernel.name == "numpy":
            slot, edge_idx, total = self._walk_edges(csr, worklist)
        else:
            slot, edge_idx, total = self.kernel.walk_edges(csr, worklist)
        self._kernel_edges_walked += int(total)
        return slot, edge_idx, total

    def _expand_push(
        self,
        algorithm: ACCAlgorithm,
        metadata: np.ndarray,
        frontier: np.ndarray,
    ) -> _ExpansionResult:
        """Scatter: expand every out-edge of every frontier vertex."""
        graph = self.graph
        csr = graph.out_csr
        num_workers = int(frontier.size)

        src_slot, edge_idx, total = self._walk(csr, frontier)
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return _ExpansionResult(empty, empty, empty, empty, num_workers, 0, 0)

        src = frontier[src_slot]
        dst = csr.targets[edge_idx].astype(np.int64)
        weights = csr.weights[edge_idx].astype(np.float64)

        updates = algorithm.compute_edges(
            metadata[src], weights, metadata[dst], src, dst, graph
        )
        updates = np.asarray(updates, dtype=np.float64)
        algorithm.on_frontier_expanded(frontier, metadata)
        valid = ~np.isnan(updates)
        if not valid.all():
            src_slot = src_slot[valid]
            dst = dst[valid]
            updates = updates[valid]

        if updates.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return _ExpansionResult(
                empty, empty, empty, empty, num_workers, total, total
            )  # nothing changed

        changed_vertices = self._combine_and_apply(algorithm, metadata, updates, dst)
        return _ExpansionResult(
            touched=changed_vertices,
            update_destinations=dst,
            recorded_destinations=dst,
            recorded_producers=src_slot,
            num_workers=num_workers,
            edges_expanded=total,
            active_edges=total,
        )

    def _expand_pull(
        self,
        algorithm: ACCAlgorithm,
        metadata: np.ndarray,
        frontier: np.ndarray,
        candidates: np.ndarray,
        frontier_out_edges: int,
    ) -> _ExpansionResult:
        """Gather: every candidate destination walks its in-edges and keeps
        the contributions whose source lies in the frontier.

        The kept edge set is exactly the frontier's out-edge set (possibly
        minus edges ``gather_mask`` proved updateless), the per-edge operands
        match the push path, and the in-CSR's (destination, source) sort
        order reproduces the push path's per-destination combine order - so
        push and pull produce bit-identical vertex values.
        """
        graph = self.graph
        n = graph.num_vertices
        csr = graph.in_csr
        empty = np.zeros(0, dtype=np.int64)

        dst_slot, edge_idx, total = self._walk(csr, candidates)
        if total == 0:
            # Fire the frontier hook under the same condition as push mode:
            # the frontier had out-edges to consume.
            if frontier_out_edges > 0:
                algorithm.on_frontier_expanded(frontier, metadata)
            return _ExpansionResult(empty, empty, empty, empty, 0, 0, 0)

        dst = candidates[dst_slot]
        src = csr.targets[edge_idx].astype(np.int64)

        # Each gather consults the frontier bitmap: only in-edges whose
        # source is active contribute this iteration.
        in_frontier = self.kernel.membership_mask(frontier, n)
        keep = in_frontier[src]
        if not keep.all():
            dst_slot = dst_slot[keep]
            dst = dst[keep]
            src = src[keep]
            edge_idx = edge_idx[keep]
        if src.size == 0:
            if frontier_out_edges > 0:
                algorithm.on_frontier_expanded(frontier, metadata)
            return _ExpansionResult(empty, empty, empty, empty, 0, total, 0)

        active = int(src.size)
        weights = csr.weights[edge_idx].astype(np.float64)
        updates = algorithm.gather_edges(
            metadata[src], weights, metadata[dst], src, dst, graph
        )
        updates = np.asarray(updates, dtype=np.float64)
        algorithm.on_frontier_expanded(frontier, metadata)
        valid = ~np.isnan(updates)
        if not valid.all():
            dst_slot = dst_slot[valid]
            dst = dst[valid]
            updates = updates[valid]

        if updates.size == 0:
            return _ExpansionResult(empty, empty, empty, empty, 0, total, active)

        changed_vertices = self._combine_and_apply(algorithm, metadata, updates, dst)
        # A gather worker learns only about its own vertex: it records the
        # destination once, post-combine, not once per incoming edge. Workers
        # whose gather produced nothing own empty bins and contribute no
        # recording or concatenation work, so the filter context only sees
        # the receivers (with compacted worker slots).
        receiver_slots = np.unique(dst_slot)
        receivers = candidates[receiver_slots]
        return _ExpansionResult(
            touched=changed_vertices,
            update_destinations=dst,
            recorded_destinations=receivers,
            recorded_producers=np.arange(receivers.size, dtype=np.int64),
            num_workers=int(receivers.size),
            edges_expanded=total,
            active_edges=active,
        )

    def _expand_batch_push(
        self,
        algorithm: ACCAlgorithm,
        clones: List[ACCAlgorithm],
        metadata: np.ndarray,
        view: BatchedFrontier,
        lanes: List[int],
        *,
        per_lane_compute: bool = False,
    ) -> Tuple[_ExpansionResult, List[np.ndarray], int]:
        """Batched scatter: walk ``view``'s union out-edges once, expand
        each edge into the lanes whose frontier contains its source.

        ``view`` is the full :class:`BatchedFrontier` for a single-group
        iteration or a :meth:`~BatchedFrontier.sub_batch` view for a split
        one; ``lanes`` are the global lane ids it serves. Returns the
        group-level expansion (what that sub-batch's task-management pass
        and the cost model see), the per-lane recorded destinations (what
        each lane's next frontier derives from), and the total
        ``(edge, lane)`` pair count. Pairs are assembled lane-major with
        each lane's edges in union-walk order, which is exactly the edge
        order of that lane's independent single-source run - so the
        per-destination combine order, and therefore the metadata, is
        bit-identical per lane under every split schedule.
        """
        graph = self.graph
        csr = graph.out_csr
        union = view.vertices
        num_workers = int(union.size)
        empty = np.zeros(0, dtype=np.int64)
        lane_recorded: List[np.ndarray] = [empty] * len(clones)
        local_of = (
            {lane: lane for lane in lanes} if view.lane_ids is None
            else {g: i for i, g in enumerate(view.lane_ids)}
        )

        slot, edge_idx, total = self._walk(csr, union)
        if total == 0:
            return (
                _ExpansionResult(empty, empty, empty, empty, num_workers, 0, 0),
                lane_recorded,
                0,
            )
        src = union[slot]
        dst = csr.targets[edge_idx].astype(np.int64)
        weights = csr.weights[edge_idx].astype(np.float64)

        # Every union vertex comes from some lane's frontier, so each
        # walked edge belongs to at least one lane: pair_parts is non-empty
        # whenever total > 0.
        pair_parts: List[Tuple[int, np.ndarray]] = []
        for lane in lanes:
            lane_edges = np.nonzero(view.lane_mask(local_of[lane])[slot])[0]
            if lane_edges.size:
                pair_parts.append((lane, lane_edges))
        pair_src = np.concatenate([src[idx] for _, idx in pair_parts])
        pair_dst = np.concatenate([dst[idx] for _, idx in pair_parts])
        pair_weights = np.concatenate([weights[idx] for _, idx in pair_parts])
        pair_lane = np.concatenate(
            [np.full(idx.size, lane, dtype=np.int64) for lane, idx in pair_parts]
        )
        lane_pairs = int(pair_src.size)

        if per_lane_compute:
            # Heterogeneous lane parameters: evaluate Compute through each
            # lane's own copy. Concatenation order is lane-major like the
            # flattened call, so homogeneous parameters give bit-identical
            # updates either way.
            updates = np.concatenate([
                np.asarray(
                    clones[lane].scatter_edges(
                        metadata[lane, src[idx]], weights[idx],
                        metadata[lane, dst[idx]], src[idx], dst[idx], graph,
                        lanes=np.full(idx.size, lane, dtype=np.int64),
                    ),
                    dtype=np.float64,
                )
                for lane, idx in pair_parts
            ])
        else:
            updates = algorithm.scatter_edges(
                metadata[pair_lane, pair_src], pair_weights,
                metadata[pair_lane, pair_dst], pair_src, pair_dst, graph,
                lanes=pair_lane,
            )
            updates = np.asarray(updates, dtype=np.float64)

        # Per-lane tail: hook, NaN filter, Combine + apply on the lane's own
        # metadata row - the same sequence as _expand_push, per lane.
        valid_any = np.zeros(total, dtype=bool)
        offset = 0
        for lane, lane_edges in pair_parts:
            begin, offset = offset, offset + lane_edges.size
            clones[lane].on_frontier_expanded(
                view.lane_vertices(local_of[lane]), metadata[lane]
            )
            lane_updates = updates[begin:offset]
            valid = ~np.isnan(lane_updates)
            valid_any[lane_edges[valid]] = True
            if valid.any():
                lane_dst = pair_dst[begin:offset][valid]
                self._combine_and_apply(
                    clones[lane], metadata[lane], lane_updates[valid], lane_dst
                )
                lane_recorded[lane] = lane_dst

        union_recorded = np.nonzero(valid_any)[0]
        return (
            _ExpansionResult(
                touched=np.unique(dst[union_recorded]),
                update_destinations=dst[union_recorded],
                recorded_destinations=dst[union_recorded],
                recorded_producers=slot[union_recorded],
                num_workers=num_workers,
                edges_expanded=total,
                active_edges=total,
            ),
            lane_recorded,
            lane_pairs,
        )

    def _expand_batch_pull(
        self,
        algorithm: ACCAlgorithm,
        clones: List[ACCAlgorithm],
        metadata: np.ndarray,
        lane_frontiers: List[np.ndarray],
        lanes: List[int],
        lane_candidates: Dict[int, np.ndarray],
        union_candidates: np.ndarray,
        lane_out_edges: Dict[int, int],
        *,
        per_lane_compute: bool = False,
    ) -> Tuple[_ExpansionResult, List[np.ndarray], int]:
        """Batched gather: walk the in-edges of the group's union gather
        worklist once; a lane keeps an in-edge when the destination is in
        its own gather worklist *and* the source is in its own frontier.

        ``lanes`` are the (global) lanes of this sub-batch - the whole
        batch for a single-group iteration, the pull-leaning group of a
        split one. Per lane the kept edge set and order match the lane's
        independent forced-pull iteration (candidates sorted, in-CSR row
        order), which in turn is bit-identical to its push expansion - the
        engine's push/pull equivalence carried through the lane axis,
        under every split schedule.
        """
        graph = self.graph
        n = graph.num_vertices
        csr = graph.in_csr
        empty = np.zeros(0, dtype=np.int64)
        num_lanes = len(clones)
        lane_recorded: List[np.ndarray] = [empty] * num_lanes

        def fire_hooks() -> None:
            # Same condition as the single-run early returns: the lane's
            # frontier had out-edges to consume, gathered or not.
            for lane in lanes:
                if lane_out_edges.get(lane, 0) > 0:
                    clones[lane].on_frontier_expanded(
                        lane_frontiers[lane], metadata[lane]
                    )

        dst_slot, edge_idx, total = self._walk(csr, union_candidates)
        if total == 0:
            fire_hooks()
            return (
                _ExpansionResult(empty, empty, empty, empty, 0, 0, 0),
                lane_recorded,
                0,
            )
        src = csr.targets[edge_idx].astype(np.int64)
        dst = union_candidates[dst_slot]

        kept_any = np.zeros(total, dtype=bool)
        pair_parts: List[Tuple[int, np.ndarray]] = []
        for lane in lanes:
            candidates = lane_candidates[lane]
            if candidates.size == 0 or lane_frontiers[lane].size == 0:
                continue
            candidate_rows = np.zeros(union_candidates.size, dtype=bool)
            candidate_rows[
                self.kernel.rows_in_sorted(union_candidates, candidates)
            ] = True
            in_frontier = self.kernel.membership_mask(lane_frontiers[lane], n)
            keep = candidate_rows[dst_slot] & in_frontier[src]
            lane_edges = np.nonzero(keep)[0]
            if lane_edges.size:
                kept_any[lane_edges] = True
                pair_parts.append((lane, lane_edges))
        union_active = int(np.count_nonzero(kept_any))
        if not pair_parts:
            fire_hooks()
            return (
                _ExpansionResult(empty, empty, empty, empty, 0, total, 0),
                lane_recorded,
                0,
            )

        pair_src = np.concatenate([src[idx] for _, idx in pair_parts])
        pair_dst = np.concatenate([dst[idx] for _, idx in pair_parts])
        pair_weights = np.concatenate(
            [csr.weights[edge_idx[idx]].astype(np.float64) for _, idx in pair_parts]
        )
        pair_lane = np.concatenate(
            [np.full(idx.size, lane, dtype=np.int64) for lane, idx in pair_parts]
        )
        lane_pairs = int(pair_src.size)

        if per_lane_compute:
            # Heterogeneous lane parameters: evaluate Compute through each
            # lane's own copy (lane-major order matches the flattened call).
            updates = np.concatenate([
                np.asarray(
                    clones[lane].gather_edges(
                        metadata[lane, src[idx]],
                        csr.weights[edge_idx[idx]].astype(np.float64),
                        metadata[lane, dst[idx]], src[idx], dst[idx], graph,
                        lanes=np.full(idx.size, lane, dtype=np.int64),
                    ),
                    dtype=np.float64,
                )
                for lane, idx in pair_parts
            ])
        else:
            updates = algorithm.gather_edges(
                metadata[pair_lane, pair_src], pair_weights,
                metadata[pair_lane, pair_dst], pair_src, pair_dst, graph,
                lanes=pair_lane,
            )
            updates = np.asarray(updates, dtype=np.float64)
        fire_hooks()

        valid_any = np.zeros(total, dtype=bool)
        offset = 0
        for lane, lane_edges in pair_parts:
            begin, offset = offset, offset + lane_edges.size
            lane_updates = updates[begin:offset]
            valid = ~np.isnan(lane_updates)
            valid_any[lane_edges[valid]] = True
            if valid.any():
                lane_dst = pair_dst[begin:offset][valid]
                self._combine_and_apply(
                    clones[lane], metadata[lane], lane_updates[valid], lane_dst
                )
                # A gather worker records its own destination once.
                lane_recorded[lane] = np.unique(lane_dst)

        receivers = np.unique(dst[valid_any])
        return (
            _ExpansionResult(
                touched=receivers,
                update_destinations=dst[valid_any],
                recorded_destinations=receivers,
                recorded_producers=np.arange(receivers.size, dtype=np.int64),
                num_workers=int(receivers.size),
                edges_expanded=total,
                active_edges=union_active,
            ),
            lane_recorded,
            lane_pairs,
        )

    def _combine_and_apply(
        self,
        algorithm: ACCAlgorithm,
        metadata: np.ndarray,
        updates: np.ndarray,
        dst: np.ndarray,
    ) -> np.ndarray:
        """Shared Combine + apply tail; returns the changed vertices."""
        combined = algorithm.combine_op.segment_reduce(
            updates, dst, self.graph.num_vertices, backend=self.kernel
        )
        touched = np.unique(dst)
        old_values = metadata[touched]
        new_values = algorithm.apply(old_values, combined[touched], touched)
        changed = new_values != old_values
        changed_vertices = touched[changed]
        metadata[changed_vertices] = new_values[changed]
        return changed_vertices

    # ------------------------------------------------------------------
    # Cost accounting helpers
    # ------------------------------------------------------------------
    def _make_barrier(
        self,
        device: Optional[GPUDevice] = None,
        fusion_plan: Optional[FusionPlan] = None,
    ) -> Optional[SoftwareGlobalBarrier]:
        if self.config.fusion == FusionStrategy.NONE:
            return None
        device = device if device is not None else self.device
        fusion_plan = fusion_plan if fusion_plan is not None else self.fusion_plan
        kernel_key = (
            "fused_all" if self.config.fusion == FusionStrategy.ALL else "fused_push"
        )
        kernel = fusion_plan.kernel(kernel_key)
        return SoftwareGlobalBarrier(device.spec, kernel)

    def _stage_work(
        self,
        num_vertices: int,
        num_edges: int,
        degrees: np.ndarray,
        stage: str,
        direction: Direction,
        sortedness: float,
        algorithm: ACCAlgorithm,
        active_fraction: float = 1.0,
    ) -> WorkEstimate:
        """Work estimate for one compute stage (thread / warp / cta kernel).

        ``active_fraction`` is the share of this iteration's edges whose
        source lies in the frontier: a gather scans every candidate in-edge
        (coalesced adjacency reads) but checks the frontier bitmap before
        paying the scattered source-metadata read and the Compute evaluation,
        so only the active share costs the full per-edge work.
        """
        if num_vertices == 0:
            return WorkEstimate()

        model = self.config.traffic_model
        effective_edges = float(num_edges)
        if (
            direction is Direction.PULL
            and algorithm.combine_kind is CombineKind.VOTING
        ):
            # Voting combines terminate a vertex's gather as soon as any
            # update arrives (collaborative early termination), so a pull
            # iteration touches only part of the candidate edges.
            effective_edges *= model.voting_pull_scan_fraction

        if direction is Direction.PUSH:
            traffic = gmem.frontier_expansion_traffic(
                num_vertices,
                int(effective_edges),
                sortedness=sortedness,
                weighted=algorithm.uses_weights,
            )
            compute_ops = (
                effective_edges * model.push_edge_ops
                + num_vertices * model.vertex_ops
            )
        else:
            active_edges = effective_edges * min(1.0, max(0.0, active_fraction))
            traffic = gmem.pull_expansion_traffic(
                num_vertices,
                int(effective_edges),
                weighted=algorithm.uses_weights,
                active_edges=int(active_edges),
            )
            # One bitmap test per scanned in-edge; the full Compute only for
            # contributing (frontier-sourced) edges.
            compute_ops = (
                effective_edges * model.pull_scan_ops
                + active_edges * model.pull_active_edge_ops
                + num_vertices * model.vertex_ops
            )

        if stage == "thread":
            divergence = divergence_fraction(degrees)
            primitives = 0.0
        elif stage == "warp":
            divergence = 0.05
            primitives = num_vertices * reduction_primitive_ops(32) + effective_edges / 32.0
        else:  # cta
            divergence = 0.02
            primitives = num_vertices * reduction_primitive_ops(256) + effective_edges / 32.0

        return WorkEstimate(
            coalesced_bytes=traffic.coalesced_bytes,
            scattered_transactions=traffic.scattered_transactions,
            compute_ops=compute_ops,
            warp_primitive_ops=primitives,
            divergence_fraction=min(1.0, divergence),
        )

    def _charge_compute(
        self,
        classified: ClassifiedFrontier,
        classifier: WorklistClassifier,
        direction: Direction,
        sortedness: float,
        algorithm: ACCAlgorithm,
        *,
        atomic_profile=None,
        active_edge_fraction: float = 1.0,
        extra_lane_pairs: int = 0,
        device: Optional[GPUDevice] = None,
        fusion_plan: Optional[FusionPlan] = None,
    ) -> Tuple[float, float, Tuple[Kernel, bool]]:
        """Charge the three compute kernels.

        Returns ``(busy_us, launch_us, task_kernel)`` where ``task_kernel``
        is the ``(kernel, fused)`` slot the same phase reserves for task
        management; the caller hands it to :meth:`_charge_filter` so the
        filter launch shares the phase's fusion state without any
        cross-iteration instance state.

        ``extra_lane_pairs`` is the batched path's lane-axis work: the
        ``(edge, lane)`` Compute evaluations beyond the one-per-union-edge
        pass the three stages already price. Each extra pair pays exactly
        what the single-run model charges an edge beyond its CSR walk: the
        per-edge compute constant plus one scattered metadata access (the
        lane's source/destination metadata read; the ACC combine stages
        updates in shared memory, which is never charged as scattered).
        The adjacency, offset and worklist traffic is *not* re-paid - that
        is what ``run_batch`` amortizes across lanes.
        """
        device = device if device is not None else self.device
        plan = fusion_plan if fusion_plan is not None else self.fusion_plan
        phase = plan.phase_kernels(direction)
        kernels = list(phase.launch_kernels) + list(phase.continuation_kernels)
        fused_flags = [False] * len(phase.launch_kernels) + [True] * len(
            phase.continuation_kernels
        )

        deg = classifier.degrees_of
        stage_specs = [
            ("thread", classified.small, classified.sizes.small_edges),
            ("warp", classified.medium, classified.sizes.medium_edges),
            ("cta", classified.large, classified.sizes.large_edges),
        ]
        total_edges = max(1, classified.total_edges)

        busy_us = 0.0
        launch_us = 0.0
        for i, (stage, vertices, edges) in enumerate(stage_specs):
            kernel = kernels[i]
            work = self._stage_work(
                int(vertices.size),
                int(edges),
                deg(vertices) if vertices.size else np.zeros(0),
                stage,
                direction,
                sortedness,
                algorithm,
                active_fraction=active_edge_fraction,
            )
            if atomic_profile is not None and atomic_profile.num_ops:
                # Gunrock-style pricing: updates are applied with atomics on
                # the destination (attributed proportionally to this stage's
                # edge share) and the shared-memory staging reductions of the
                # ACC combine are dropped.
                share = edges / total_edges
                work = WorkEstimate(
                    coalesced_bytes=work.coalesced_bytes,
                    scattered_transactions=work.scattered_transactions,
                    compute_ops=work.compute_ops,
                    atomic_ops=atomic_profile.num_ops * share,
                    atomic_contention=atomic_profile.contention,
                    warp_primitive_ops=0.0,
                    divergence_fraction=work.divergence_fraction,
                )
            threads_needed = max(1, int(vertices.size)) * {
                "thread": 1, "warp": 32, "cta": 256
            }[stage]
            num_ctas = -(-threads_needed // kernel.threads_per_cta)
            result = device.launch(
                KernelLaunch(
                    kernel=kernel,
                    work=work,
                    num_ctas=num_ctas if vertices.size else 1,
                    fused_continuation=fused_flags[i],
                )
            )
            busy_us += result.busy_us
            launch_us += result.launch_overhead_us

        if extra_lane_pairs > 0:
            model = self.config.traffic_model
            per_pair_ops = (
                model.push_edge_ops if direction is Direction.PUSH
                else model.pull_active_edge_ops
            )
            lane_kernel = kernels[2]
            extra_work = WorkEstimate(
                scattered_transactions=gmem.metadata_scatter_transactions(
                    extra_lane_pairs
                ),
                compute_ops=float(extra_lane_pairs) * per_pair_ops,
            )
            result = device.launch(
                KernelLaunch(
                    kernel=lane_kernel,
                    work=extra_work,
                    num_ctas=max(
                        1, -(-extra_lane_pairs // lane_kernel.threads_per_cta)
                    ),
                    # The lane axis rides the same kernel invocation as the
                    # union pass (each thread loops over its edge's lane
                    # bits), so it never pays an extra launch.
                    fused_continuation=True,
                )
            )
            busy_us += result.busy_us
            launch_us += result.launch_overhead_us
        return busy_us, launch_us, (kernels[3], fused_flags[3])

    def _charge_filter(
        self,
        filter_result: FilterResult,
        direction: Direction,
        task_kernel: Tuple[Kernel, bool],
        device: Optional[GPUDevice] = None,
    ) -> float:
        kernel, fused = task_kernel
        device = device if device is not None else self.device
        result = device.launch(
            KernelLaunch(
                kernel=kernel,
                work=filter_result.work,
                fused_continuation=fused,
            )
        )
        return result.total_us

    def _charge_barrier(self, barrier: Optional[SoftwareGlobalBarrier]) -> float:
        if barrier is None:
            return 0.0
        # Two device-wide synchronizations per iteration: after compute and
        # after task management (Figure 4(b), lines 15 and 21).
        return barrier.synchronize() + barrier.synchronize()
