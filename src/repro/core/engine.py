"""The SIMD-X execution engine (Figure 4(b), Sections 3-5 combined).

The engine runs an :class:`~repro.core.acc.ACCAlgorithm` as a BSP loop. Each
iteration:

1. classifies the active worklist into small/medium/large lists by degree
   (Section 4 step I) so the Thread / Warp / CTA kernels each receive
   similarly-sized tasks (step II);
2. functionally evaluates ``Compute`` over the expanded edges and ``Combine``
   per destination with NumPy - the atomic-free combine of the ACC model;
3. applies the combined updates, derives the new active mask, and asks the
   configured filter (JIT / online / ballot / batch / strided / atomic) for
   the next worklist;
4. charges the simulated device for the compute kernels, the task-management
   kernel, the software global barrier (for fused strategies) and any kernel
   launches the fusion strategy requires;
5. switches between push and pull according to the direction selector, which
   in turn determines when the push-pull fusion strategy must relaunch.

The functional result (distances, ranks, core flags) is identical across
filter modes, fusion strategies and devices; only the simulated time and the
recorded traces change. That separation mirrors the paper's own claim that
programming (ACC) is decoupled from processing (JIT + fusion).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.acc import ACCAlgorithm, CombineKind
from repro.core.direction import Direction, DirectionSelector
from repro.core.filters import (
    FilterContext,
    FilterMode,
    FilterOverflowError,
    FilterResult,
    make_filter,
)
from repro.core.frontier import (
    ClassifiedFrontier,
    WorklistClassifier,
    threads_for_frontier,
)
from repro.core.fusion import FusionPlan, FusionStrategy
from repro.core.jit import JITTaskManager
from repro.core.metrics import IterationRecord, RunResult
from repro.gpu import memory as gmem
from repro.gpu.atomics import profile_atomic_updates
from repro.gpu.barrier import SoftwareGlobalBarrier
from repro.gpu.device import DeviceOutOfMemory, GPUDevice, K40
from repro.gpu.kernel import Kernel, KernelLaunch, WorkEstimate
from repro.gpu.warp import divergence_fraction, reduction_primitive_ops


@dataclass
class EngineConfig:
    """Tunable knobs of the SIMD-X engine.

    The defaults correspond to the configuration the paper evaluates:
    JIT task management with a 64-entry overflow threshold, push-pull based
    kernel fusion, 128 threads per CTA and worklist separators at the warp
    and CTA sizes.
    """

    filter_mode: FilterMode = FilterMode.JIT
    fusion: FusionStrategy = FusionStrategy.PUSH_PULL
    overflow_threshold: int = 64
    small_medium_separator: int = 32
    medium_large_separator: int = 256
    threads_per_cta: int = 128
    to_pull_threshold: float = 0.05
    to_push_threshold: float = 0.01
    direction_auto: bool = True
    max_iterations: Optional[int] = None
    shadow_online: bool = True
    #: When True, the Combine step is priced as Gunrock prices it - direct
    #: atomic updates to vertex state instead of the ACC model's shared-memory
    #: staging - which is the ablation behind Figure 5. Functional results are
    #: unchanged; only the cost differs.
    atomic_combine: bool = False


@dataclass
class _ExpansionResult:
    """Functional outcome of expanding one frontier."""

    touched: np.ndarray          # unique destinations whose value changed
    update_destinations: np.ndarray   # destination of every valid update
    update_producers: np.ndarray      # frontier slot that produced each update
    edges_expanded: int


class SIMDXEngine:
    """Run ACC algorithms on a simulated GPU with SIMD-X's optimizations."""

    SYSTEM_NAME = "SIMD-X"

    def __init__(
        self,
        graph,
        device: Optional[GPUDevice] = None,
        config: Optional[EngineConfig] = None,
    ):
        self.graph = graph
        self.device = device if device is not None else GPUDevice(K40)
        self.config = config if config is not None else EngineConfig()
        self.classifier = WorklistClassifier(
            graph,
            small_medium_separator=self.config.small_medium_separator,
            medium_large_separator=self.config.medium_large_separator,
        )
        self.fusion_plan = FusionPlan(
            self.config.fusion, threads_per_cta=self.config.threads_per_cta
        )
        self._graph_alloc = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, algorithm: ACCAlgorithm, **params) -> RunResult:
        """Execute ``algorithm`` to convergence and return its result."""
        device = self.device
        device.profiler.reset()
        device.reset_memory()
        self.fusion_plan.reset()

        try:
            # Allocation sizes follow the modeled (paper-scale) graph so the
            # memory-feasibility behaviour of Table 4 is reproduced even
            # though the functional run uses the scaled-down analogue.
            self._graph_alloc = device.malloc(
                self.graph.modeled_csr_bytes(), label="csr_graph"
            )
            metadata_alloc = device.malloc(
                2 * self.graph.modeled_num_vertices * 8, label="metadata"
            )
            device.malloc(
                3 * self.graph.modeled_num_vertices * 4, label="worklists"
            )
        except DeviceOutOfMemory as exc:
            return RunResult.failure(
                self.SYSTEM_NAME, algorithm.name, self.graph.name, f"OOM: {exc}",
                device=device.spec.name,
            )

        try:
            result = self._run_loop(algorithm, **params)
        except DeviceOutOfMemory as exc:
            result = RunResult.failure(
                self.SYSTEM_NAME, algorithm.name, self.graph.name, f"OOM: {exc}",
                device=device.spec.name,
            )
        except FilterOverflowError as exc:
            result = RunResult.failure(
                self.SYSTEM_NAME, algorithm.name, self.graph.name,
                f"online filter overflow: {exc}", device=device.spec.name,
            )
        finally:
            device.reset_memory()
        return result

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _run_loop(self, algorithm: ACCAlgorithm, **params) -> RunResult:
        cfg = self.config
        graph = self.graph
        device = self.device
        n = graph.num_vertices

        state = algorithm.init(graph, **params)
        metadata = np.asarray(state.metadata, dtype=np.float64).copy()
        worklist_raw = np.asarray(state.frontier, dtype=np.int64)
        frontier = np.unique(worklist_raw)
        sortedness = 1.0

        jit: Optional[JITTaskManager] = None
        standalone_filter = None
        if cfg.filter_mode == FilterMode.JIT:
            jit = JITTaskManager(
                overflow_threshold=cfg.overflow_threshold,
                shadow_online=cfg.shadow_online,
            )
        else:
            standalone_filter = make_filter(
                cfg.filter_mode, online_capacity=cfg.overflow_threshold
            )

        selector = DirectionSelector(
            total_edges=graph.num_edges,
            to_pull_threshold=cfg.to_pull_threshold,
            to_push_threshold=cfg.to_push_threshold,
            start_direction=Direction.PULL if algorithm.starts_in_pull else Direction.PUSH,
        )

        barrier = self._make_barrier()

        max_iterations = cfg.max_iterations or algorithm.max_iterations
        records: List[IterationRecord] = []
        filter_trace: List[str] = []
        direction_trace: List[str] = []
        total_us = 0.0
        iteration = 0

        while frontier.size and iteration < max_iterations:
            iteration += 1
            prev_metadata = metadata.copy()

            classified = self.classifier.classify(frontier)
            frontier_edges = classified.total_edges
            if cfg.direction_auto:
                direction = selector.decide(frontier_edges)
            else:
                direction = selector.start_direction
                selector.history.append(direction)

            # ---------------- functional compute + combine + apply ------
            expansion = self._expand_and_apply(algorithm, metadata, frontier)

            # ---------------- next worklist (task management) -----------
            active_mask = algorithm.active_mask(metadata, prev_metadata)
            # The online/batch/atomic filters record destinations that just
            # became active, as observed by the thread that updated them.
            recorded = active_mask[expansion.update_destinations]
            ctx = FilterContext(
                num_vertices=n,
                updated_destinations=expansion.update_destinations[recorded],
                producer_thread=expansion.update_producers[recorded],
                active_mask=active_mask,
                frontier_edges=expansion.edges_expanded,
                num_worker_threads=max(1, int(frontier.size)),
            )
            if jit is not None:
                filter_result = jit.build(ctx, iteration)
                filter_name = jit.decisions[-1].filter_used
            else:
                filter_result = standalone_filter.build(ctx)
                filter_name = standalone_filter.name
                if filter_result.overflowed and cfg.filter_mode == FilterMode.ONLINE:
                    raise FilterOverflowError(
                        f"iteration {iteration}: thread bin exceeded "
                        f"{cfg.overflow_threshold} entries"
                    )

            # Batch-filter style approaches need the active edge list resident;
            # its size scales with the modeled graph like everything else.
            transient_alloc = None
            if filter_result.extra_memory_bytes:
                transient_alloc = device.malloc(
                    int(filter_result.extra_memory_bytes * graph.modeled_edge_scale()),
                    label="active_edge_list",
                )

            # ---------------- cost accounting ----------------------------
            atomic_profile = None
            if cfg.atomic_combine:
                atomic_profile = profile_atomic_updates(expansion.update_destinations)
            compute_us, launch_us = self._charge_compute(
                classified, direction, sortedness, algorithm,
                atomic_profile=atomic_profile,
            )
            filter_us = self._charge_filter(filter_result, direction)
            barrier_us = self._charge_barrier(barrier)

            if transient_alloc is not None:
                device.free(transient_alloc)

            iteration_us = compute_us + launch_us + filter_us + barrier_us
            total_us += iteration_us
            records.append(
                IterationRecord(
                    iteration=iteration,
                    direction=direction.value,
                    frontier_vertices=int(frontier.size),
                    frontier_edges=int(frontier_edges),
                    filter_used=filter_name,
                    filter_overflowed=filter_result.overflowed,
                    compute_us=compute_us,
                    filter_us=filter_us,
                    barrier_us=barrier_us,
                    launch_us=launch_us,
                )
            )
            filter_trace.append(filter_name)
            direction_trace.append(direction.value)

            # ---------------- advance to the next iteration --------------
            worklist_raw = filter_result.worklist
            sortedness = filter_result.sortedness if worklist_raw.size else 1.0
            frontier = np.unique(worklist_raw)
            if frontier.size == 0 and not algorithm.converged(
                metadata, prev_metadata, iteration
            ):
                # Algorithm wants more iterations despite an empty frontier
                # (not used by the shipped algorithms, but part of the API).
                frontier = np.nonzero(active_mask)[0].astype(np.int64)

        return RunResult(
            system=self.SYSTEM_NAME,
            algorithm=algorithm.name,
            graph=graph.name,
            values=algorithm.vertex_value(metadata),
            elapsed_us=total_us,
            iterations=iteration,
            device=device.spec.name,
            kernel_launches=device.profiler.launch_count(),
            filter_trace=filter_trace,
            direction_trace=direction_trace,
            iteration_records=records,
            extra={
                "fusion": cfg.fusion.value,
                "filter_mode": cfg.filter_mode.value,
                "direction_switches": selector.switches(),
                "breakdown": device.profiler.breakdown(),
            },
        )

    # ------------------------------------------------------------------
    # Functional expansion (Compute + Combine + apply)
    # ------------------------------------------------------------------
    def _expand_and_apply(
        self,
        algorithm: ACCAlgorithm,
        metadata: np.ndarray,
        frontier: np.ndarray,
    ) -> _ExpansionResult:
        graph = self.graph
        csr = graph.out_csr
        offsets = csr.offsets.astype(np.int64)
        degrees = np.diff(offsets)

        counts = degrees[frontier]
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return _ExpansionResult(empty, empty, empty, 0)

        starts = offsets[frontier]
        # Vectorized CSR gather: edge index array covering every out-edge of
        # every frontier vertex.
        cum = np.zeros(frontier.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=cum[1:])
        edge_idx = np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)

        src_slot = np.repeat(np.arange(frontier.size, dtype=np.int64), counts)
        src = frontier[src_slot]
        dst = csr.targets[edge_idx].astype(np.int64)
        weights = csr.weights[edge_idx].astype(np.float64)

        updates = algorithm.compute_edges(
            metadata[src], weights, metadata[dst], src, dst, graph
        )
        updates = np.asarray(updates, dtype=np.float64)
        algorithm.on_frontier_expanded(frontier, metadata)
        valid = ~np.isnan(updates)
        if not valid.all():
            src_slot = src_slot[valid]
            dst = dst[valid]
            updates = updates[valid]

        if updates.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return _ExpansionResult(empty, empty, empty, total)  # nothing changed

        combined = algorithm.combine_op.segment_reduce(
            updates, dst, graph.num_vertices
        )
        touched = np.unique(dst)
        old_values = metadata[touched]
        new_values = algorithm.apply(old_values, combined[touched], touched)
        changed = new_values != old_values
        changed_vertices = touched[changed]
        metadata[changed_vertices] = new_values[changed]

        return _ExpansionResult(
            touched=changed_vertices,
            update_destinations=dst,
            update_producers=src_slot,
            edges_expanded=total,
        )

    # ------------------------------------------------------------------
    # Cost accounting helpers
    # ------------------------------------------------------------------
    def _make_barrier(self) -> Optional[SoftwareGlobalBarrier]:
        if self.config.fusion == FusionStrategy.NONE:
            return None
        kernel_key = (
            "fused_all" if self.config.fusion == FusionStrategy.ALL else "fused_push"
        )
        kernel = self.fusion_plan.kernel(kernel_key)
        return SoftwareGlobalBarrier(self.device.spec, kernel)

    def _stage_work(
        self,
        num_vertices: int,
        num_edges: int,
        degrees: np.ndarray,
        stage: str,
        direction: Direction,
        sortedness: float,
        algorithm: ACCAlgorithm,
    ) -> WorkEstimate:
        """Work estimate for one compute stage (thread / warp / cta kernel)."""
        if num_vertices == 0:
            return WorkEstimate()

        effective_edges = float(num_edges)
        if (
            direction is Direction.PULL
            and algorithm.combine_kind is CombineKind.VOTING
        ):
            # Voting combines terminate a vertex's gather as soon as any
            # update arrives (collaborative early termination), so a pull
            # iteration touches roughly half of the candidate edges.
            effective_edges *= 0.5

        if direction is Direction.PUSH:
            traffic = gmem.frontier_expansion_traffic(
                num_vertices,
                int(effective_edges),
                sortedness=sortedness,
                weighted=algorithm.uses_weights,
            )
        else:
            traffic = gmem.pull_expansion_traffic(
                num_vertices,
                int(effective_edges),
                weighted=algorithm.uses_weights,
            )

        compute_ops = effective_edges * 4.0 + num_vertices * 2.0

        if stage == "thread":
            divergence = divergence_fraction(degrees)
            primitives = 0.0
        elif stage == "warp":
            divergence = 0.05
            primitives = num_vertices * reduction_primitive_ops(32) + effective_edges / 32.0
        else:  # cta
            divergence = 0.02
            primitives = num_vertices * reduction_primitive_ops(256) + effective_edges / 32.0

        return WorkEstimate(
            coalesced_bytes=traffic.coalesced_bytes,
            scattered_transactions=traffic.scattered_transactions,
            compute_ops=compute_ops,
            warp_primitive_ops=primitives,
            divergence_fraction=min(1.0, divergence),
        )

    def _charge_compute(
        self,
        classified: ClassifiedFrontier,
        direction: Direction,
        sortedness: float,
        algorithm: ACCAlgorithm,
        *,
        atomic_profile=None,
    ) -> Tuple[float, float]:
        """Charge the three compute kernels; returns (busy_us, launch_us)."""
        device = self.device
        plan = self.fusion_plan
        phase = plan.phase_kernels(direction)
        kernels = list(phase.launch_kernels) + list(phase.continuation_kernels)
        fused_flags = [False] * len(phase.launch_kernels) + [True] * len(
            phase.continuation_kernels
        )

        deg = self.classifier.degrees_of
        stage_specs = [
            ("thread", classified.small, classified.sizes.small_edges),
            ("warp", classified.medium, classified.sizes.medium_edges),
            ("cta", classified.large, classified.sizes.large_edges),
        ]
        total_edges = max(1, classified.total_edges)

        busy_us = 0.0
        launch_us = 0.0
        for i, (stage, vertices, edges) in enumerate(stage_specs):
            kernel = kernels[i]
            work = self._stage_work(
                int(vertices.size),
                int(edges),
                deg(vertices) if vertices.size else np.zeros(0),
                stage,
                direction,
                sortedness,
                algorithm,
            )
            if atomic_profile is not None and atomic_profile.num_ops:
                # Gunrock-style pricing: updates are applied with atomics on
                # the destination (attributed proportionally to this stage's
                # edge share) and the shared-memory staging reductions of the
                # ACC combine are dropped.
                share = edges / total_edges
                work = WorkEstimate(
                    coalesced_bytes=work.coalesced_bytes,
                    scattered_transactions=work.scattered_transactions,
                    compute_ops=work.compute_ops,
                    atomic_ops=atomic_profile.num_ops * share,
                    atomic_contention=atomic_profile.contention,
                    warp_primitive_ops=0.0,
                    divergence_fraction=work.divergence_fraction,
                )
            threads_needed = max(1, int(vertices.size)) * {
                "thread": 1, "warp": 32, "cta": 256
            }[stage]
            num_ctas = -(-threads_needed // kernel.threads_per_cta)
            result = device.launch(
                KernelLaunch(
                    kernel=kernel,
                    work=work,
                    num_ctas=num_ctas if vertices.size else 1,
                    fused_continuation=fused_flags[i],
                )
            )
            busy_us += result.busy_us
            launch_us += result.launch_overhead_us
        # Remember the task-management kernel slot for _charge_filter.
        self._pending_filter_kernel = (kernels[3], fused_flags[3])
        return busy_us, launch_us

    def _charge_filter(self, filter_result: FilterResult, direction: Direction) -> float:
        kernel, fused = getattr(
            self, "_pending_filter_kernel",
            (self.fusion_plan.kernel(
                "push_task_mgt" if direction is Direction.PUSH else "pull_task_mgt"
            ), False),
        )
        result = self.device.launch(
            KernelLaunch(
                kernel=kernel,
                work=filter_result.work,
                fused_continuation=fused,
            )
        )
        return result.total_us

    def _charge_barrier(self, barrier: Optional[SoftwareGlobalBarrier]) -> float:
        if barrier is None:
            return 0.0
        # Two device-wide synchronizations per iteration: after compute and
        # after task management (Figure 4(b), lines 15 and 21).
        return barrier.synchronize() + barrier.synchronize()
