"""Push / pull direction selection and the per-direction traffic model.

Graph algorithms on SIMD-X run each iteration either in *push* mode (expand
the out-edges of the active frontier and scatter updates to destinations) or
*pull* mode (every not-yet-converged destination gathers from its in-edges).
Section 5 observes that consecutive iterations cluster into push and pull
phases - BFS/SSSP push at the beginning and end and pull in the middle, when
the frontier covers most of the graph; k-Core pulls first and pushes at the
end; PageRank pulls until most ranks are stable and then pushes. Push-pull
kernel fusion exploits exactly this clustering, and the JIT task manager
(:mod:`repro.core.jit`) keys its filter choice off the same signal: a gather
worker records at most one destination, so pull phases always run the online
filter and the ballot filter is pre-armed only at the pull->push boundary.

Two pieces live here:

* :class:`DirectionSelector` reproduces the switching behaviour with the
  classic direction-optimizing heuristic (Beamer et al.): switch to pull
  when the frontier's outgoing edges exceed ``to_pull_threshold`` (default
  5%) of all edges, switch back to push when the share drops below
  ``to_push_threshold`` (default 1%). Algorithms that inherently start in
  pull mode set ``starts_in_pull`` on their ACC spec.
* :class:`TrafficModel` holds the calibrated per-edge / per-vertex compute
  constants the engine charges for each direction. A push iteration pays
  full per-edge work for every expanded out-edge; a pull iteration pays a
  cheap frontier-bitmap test per *scanned* in-edge and the full per-edge
  work only for the *active* (frontier-sourced) share. The shipped values
  are validated against measured per-phase timings by
  ``repro.bench.experiments.phase_timings`` and recorded in the generated
  EXPERIMENTS.md baseline.

For batched multi-source execution a third piece applies the same machinery
per query lane: :class:`BatchDirectionPolicy` keeps one
:class:`DirectionSelector` per lane, scores each lane's own frontier with
the :class:`TrafficModel`, and decides per iteration whether the batch runs
as one union sub-batch or splits into a push-leaning and a pull-leaning
sub-batch (``docs/batching.md``, "Lane-aware direction selection"). The
policy exists because the union frontier can cross the pull threshold
before any single lane would (road graphs, barely-pruned SSSP gathers):
deciding once on the union then scans more in-edges than a serial loop
walks. Splitting restores the per-lane decision exactly where it diverges,
and re-merges lanes as soon as their decisions reconverge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


class Direction(enum.Enum):
    PUSH = "push"
    PULL = "pull"


@dataclass(frozen=True)
class TrafficModel:
    """Per-direction compute-op constants of the engine's cost model.

    The constants translate "algorithmic events" into compute operations the
    device model prices alongside the memory traffic
    (:func:`repro.gpu.memory.frontier_expansion_traffic` /
    :func:`repro.gpu.memory.pull_expansion_traffic`). They are deliberately
    small integers: the calibration experiment
    (``repro.bench.experiments.phase_timings``) fits the same quantities
    back out of measured per-phase timings and EXPERIMENTS.md records the
    fit next to these shipped values, so a future change to either side
    shows up as a diff against the committed baseline.

    Attributes
    ----------
    push_edge_ops:
        Full per-edge work of a scatter: read source metadata, evaluate
        ``Compute``, stage the update for the combine.
    pull_scan_ops:
        Per *scanned* in-edge work of a gather: one frontier-bitmap test,
        paid whether or not the source is active.
    pull_active_edge_ops:
        Additional per-edge work for in-edges whose source is in the
        frontier (the scattered metadata read plus the ``Compute``
        evaluation) - identical to the push per-edge work by construction.
    vertex_ops:
        Per-worklist-vertex overhead in either direction (worklist read,
        offset fetch, combine/apply tail).
    voting_pull_scan_fraction:
        Share of candidate in-edges a *voting* combine actually scans in
        pull mode: any arriving update finalizes the vertex, so the gather
        terminates early (~half the list on average).
    """

    push_edge_ops: float = 4.0
    pull_scan_ops: float = 1.0
    pull_active_edge_ops: float = 4.0
    vertex_ops: float = 2.0
    voting_pull_scan_fraction: float = 0.5

    def push_cost_ops(self, out_edges: int, vertices: int) -> float:
        """Modelled compute ops of scattering ``out_edges`` from a worklist."""
        return out_edges * self.push_edge_ops + vertices * self.vertex_ops

    def pull_cost_ops(
        self, scanned_edges: int, active_edges: int, vertices: int
    ) -> float:
        """Modelled compute ops of gathering over ``scanned_edges`` in-edges.

        ``active_edges`` is the frontier-sourced share that pays the full
        per-edge work on top of the per-scanned-edge bitmap test.
        """
        return (
            scanned_edges * self.pull_scan_ops
            + active_edges * self.pull_active_edge_ops
            + vertices * self.vertex_ops
        )


#: Shipped calibration (see EXPERIMENTS.md for the measured validation).
DEFAULT_TRAFFIC_MODEL = TrafficModel()


@dataclass
class DirectionSelector:
    """Frontier-size-based push/pull switching.

    Parameters
    ----------
    total_edges:
        Edge count of the graph (denominator of the frontier-share test).
    to_pull_threshold:
        Switch push -> pull when the frontier's out-edges exceed this
        fraction of all edges.
    to_push_threshold:
        Switch pull -> push when the share drops below this fraction.
    start_direction:
        Direction of the first iteration.
    """

    total_edges: int
    to_pull_threshold: float = 0.05
    to_push_threshold: float = 0.01
    start_direction: Direction = Direction.PUSH
    _current: Direction = field(init=False)
    history: List[Direction] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not (0.0 < self.to_push_threshold <= self.to_pull_threshold <= 1.0):
            raise ValueError(
                "thresholds must satisfy 0 < to_push <= to_pull <= 1"
            )
        self._current = self.start_direction

    @property
    def current(self) -> Direction:
        return self._current

    def decide(self, frontier_edges: int) -> Direction:
        """Direction for the iteration about to run, given the frontier size."""
        if self.total_edges > 0:
            share = frontier_edges / self.total_edges
            if self._current is Direction.PUSH and share >= self.to_pull_threshold:
                self._current = Direction.PULL
            elif self._current is Direction.PULL and share < self.to_push_threshold:
                self._current = Direction.PUSH
        self.history.append(self._current)
        return self._current

    def force(self, direction: Direction) -> Direction:
        """Record an externally-imposed direction for the next iteration.

        Manual (non-auto) engine configurations pin the direction instead of
        calling :meth:`decide`; going through ``force`` keeps the selector's
        state machine - ``current``, ``history`` and therefore
        :meth:`switches` / :meth:`phase_lengths` - consistent with what the
        engine actually executed.
        """
        self._current = direction
        self.history.append(direction)
        return direction

    def switches(self) -> int:
        """Number of direction changes over the recorded history."""
        return sum(
            1 for a, b in zip(self.history, self.history[1:]) if a is not b
        )

    def phase_lengths(self) -> List[int]:
        """Lengths of the consecutive same-direction runs (push/pull phases)."""
        if not self.history:
            return []
        lengths = [1]
        for a, b in zip(self.history, self.history[1:]):
            if a is b:
                lengths[-1] += 1
            else:
                lengths.append(1)
        return lengths


# ----------------------------------------------------------------------
# Lane-aware direction selection for batched multi-source execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LaneScore:
    """One lane's direction interests for the iteration about to run.

    ``push_cost`` / ``pull_cost`` are :class:`TrafficModel` compute-op
    estimates of running *this lane alone* in each direction;
    ``preferred`` is the lane's own Beamer-style decision (with per-lane
    hysteresis). ``pull_scanned`` is the lane's estimated gather scan - the
    in-edges of its own pruned gather worklist - and ``pull_active`` the
    frontier-sourced share (bounded by the lane frontier's out-edges).
    """

    lane: int
    push_edges: int
    frontier_vertices: int
    pull_scanned: int
    pull_candidates: int
    pull_active: int
    push_cost: float
    pull_cost: float
    preferred: Direction

    def cost(self, direction: Direction) -> float:
        return self.push_cost if direction is Direction.PUSH else self.pull_cost


@dataclass(frozen=True)
class SubBatchPlan:
    """One sub-batch of a split iteration: a direction and its lanes."""

    direction: Direction
    lanes: Tuple[int, ...]


@dataclass(frozen=True)
class SplitDecision:
    """The policy's verdict for one batched iteration.

    ``groups`` always covers every live lane exactly once, push-leaning
    group first when split. ``benefit_ops`` is the modelled compute-op
    saving of the chosen plan over the decide-once union plan (0 when no
    split), and ``reason`` a short trace tag for diagnostics
    (``"agree"``, ``"split"``, ``"margin"``, ``"forced"``).
    """

    groups: Tuple[SubBatchPlan, ...]
    split: bool
    benefit_ops: float
    reason: str


class BatchDirectionPolicy:
    """Per-lane direction scoring and the batch split policy.

    Keeps one :class:`DirectionSelector` per query lane so each lane's
    push/pull preference evolves with the same hysteresis an independent
    run of that lane would have. Per iteration, :meth:`plan` compares the
    lanes' preferences:

    * all live lanes agree -> one sub-batch in the agreed direction (which
      may differ from the union decision: on road graphs the union crosses
      the pull threshold long before any single lane does);
    * lanes disagree -> split into a push-leaning and a pull-leaning
      sub-batch iff the :class:`TrafficModel` saving over running everyone
      in the union direction exceeds ``margin`` (a fraction of the
      decide-once cost). The margin absorbs the per-sub-batch fixed costs
      the ops model does not see - each sub-batch pays its own kernel
      launches, barriers and task-management pass - so small divergences
      stay merged and lanes re-merge as soon as their decisions
      reconverge.

    Pull-side scan estimates are produced lazily through the
    ``pull_estimate`` callback (the engine prices a lane's pruned gather
    worklist), only for iterations where some lane actually leans pull.
    """

    def __init__(
        self,
        *,
        total_edges: int,
        num_lanes: int,
        to_pull_threshold: float = 0.05,
        to_push_threshold: float = 0.01,
        start_direction: Direction = Direction.PUSH,
        traffic_model: TrafficModel = DEFAULT_TRAFFIC_MODEL,
        margin: float = 0.5,
    ):
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.traffic_model = traffic_model
        self.margin = margin
        self.lane_selectors = [
            DirectionSelector(
                total_edges=total_edges,
                to_pull_threshold=to_pull_threshold,
                to_push_threshold=to_push_threshold,
                start_direction=start_direction,
            )
            for _ in range(num_lanes)
        ]
        #: One entry per planned iteration: True when the batch split.
        self.split_history: List[bool] = []

    def plan(
        self,
        live: Sequence[int],
        lane_push_edges: Dict[int, int],
        lane_frontier_sizes: Dict[int, int],
        pull_estimate: Callable[[int], Tuple[int, int]],
        union_direction: Direction,
        *,
        pull_scan_fraction: float = 1.0,
    ) -> SplitDecision:
        """Group the live lanes into direction-homogeneous sub-batches.

        ``pull_estimate(lane)`` returns ``(scanned_in_edges, candidates)``
        for the lane's own gather worklist; ``pull_scan_fraction`` scales
        the scan for voting combines (collaborative early termination).
        """
        model = self.traffic_model
        preferences: Dict[int, Direction] = {}
        for lane in live:
            preferences[lane] = self.lane_selectors[lane].decide(
                lane_push_edges.get(lane, 0)
            )

        push_lanes = tuple(l for l in live if preferences[l] is Direction.PUSH)
        pull_lanes = tuple(l for l in live if preferences[l] is Direction.PULL)
        if not push_lanes or not pull_lanes:
            agreed = Direction.PULL if pull_lanes else Direction.PUSH
            self.split_history.append(False)
            return SplitDecision(
                groups=(SubBatchPlan(agreed, tuple(live)),),
                split=False,
                benefit_ops=0.0,
                reason="agree",
            )

        # Lanes disagree: score both directions for every lane and weigh
        # the split against running everyone in the union direction.
        scores = {
            lane: self._score(
                lane,
                preferences[lane],
                lane_push_edges.get(lane, 0),
                lane_frontier_sizes.get(lane, 0),
                pull_estimate,
                pull_scan_fraction,
            )
            for lane in live
        }
        union_cost = sum(scores[l].cost(union_direction) for l in live)
        split_cost = sum(scores[l].cost(preferences[l]) for l in live)
        benefit = union_cost - split_cost
        if benefit > self.margin * max(union_cost, 1.0):
            self.split_history.append(True)
            return SplitDecision(
                groups=(
                    SubBatchPlan(Direction.PUSH, push_lanes),
                    SubBatchPlan(Direction.PULL, pull_lanes),
                ),
                split=True,
                benefit_ops=benefit,
                reason="split",
            )
        self.split_history.append(False)
        return SplitDecision(
            groups=(SubBatchPlan(union_direction, tuple(live)),),
            split=False,
            benefit_ops=0.0,
            reason="margin",
        )

    def force(self, groups: Sequence[SubBatchPlan]) -> None:
        """Record an externally-imposed grouping (a forced split schedule).

        The lane-axis analogue of :meth:`DirectionSelector.force`: each
        lane's selector records the direction its group actually executed,
        so the per-lane hysteresis of later *automatic* iterations starts
        from what ran rather than from a stale preference, and
        ``split_history`` counts the forced iteration like any other.
        """
        for group in groups:
            for lane in group.lanes:
                self.lane_selectors[lane].force(group.direction)
        self.split_history.append(len(groups) > 1)

    def splits(self) -> int:
        """Number of planned iterations that split the batch."""
        return sum(1 for s in self.split_history if s)

    # ------------------------------------------------------------------
    def _score(
        self,
        lane: int,
        preferred: Direction,
        push_edges: int,
        frontier_vertices: int,
        pull_estimate: Callable[[int], Tuple[int, int]],
        pull_scan_fraction: float,
    ) -> LaneScore:
        scanned, candidates = pull_estimate(lane)
        scanned = int(scanned * pull_scan_fraction)
        active = min(push_edges, scanned)
        return LaneScore(
            lane=lane,
            push_edges=push_edges,
            frontier_vertices=frontier_vertices,
            pull_scanned=scanned,
            pull_candidates=candidates,
            pull_active=active,
            push_cost=self.traffic_model.push_cost_ops(
                push_edges, frontier_vertices
            ),
            pull_cost=self.traffic_model.pull_cost_ops(
                scanned, active, candidates
            ),
            preferred=preferred,
        )
