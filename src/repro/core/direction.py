"""Push / pull direction selection and the per-direction traffic model.

Graph algorithms on SIMD-X run each iteration either in *push* mode (expand
the out-edges of the active frontier and scatter updates to destinations) or
*pull* mode (every not-yet-converged destination gathers from its in-edges).
Section 5 observes that consecutive iterations cluster into push and pull
phases - BFS/SSSP push at the beginning and end and pull in the middle, when
the frontier covers most of the graph; k-Core pulls first and pushes at the
end; PageRank pulls until most ranks are stable and then pushes. Push-pull
kernel fusion exploits exactly this clustering, and the JIT task manager
(:mod:`repro.core.jit`) keys its filter choice off the same signal: a gather
worker records at most one destination, so pull phases always run the online
filter and the ballot filter is pre-armed only at the pull->push boundary.

Two pieces live here:

* :class:`DirectionSelector` reproduces the switching behaviour with the
  classic direction-optimizing heuristic (Beamer et al.): switch to pull
  when the frontier's outgoing edges exceed ``to_pull_threshold`` (default
  5%) of all edges, switch back to push when the share drops below
  ``to_push_threshold`` (default 1%). Algorithms that inherently start in
  pull mode set ``starts_in_pull`` on their ACC spec.
* :class:`TrafficModel` holds the calibrated per-edge / per-vertex compute
  constants the engine charges for each direction. A push iteration pays
  full per-edge work for every expanded out-edge; a pull iteration pays a
  cheap frontier-bitmap test per *scanned* in-edge and the full per-edge
  work only for the *active* (frontier-sourced) share. The shipped values
  are validated against measured per-phase timings by
  ``repro.bench.experiments.phase_timings`` and recorded in the generated
  EXPERIMENTS.md baseline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class Direction(enum.Enum):
    PUSH = "push"
    PULL = "pull"


@dataclass(frozen=True)
class TrafficModel:
    """Per-direction compute-op constants of the engine's cost model.

    The constants translate "algorithmic events" into compute operations the
    device model prices alongside the memory traffic
    (:func:`repro.gpu.memory.frontier_expansion_traffic` /
    :func:`repro.gpu.memory.pull_expansion_traffic`). They are deliberately
    small integers: the calibration experiment
    (``repro.bench.experiments.phase_timings``) fits the same quantities
    back out of measured per-phase timings and EXPERIMENTS.md records the
    fit next to these shipped values, so a future change to either side
    shows up as a diff against the committed baseline.

    Attributes
    ----------
    push_edge_ops:
        Full per-edge work of a scatter: read source metadata, evaluate
        ``Compute``, stage the update for the combine.
    pull_scan_ops:
        Per *scanned* in-edge work of a gather: one frontier-bitmap test,
        paid whether or not the source is active.
    pull_active_edge_ops:
        Additional per-edge work for in-edges whose source is in the
        frontier (the scattered metadata read plus the ``Compute``
        evaluation) - identical to the push per-edge work by construction.
    vertex_ops:
        Per-worklist-vertex overhead in either direction (worklist read,
        offset fetch, combine/apply tail).
    voting_pull_scan_fraction:
        Share of candidate in-edges a *voting* combine actually scans in
        pull mode: any arriving update finalizes the vertex, so the gather
        terminates early (~half the list on average).
    """

    push_edge_ops: float = 4.0
    pull_scan_ops: float = 1.0
    pull_active_edge_ops: float = 4.0
    vertex_ops: float = 2.0
    voting_pull_scan_fraction: float = 0.5


#: Shipped calibration (see EXPERIMENTS.md for the measured validation).
DEFAULT_TRAFFIC_MODEL = TrafficModel()


@dataclass
class DirectionSelector:
    """Frontier-size-based push/pull switching.

    Parameters
    ----------
    total_edges:
        Edge count of the graph (denominator of the frontier-share test).
    to_pull_threshold:
        Switch push -> pull when the frontier's out-edges exceed this
        fraction of all edges.
    to_push_threshold:
        Switch pull -> push when the share drops below this fraction.
    start_direction:
        Direction of the first iteration.
    """

    total_edges: int
    to_pull_threshold: float = 0.05
    to_push_threshold: float = 0.01
    start_direction: Direction = Direction.PUSH
    _current: Direction = field(init=False)
    history: List[Direction] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not (0.0 < self.to_push_threshold <= self.to_pull_threshold <= 1.0):
            raise ValueError(
                "thresholds must satisfy 0 < to_push <= to_pull <= 1"
            )
        self._current = self.start_direction

    @property
    def current(self) -> Direction:
        return self._current

    def decide(self, frontier_edges: int) -> Direction:
        """Direction for the iteration about to run, given the frontier size."""
        if self.total_edges > 0:
            share = frontier_edges / self.total_edges
            if self._current is Direction.PUSH and share >= self.to_pull_threshold:
                self._current = Direction.PULL
            elif self._current is Direction.PULL and share < self.to_push_threshold:
                self._current = Direction.PUSH
        self.history.append(self._current)
        return self._current

    def force(self, direction: Direction) -> Direction:
        """Record an externally-imposed direction for the next iteration.

        Manual (non-auto) engine configurations pin the direction instead of
        calling :meth:`decide`; going through ``force`` keeps the selector's
        state machine - ``current``, ``history`` and therefore
        :meth:`switches` / :meth:`phase_lengths` - consistent with what the
        engine actually executed.
        """
        self._current = direction
        self.history.append(direction)
        return direction

    def switches(self) -> int:
        """Number of direction changes over the recorded history."""
        return sum(
            1 for a, b in zip(self.history, self.history[1:]) if a is not b
        )

    def phase_lengths(self) -> List[int]:
        """Lengths of the consecutive same-direction runs (push/pull phases)."""
        if not self.history:
            return []
        lengths = [1]
        for a, b in zip(self.history, self.history[1:]):
            if a is b:
                lengths[-1] += 1
            else:
                lengths.append(1)
        return lengths
