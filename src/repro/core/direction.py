"""Push / pull direction selection.

Graph algorithms on SIMD-X run each iteration either in *push* mode (expand
the out-edges of the active frontier and scatter updates to destinations) or
*pull* mode (every not-yet-converged destination gathers from its in-edges).
Section 5 observes that consecutive iterations cluster into push and pull
phases - BFS/SSSP push at the beginning and end and pull in the middle, when
the frontier covers most of the graph; k-Core pulls first and pushes at the
end; PageRank pulls until most ranks are stable and then pushes. Push-pull
kernel fusion exploits exactly this clustering.

The :class:`DirectionSelector` reproduces the behaviour with the classic
direction-optimizing heuristic (Beamer et al.): switch to pull when the
frontier's outgoing edges exceed a fraction of all edges, switch back to push
when the frontier shrinks again. Algorithms that inherently start in pull
mode set ``starts_in_pull`` on their ACC spec.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class Direction(enum.Enum):
    PUSH = "push"
    PULL = "pull"


@dataclass
class DirectionSelector:
    """Frontier-size-based push/pull switching.

    Parameters
    ----------
    total_edges:
        Edge count of the graph (denominator of the frontier-share test).
    to_pull_threshold:
        Switch push -> pull when the frontier's out-edges exceed this
        fraction of all edges.
    to_push_threshold:
        Switch pull -> push when the share drops below this fraction.
    start_direction:
        Direction of the first iteration.
    """

    total_edges: int
    to_pull_threshold: float = 0.05
    to_push_threshold: float = 0.01
    start_direction: Direction = Direction.PUSH
    _current: Direction = field(init=False)
    history: List[Direction] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not (0.0 < self.to_push_threshold <= self.to_pull_threshold <= 1.0):
            raise ValueError(
                "thresholds must satisfy 0 < to_push <= to_pull <= 1"
            )
        self._current = self.start_direction

    @property
    def current(self) -> Direction:
        return self._current

    def decide(self, frontier_edges: int) -> Direction:
        """Direction for the iteration about to run, given the frontier size."""
        if self.total_edges > 0:
            share = frontier_edges / self.total_edges
            if self._current is Direction.PUSH and share >= self.to_pull_threshold:
                self._current = Direction.PULL
            elif self._current is Direction.PULL and share < self.to_push_threshold:
                self._current = Direction.PUSH
        self.history.append(self._current)
        return self._current

    def force(self, direction: Direction) -> Direction:
        """Record an externally-imposed direction for the next iteration.

        Manual (non-auto) engine configurations pin the direction instead of
        calling :meth:`decide`; going through ``force`` keeps the selector's
        state machine - ``current``, ``history`` and therefore
        :meth:`switches` / :meth:`phase_lengths` - consistent with what the
        engine actually executed.
        """
        self._current = direction
        self.history.append(direction)
        return direction

    def switches(self) -> int:
        """Number of direction changes over the recorded history."""
        return sum(
            1 for a, b in zip(self.history, self.history[1:]) if a is not b
        )

    def phase_lengths(self) -> List[int]:
        """Lengths of the consecutive same-direction runs (push/pull phases)."""
        if not self.history:
            return []
        lengths = [1]
        for a, b in zip(self.history, self.history[1:]):
            if a is b:
                lengths[-1] += 1
            else:
                lengths.append(1)
        return lengths
