"""Just-in-time, direction-aware filter selection (Section 4, Figure 7).

The JIT controller starts every run on the online filter because its cost is
proportional to the (initially tiny) number of updates. When any thread bin
overflows - meaning the frontier has grown beyond what bounded bins can
capture - the controller switches to the ballot filter, whose O(|V|) scan is
then amortized over a large frontier and whose output is sorted and
duplicate-free.

Two subtleties from the paper are reproduced:

* After switching to the ballot filter, the online filter *keeps running*
  with its bounded bins so the controller can switch back as soon as the
  frontier shrinks below the threshold again (the measured overhead of this
  shadow execution is ~0.02% on average, Figure 9b). The shadow bins are
  capped at the overflow threshold, so the extra work per iteration is tiny
  and off the critical path.
* The overflow threshold (64 by default) is the knob studied in Figure 9(a):
  too low switches to ballot too early (wasted scans on small frontiers),
  too high too late (incomplete online bins force extra ballot iterations).

On top of the overflow signal the controller is *direction-aware*, because
the execution direction (:mod:`repro.core.direction`) changes what the
recording workers can observe:

* **Pull phases force the online filter.** A gather worker learns only about
  its own destination and records it at most once, post-combine, so a thread
  bin holds at most one entry and overflow is structurally impossible. The
  controller therefore drops out of ballot mode on the first pull iteration
  instead of waiting for a non-overflowing shadow run.
* **The pull->push switch pre-arms the ballot filter.** The first scatter
  after a pull phase expands whatever frontier the pull phase built up. A
  thread bin can overflow only when one scatter worker may record more
  entries than the bin holds, and the maximum out-degree of the handed-over
  frontier is a static bound on exactly that
  (``FilterContext.max_producer_records``). The raw degree bound is
  pessimistic, though: a worker records an entry only when its offer
  *changes* the destination, so the controller scales the bound by the
  frontier's expected success rate (``FilterContext.success_rate`` - the
  engine estimates it as the still-updatable vertex share before the
  iteration, e.g. the unvisited share for BFS). When the scaled bound
  exceeds the overflow threshold the controller starts the iteration
  directly in ballot mode rather than discovering the overflow through the
  generic signal and paying an incomplete online pass first; the shadow
  online filter then switches back as soon as the frontier has genuinely
  shrunk. Hub-heavy but mostly-settled frontiers (pull phases typically
  visit most of the graph before handing back to push) and high-diameter
  road graphs - whose frontiers never contain a super-threshold hub - never
  trip the bound, so those runs keep their ballot-free traces (Figure 8).
  Should the estimate ever prove too optimistic, the generic overflow
  signal still catches the real overflow within the same iteration (at the
  cost of the incomplete online pass the pre-arm would have skipped), so
  the bound affects cost, never correctness.

Every :class:`JITDecision` records the direction that drove it (and whether
the ballot was pre-armed), so the Figure 8 traces can be read per phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.direction import Direction
from repro.core.filters import (
    BallotFilter,
    FilterContext,
    FilterResult,
    OnlineFilter,
)

DEFAULT_OVERFLOW_THRESHOLD = 64


@dataclass
class JITDecision:
    """Record of one iteration's filter choice (Figure 8 raw data)."""

    iteration: int
    filter_used: str           # "online" or "ballot"
    overflowed: bool
    worklist_size: int
    #: Execution direction of the iteration whose worklist this built -
    #: the signal behind a forced-online (pull) or pre-armed (push) choice.
    direction: str = Direction.PUSH.value
    #: True when the ballot ran because the previous iteration was a pull
    #: (pull->push switch), not because the online bins overflowed.
    pre_armed: bool = False


class JITTaskManager:
    """Adaptive controller choosing between the online and ballot filters."""

    def __init__(
        self,
        *,
        overflow_threshold: int = DEFAULT_OVERFLOW_THRESHOLD,
        shadow_online: bool = True,
    ):
        if overflow_threshold <= 0:
            raise ValueError("overflow_threshold must be positive")
        self.overflow_threshold = overflow_threshold
        self.shadow_online = shadow_online
        self.online = OnlineFilter(capacity=overflow_threshold)
        self.ballot = BallotFilter()
        self._use_ballot = False
        self._last_direction: Optional[Direction] = None
        self.decisions: List[JITDecision] = []

    # ------------------------------------------------------------------
    @property
    def current_filter_name(self) -> str:
        return "ballot" if self._use_ballot else "online"

    @property
    def last_direction(self) -> Optional[Direction]:
        """Direction of the most recent :meth:`build` call (None before any).

        The engine reads it to detect a pull->push hand-over per
        task-management stream - with lane-aware batch splitting each
        sub-batch owns a stream, so the pre-arm trigger follows what *its*
        lanes executed, not the merged batch's trace.
        """
        return self._last_direction

    def reset(self) -> None:
        self._use_ballot = False
        self._last_direction = None
        self.decisions.clear()

    def fork(self) -> "JITTaskManager":
        """Clone the controller state for a split-off sub-batch.

        Lane-aware batch splitting (``SIMDXEngine.run_batch`` with
        ``EngineConfig.lane_aware_split``) gives each sub-batch its own
        task-management tail: the forked controller starts from the parent's
        ballot/online mode and last executed direction - which is exactly
        what every lane of the sub-batch experienced up to the split - and
        then evolves independently, so a pull-leaning sub-batch that later
        hands back to push pre-arms the ballot from *its own* frontier's
        degree bound, not the merged batch's. Decisions recorded after the
        fork stay private to the fork; the engine aggregates them for
        ``RunResult.extra``.
        """
        fork = JITTaskManager(
            overflow_threshold=self.overflow_threshold,
            shadow_online=self.shadow_online,
        )
        fork._use_ballot = self._use_ballot
        fork._last_direction = self._last_direction
        return fork

    def build(
        self,
        ctx: FilterContext,
        iteration: int,
        direction: Direction = Direction.PUSH,
    ) -> FilterResult:
        """Produce the next worklist, adapting the filter choice.

        The decision protocol follows Figure 4(b) lines 16-21: run the online
        filter during compute; after the global barrier, check the overflow
        flag - if set, run the ballot filter to generate the (correct,
        sorted) list, otherwise concatenate the thread bins.

        ``direction`` is the execution direction of the iteration that
        produced ``ctx``. Pull iterations force the online filter (a gather
        worker records at most one destination, so overflow cannot happen);
        the first push iteration after a pull pre-arms the ballot filter
        instead of waiting for the overflow signal whenever a single worker
        could overflow its bin (``ctx.max_producer_records`` exceeds the
        overflow threshold).
        """
        prev_direction = self._last_direction
        self._last_direction = direction

        online_result = self.online.build(ctx)

        if direction is Direction.PULL:
            return self._build_pull(ctx, iteration, online_result)

        pre_armed = False
        if prev_direction is Direction.PULL and not self._use_ballot:
            # Pull->push switch: a bin can overflow only when a single
            # scatter worker may record more entries than its capacity - the
            # maximum frontier out-degree is that static bound, scaled by
            # the expected offer success rate (a worker records only offers
            # that change their destination; on a mostly-settled graph even
            # a hub's recordings stay far below its degree). If the pull
            # phase handed over a frontier expected to overflow a bin, start
            # directly in ballot mode instead of paying an incomplete online
            # pass to rediscover it dynamically; an underestimate merely
            # falls back to the overflow protocol below, which still ballots
            # this same iteration after the wasted online pass.
            success = min(1.0, max(0.0, ctx.success_rate))
            if ctx.max_producer_records * success > self.overflow_threshold:
                self._use_ballot = True
                pre_armed = True

        if not self._use_ballot:
            if online_result.overflowed:
                # Online bins are incomplete: fall back to the ballot filter
                # for a correct list and stay in ballot mode.
                self._use_ballot = True
                ballot_result = self.ballot.build(ctx)
                result = FilterResult(
                    worklist=ballot_result.worklist,
                    work=online_result.work.merged_with(ballot_result.work),
                    overflowed=True,
                    is_sorted=True,
                    is_unique=True,
                )
                self._record(iteration, "ballot", True, result, direction)
                return result
            self._record(iteration, "online", False, online_result, direction)
            return online_result

        # Ballot mode: the ballot filter produces the worklist; the shadow
        # online filter's (bounded) work is added as overhead, and a
        # non-overflowing shadow run switches us back for the next iteration.
        ballot_result = self.ballot.build(ctx)
        work = ballot_result.work
        if self.shadow_online:
            work = work.merged_with(online_result.work)
            if not online_result.overflowed:
                self._use_ballot = False
        result = FilterResult(
            worklist=ballot_result.worklist,
            work=work,
            overflowed=online_result.overflowed,
            is_sorted=True,
            is_unique=True,
        )
        self._record(
            iteration, "ballot", online_result.overflowed, result, direction,
            pre_armed=pre_armed,
        )
        return result

    def _build_pull(
        self, ctx: FilterContext, iteration: int, online_result: FilterResult
    ) -> FilterResult:
        """Pull phase: force the online filter, leaving ballot mode."""
        if online_result.overflowed:
            # Only reachable if the caller violated the one-record-per-gather-
            # worker invariant; forcing online would silently truncate the
            # worklist, so fall back to the ballot filter for correctness.
            self._use_ballot = True
            ballot_result = self.ballot.build(ctx)
            result = FilterResult(
                worklist=ballot_result.worklist,
                work=online_result.work.merged_with(ballot_result.work),
                overflowed=True,
                is_sorted=True,
                is_unique=True,
            )
            self._record(iteration, "ballot", True, result, Direction.PULL)
            return result
        self._use_ballot = False
        self._record(iteration, "online", False, online_result, Direction.PULL)
        return online_result

    # ------------------------------------------------------------------
    def _record(
        self,
        iteration: int,
        filter_used: str,
        overflowed: bool,
        result: FilterResult,
        direction: Direction,
        *,
        pre_armed: bool = False,
    ) -> None:
        self.decisions.append(
            JITDecision(
                iteration=iteration,
                filter_used=filter_used,
                overflowed=overflowed,
                worklist_size=int(result.worklist.size),
                direction=direction.value,
                pre_armed=pre_armed,
            )
        )

    # ------------------------------------------------------------------
    # Trace queries (Figure 8)
    # ------------------------------------------------------------------
    def filter_trace(self) -> List[str]:
        """Filter used at each iteration, in order."""
        return [d.filter_used for d in self.decisions]

    def direction_trace(self) -> List[str]:
        """Direction that drove each decision, in order."""
        return [d.direction for d in self.decisions]

    def ballot_iterations(self) -> List[int]:
        return [d.iteration for d in self.decisions if d.filter_used == "ballot"]

    def online_iterations(self) -> List[int]:
        return [d.iteration for d in self.decisions if d.filter_used == "online"]

    def pre_armed_iterations(self) -> List[int]:
        """Iterations whose ballot ran because of a pull->push switch."""
        return [d.iteration for d in self.decisions if d.pre_armed]

    def activation_pattern(self) -> str:
        """Compact pattern string, e.g. ``"online*3, ballot*4, online*2"``."""
        trace = self.filter_trace()
        if not trace:
            return ""
        segments: List[str] = []
        current = trace[0]
        count = 0
        for name in trace:
            if name == current:
                count += 1
            else:
                segments.append(f"{current}*{count}")
                current, count = name, 1
        segments.append(f"{current}*{count}")
        return ", ".join(segments)
