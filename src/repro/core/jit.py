"""Just-in-time filter selection (Section 4, Figure 7).

The JIT controller starts every run on the online filter because its cost is
proportional to the (initially tiny) number of updates. When any thread bin
overflows - meaning the frontier has grown beyond what bounded bins can
capture - the controller switches to the ballot filter, whose O(|V|) scan is
then amortized over a large frontier and whose output is sorted and
duplicate-free.

Two subtleties from the paper are reproduced:

* After switching to the ballot filter, the online filter *keeps running*
  with its bounded bins so the controller can switch back as soon as the
  frontier shrinks below the threshold again (the measured overhead of this
  shadow execution is ~0.02% on average, Figure 9b). The shadow bins are
  capped at the overflow threshold, so the extra work per iteration is tiny
  and off the critical path.
* The overflow threshold (64 by default) is the knob studied in Figure 9(a):
  too low switches to ballot too early (wasted scans on small frontiers),
  too high too late (incomplete online bins force extra ballot iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.filters import (
    BallotFilter,
    FilterContext,
    FilterResult,
    OnlineFilter,
)

DEFAULT_OVERFLOW_THRESHOLD = 64


@dataclass
class JITDecision:
    """Record of one iteration's filter choice (Figure 8 raw data)."""

    iteration: int
    filter_used: str           # "online" or "ballot"
    overflowed: bool
    worklist_size: int


class JITTaskManager:
    """Adaptive controller choosing between the online and ballot filters."""

    def __init__(
        self,
        *,
        overflow_threshold: int = DEFAULT_OVERFLOW_THRESHOLD,
        shadow_online: bool = True,
    ):
        if overflow_threshold <= 0:
            raise ValueError("overflow_threshold must be positive")
        self.overflow_threshold = overflow_threshold
        self.shadow_online = shadow_online
        self.online = OnlineFilter(capacity=overflow_threshold)
        self.ballot = BallotFilter()
        self._use_ballot = False
        self.decisions: List[JITDecision] = []

    # ------------------------------------------------------------------
    @property
    def current_filter_name(self) -> str:
        return "ballot" if self._use_ballot else "online"

    def reset(self) -> None:
        self._use_ballot = False
        self.decisions.clear()

    def build(self, ctx: FilterContext, iteration: int) -> FilterResult:
        """Produce the next worklist, adapting the filter choice.

        The decision protocol follows Figure 4(b) lines 16-21: run the online
        filter during compute; after the global barrier, check the overflow
        flag - if set, run the ballot filter to generate the (correct,
        sorted) list, otherwise concatenate the thread bins.
        """
        online_result = self.online.build(ctx)

        if not self._use_ballot:
            if online_result.overflowed:
                # Online bins are incomplete: fall back to the ballot filter
                # for a correct list and stay in ballot mode.
                self._use_ballot = True
                ballot_result = self.ballot.build(ctx)
                result = FilterResult(
                    worklist=ballot_result.worklist,
                    work=online_result.work.merged_with(ballot_result.work),
                    overflowed=True,
                    is_sorted=True,
                    is_unique=True,
                )
                self._record(iteration, "ballot", True, result)
                return result
            self._record(iteration, "online", False, online_result)
            return online_result

        # Ballot mode: the ballot filter produces the worklist; the shadow
        # online filter's (bounded) work is added as overhead, and a
        # non-overflowing shadow run switches us back for the next iteration.
        ballot_result = self.ballot.build(ctx)
        work = ballot_result.work
        if self.shadow_online:
            work = work.merged_with(online_result.work)
            if not online_result.overflowed:
                self._use_ballot = False
        result = FilterResult(
            worklist=ballot_result.worklist,
            work=work,
            overflowed=online_result.overflowed,
            is_sorted=True,
            is_unique=True,
        )
        self._record(iteration, "ballot", online_result.overflowed, result)
        return result

    # ------------------------------------------------------------------
    def _record(
        self, iteration: int, filter_used: str, overflowed: bool, result: FilterResult
    ) -> None:
        self.decisions.append(
            JITDecision(
                iteration=iteration,
                filter_used=filter_used,
                overflowed=overflowed,
                worklist_size=int(result.worklist.size),
            )
        )

    # ------------------------------------------------------------------
    # Trace queries (Figure 8)
    # ------------------------------------------------------------------
    def filter_trace(self) -> List[str]:
        """Filter used at each iteration, in order."""
        return [d.filter_used for d in self.decisions]

    def ballot_iterations(self) -> List[int]:
        return [d.iteration for d in self.decisions if d.filter_used == "ballot"]

    def online_iterations(self) -> List[int]:
        return [d.iteration for d in self.decisions if d.filter_used == "online"]

    def activation_pattern(self) -> str:
        """Compact pattern string, e.g. ``"online*3, ballot*4, online*2"``."""
        trace = self.filter_trace()
        if not trace:
            return ""
        segments: List[str] = []
        current = trace[0]
        count = 0
        for name in trace:
            if name == current:
                count += 1
            else:
                segments.append(f"{current}*{count}")
                current, count = name, 1
        segments.append(f"{current}*{count}")
        return ", ".join(segments)
