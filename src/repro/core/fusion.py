"""Push-pull based kernel fusion and the register model (Section 5, Table 2).

Three strategies are modelled:

* ``NONE`` (no fusion)  -- each iteration launches separate kernels for the
  Thread / Warp / CTA compute stages and for task management, in both
  directions; every launch pays the device's launch overhead. Register use
  per kernel is small (22-30 registers, Table 2).
* ``ALL`` (aggressive fusion) -- the whole algorithm is one persistent
  kernel: a single launch, but the fused kernel needs ~110 registers per
  thread, which roughly halves occupancy and therefore throughput.
* ``PUSH_PULL`` (selective fusion, SIMD-X's contribution) -- kernels are
  fused within each push phase and within each pull phase; the fused push
  and pull kernels need ~48 / ~50 registers, and a typical run relaunches
  only when the direction switches (3 launches for BFS/SSSP: push, pull,
  push).

Within a fused phase, iterations are separated by the deadlock-free software
global barrier instead of kernel relaunches; the barrier requires the CTA
count to respect Eq. 1, which :class:`FusionPlan` computes from the register
footprint via :mod:`repro.gpu.registers`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gpu.device import GPUSpec
from repro.gpu.kernel import Kernel, DEFAULT_THREADS_PER_CTA
from repro.gpu.registers import compute_cta_count, configurable_thread_count
from repro.core.direction import Direction


class FusionStrategy(enum.Enum):
    """Kernel fusion strategies compared in Figure 13 / Table 2."""

    NONE = "none"
    ALL = "all"
    PUSH_PULL = "push_pull"


#: Register consumption per kernel, from Table 2 of the paper
#: (``-Xptxas -v`` output of the authors' CUDA build).
REGISTERS_TABLE: Dict[str, int] = {
    "push_thread": 26,
    "push_warp": 27,
    "push_cta": 28,
    "push_task_mgt": 24,
    "pull_thread": 24,
    "pull_warp": 24,
    "pull_cta": 22,
    "pull_task_mgt": 30,
    "fused_push": 48,
    "fused_pull": 50,
    "fused_all": 110,
}


@dataclass(frozen=True)
class PhaseKernels:
    """The kernels involved in one direction phase of one iteration.

    ``launch_kernels`` pay launch overhead; ``continuation_kernels`` run
    inside an already-resident fused kernel and only pay their work cost.
    """

    launch_kernels: Tuple[Kernel, ...]
    continuation_kernels: Tuple[Kernel, ...]
    barrier_kernel: Optional[Kernel]

    @property
    def all_kernels(self) -> Tuple[Kernel, ...]:
        return self.launch_kernels + self.continuation_kernels


class FusionPlan:
    """Maps (strategy, direction, iteration state) to kernel launches."""

    def __init__(
        self,
        strategy: FusionStrategy,
        *,
        threads_per_cta: int = DEFAULT_THREADS_PER_CTA,
        registers: Optional[Dict[str, int]] = None,
    ):
        self.strategy = strategy
        self.threads_per_cta = threads_per_cta
        self.registers = dict(REGISTERS_TABLE)
        if registers:
            self.registers.update(registers)
        self._kernels: Dict[str, Kernel] = {}
        self._active_fused_kernel: Optional[str] = None

    # ------------------------------------------------------------------
    def kernel(self, key: str) -> Kernel:
        """Kernel object for a register-table key (cached)."""
        if key not in self._kernels:
            if key not in self.registers:
                raise KeyError(f"unknown kernel key {key!r}")
            self._kernels[key] = Kernel(
                name=key,
                registers_per_thread=self.registers[key],
                threads_per_cta=self.threads_per_cta,
            )
        return self._kernels[key]

    def reset(self) -> None:
        """Forget any resident fused kernel (start of a new run)."""
        self._active_fused_kernel = None

    # ------------------------------------------------------------------
    def phase_kernels(self, direction: Direction) -> PhaseKernels:
        """Kernels for one iteration in ``direction`` under this strategy.

        The same stages always run (Thread/Warp/CTA compute plus task
        management); the strategy only changes which of them are separate
        launches versus phases of a resident fused kernel.
        """
        prefix = "push" if direction is Direction.PUSH else "pull"
        stage_keys = [f"{prefix}_thread", f"{prefix}_warp", f"{prefix}_cta",
                      f"{prefix}_task_mgt"]

        if self.strategy == FusionStrategy.NONE:
            return PhaseKernels(
                launch_kernels=tuple(self.kernel(k) for k in stage_keys),
                continuation_kernels=(),
                barrier_kernel=None,
            )

        if self.strategy == FusionStrategy.ALL:
            fused = self.kernel("fused_all")
            if self._active_fused_kernel == "fused_all":
                return PhaseKernels(
                    launch_kernels=(),
                    continuation_kernels=(fused,) * len(stage_keys),
                    barrier_kernel=fused,
                )
            self._active_fused_kernel = "fused_all"
            return PhaseKernels(
                launch_kernels=(fused,),
                continuation_kernels=(fused,) * (len(stage_keys) - 1),
                barrier_kernel=fused,
            )

        # PUSH_PULL: one fused kernel per direction; relaunch on switch.
        fused_key = f"fused_{prefix}"
        fused = self.kernel(fused_key)
        if self._active_fused_kernel == fused_key:
            return PhaseKernels(
                launch_kernels=(),
                continuation_kernels=(fused,) * len(stage_keys),
                barrier_kernel=fused,
            )
        self._active_fused_kernel = fused_key
        return PhaseKernels(
            launch_kernels=(fused,),
            continuation_kernels=(fused,) * (len(stage_keys) - 1),
            barrier_kernel=fused,
        )

    # ------------------------------------------------------------------
    # Static properties used by the Table 2 bench and Section 7.3
    # ------------------------------------------------------------------
    def max_registers_per_thread(self) -> int:
        """Register footprint of the widest kernel this strategy runs."""
        if self.strategy == FusionStrategy.ALL:
            return self.registers["fused_all"]
        if self.strategy == FusionStrategy.PUSH_PULL:
            return max(self.registers["fused_push"], self.registers["fused_pull"])
        return max(
            self.registers[k]
            for k in self.registers
            if not k.startswith("fused_")
        )

    def configurable_threads(self, spec: GPUSpec) -> int:
        """Resident thread count the strategy can sustain on ``spec``.

        This is the quantity the paper says grows by ~50% when moving from
        all-fusion to push-pull fusion, and which scales across GPU models in
        Section 7.3.
        """
        return configurable_thread_count(
            spec,
            registers_per_thread=self.max_registers_per_thread(),
            threads_per_cta=self.threads_per_cta,
        )

    def persistent_cta_count(self, spec: GPUSpec) -> int:
        """Deadlock-free CTA count (Eq. 1) for the strategy's fused kernel."""
        return compute_cta_count(
            spec,
            registers_per_thread=self.max_registers_per_thread(),
            threads_per_cta=self.threads_per_cta,
        )

    def expected_launches(self, iterations: int, direction_switches: int) -> int:
        """Kernel launches a run of this shape needs (Table 2, last row).

        * no fusion: 4 kernels per iteration (3 compute + task management);
        * all fusion: a single launch for the whole run;
        * push-pull fusion: one launch per direction phase, i.e. the number
          of direction switches plus one.
        """
        if iterations <= 0:
            return 0
        if self.strategy == FusionStrategy.NONE:
            return 4 * iterations
        if self.strategy == FusionStrategy.ALL:
            return 1
        return direction_switches + 1
