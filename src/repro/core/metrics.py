"""Per-run metrics, iteration traces and result containers.

Every system in the repository (SIMD-X and the baselines) returns a
:class:`RunResult`, so the benchmark harness can compare them uniformly.
The iteration trace carries everything the paper's figures need: which filter
ran, which direction, how large the frontier was, and the simulated time of
each component.

The trace is also the raw material for the traffic-model calibration:
:func:`phase_timings` folds a run's iterations into consecutive
same-direction phases (the push/pull clustering of Section 5) and
:func:`calibrate_pull_constants` fits the per-edge cost constants of
:class:`repro.core.direction.TrafficModel` back out of the measured
per-phase timings, so EXPERIMENTS.md can record the fit next to the shipped
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class IterationRecord:
    """One BSP iteration of a run.

    ``frontier_vertices`` is always the size of the active (push) frontier;
    ``frontier_edges`` counts the edges of the worklist the executed
    ``direction`` actually walked - the frontier's out-edges in push mode,
    the gather worklist's scanned in-edges in pull mode (which can span most
    of the graph, so their ratio is not a frontier degree in pull phases).
    ``active_edges`` is the subset of those edges whose source lay in the
    frontier: equal to ``frontier_edges`` in push mode, and the share that
    paid full per-edge work (rather than just a bitmap test) in pull mode.
    """

    iteration: int
    direction: str
    frontier_vertices: int
    frontier_edges: int
    filter_used: str
    filter_overflowed: bool
    compute_us: float
    filter_us: float
    barrier_us: float
    launch_us: float
    active_edges: int = 0
    #: Batched runs only: total (edge, lane) pairs evaluated this iteration.
    #: ``frontier_edges`` stays the *union* worklist's edge count - the pairs
    #: beyond it are the lane-axis work that reused the single CSR walk. A
    #: serial execution of the same K queries would have walked
    #: ``lane_edge_pairs`` edges; 0 in single-query runs.
    lane_edge_pairs: int = 0
    #: Batched runs only: lanes with a non-empty frontier this iteration.
    active_lanes: int = 0

    @property
    def total_us(self) -> float:
        return self.compute_us + self.filter_us + self.barrier_us + self.launch_us


@dataclass
class RunResult:
    """Outcome of running one algorithm on one system.

    ``values`` is the user-facing result (distances, ranks, core flags...);
    ``elapsed_us`` the simulated GPU time (or modelled CPU time for the CPU
    baselines); ``failed``/``failure_reason`` record OOM or non-convergence
    the way Table 4's blank cells do.
    """

    system: str
    algorithm: str
    graph: str
    values: Optional[np.ndarray]
    elapsed_us: float
    iterations: int
    device: str = ""
    failed: bool = False
    failure_reason: str = ""
    kernel_launches: int = 0
    filter_trace: List[str] = field(default_factory=list)
    direction_trace: List[str] = field(default_factory=list)
    iteration_records: List[IterationRecord] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_us / 1000.0

    def speedup_over(self, other: "RunResult") -> float:
        """How many times faster this run is than ``other``."""
        if self.failed or other.failed:
            return float("nan")
        if self.elapsed_us == 0:
            return float("inf")
        return other.elapsed_us / self.elapsed_us

    def summary(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "algorithm": self.algorithm,
            "graph": self.graph,
            "device": self.device,
            "elapsed_ms": round(self.elapsed_ms, 4),
            "iterations": self.iterations,
            "kernel_launches": self.kernel_launches,
            "failed": self.failed,
            "failure_reason": self.failure_reason,
        }

    @classmethod
    def failure(
        cls,
        system: str,
        algorithm: str,
        graph: str,
        reason: str,
        *,
        device: str = "",
    ) -> "RunResult":
        """Construct the record for a failed run (OOM, non-convergence)."""
        return cls(
            system=system,
            algorithm=algorithm,
            graph=graph,
            values=None,
            elapsed_us=float("inf"),
            iterations=0,
            device=device,
            failed=True,
            failure_reason=reason,
        )


@dataclass
class BatchRunResult:
    """Outcome of one batched multi-source execution (``run_batch``).

    One row per query lane: ``metadata[k]`` is lane k's final metadata
    (bit-identical to the single-source run from ``sources[k]``) and
    ``values[k]`` its user-facing result. ``iterations`` counts the batch's
    BSP iterations (the longest lane); ``lane_iterations[k]`` the
    iterations lane k was live.

    For algorithms whose active vertices are always among this iteration's
    *updated* vertices (BFS, default SSSP - every shipped
    ``supports_multi_source`` configuration), lanes evolve in lockstep
    with their independent runs, so ``lane_iterations[k]`` equals the
    single-source iteration count. Delta-stepping SSSP is the exception:
    its active mask can re-admit vertices left pending in earlier buckets,
    which makes even a *single* run's iteration trajectory depend on the
    filter each iteration happens to use (the ballot worklist carries
    those pending vertices, the online worklist only this iteration's
    recordings) - so a batch, which makes one union filter decision, may
    reach the same final metadata in a different number of iterations.
    """

    system: str
    algorithm: str
    graph: str
    sources: List[int]
    metadata: Optional[np.ndarray]      # (num_lanes, num_vertices)
    values: Optional[np.ndarray]        # (num_lanes, num_vertices)
    elapsed_us: float
    iterations: int
    lane_iterations: List[int] = field(default_factory=list)
    device: str = ""
    failed: bool = False
    failure_reason: str = ""
    kernel_launches: int = 0
    filter_trace: List[str] = field(default_factory=list)
    direction_trace: List[str] = field(default_factory=list)
    iteration_records: List[IterationRecord] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def num_lanes(self) -> int:
        return len(self.sources)

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_us / 1000.0

    @property
    def queries_per_second(self) -> float:
        """Simulated throughput: answered queries per simulated second."""
        if self.failed or self.elapsed_us == 0:
            return float("nan")
        return self.num_lanes / (self.elapsed_us / 1e6)

    def lane_values(self, lane: int) -> np.ndarray:
        """User-facing result of one query lane."""
        if self.values is None:
            raise ValueError("failed batch run has no values")
        return self.values[lane]

    @classmethod
    def failure(
        cls,
        system: str,
        algorithm: str,
        graph: str,
        sources: List[int],
        reason: str,
        *,
        device: str = "",
    ) -> "BatchRunResult":
        return cls(
            system=system,
            algorithm=algorithm,
            graph=graph,
            sources=list(sources),
            metadata=None,
            values=None,
            elapsed_us=float("inf"),
            iterations=0,
            device=device,
            failed=True,
            failure_reason=reason,
        )


def aggregate_time_us(records: List[IterationRecord]) -> Dict[str, float]:
    """Total simulated time split by component across iterations."""
    return {
        "compute_us": sum(r.compute_us for r in records),
        "filter_us": sum(r.filter_us for r in records),
        "barrier_us": sum(r.barrier_us for r in records),
        "launch_us": sum(r.launch_us for r in records),
    }


@dataclass
class PhaseTiming:
    """One consecutive same-direction phase of a run (Section 5 clustering)."""

    direction: str
    start_iteration: int
    iterations: int
    frontier_edges: int
    active_edges: int
    compute_us: float
    filter_us: float
    barrier_us: float
    launch_us: float

    @property
    def total_us(self) -> float:
        return self.compute_us + self.filter_us + self.barrier_us + self.launch_us

    @property
    def compute_us_per_edge(self) -> float:
        """Measured compute cost per walked edge (the calibration signal)."""
        if self.frontier_edges == 0:
            return float("nan")
        return self.compute_us / self.frontier_edges


def phase_timings(records: List[IterationRecord]) -> List[PhaseTiming]:
    """Fold an iteration trace into consecutive same-direction phases."""
    phases: List[PhaseTiming] = []
    for r in records:
        if not phases or phases[-1].direction != r.direction:
            phases.append(
                PhaseTiming(
                    direction=r.direction,
                    start_iteration=r.iteration,
                    iterations=0,
                    frontier_edges=0,
                    active_edges=0,
                    compute_us=0.0,
                    filter_us=0.0,
                    barrier_us=0.0,
                    launch_us=0.0,
                )
            )
        phase = phases[-1]
        phase.iterations += 1
        phase.frontier_edges += r.frontier_edges
        phase.active_edges += r.active_edges
        phase.compute_us += r.compute_us
        phase.filter_us += r.filter_us
        phase.barrier_us += r.barrier_us
        phase.launch_us += r.launch_us
    return phases


def direction_summary(records: List[IterationRecord]) -> Dict[str, Dict[str, float]]:
    """Per-direction totals and per-edge compute cost over a whole run."""
    out: Dict[str, Dict[str, float]] = {}
    for direction in ("push", "pull"):
        rows = [r for r in records if r.direction == direction]
        if not rows:
            continue
        edges = sum(r.frontier_edges for r in rows)
        compute = sum(r.compute_us for r in rows)
        out[direction] = {
            "iterations": float(len(rows)),
            "frontier_edges": float(edges),
            "active_edges": float(sum(r.active_edges for r in rows)),
            "compute_us": compute,
            "filter_us": sum(r.filter_us for r in rows),
            "total_us": sum(r.total_us for r in rows),
            "compute_us_per_edge": compute / edges if edges else float("nan"),
        }
    return out


#: Condition-number bound above which the two-parameter pull fit is treated
#: as collinear (see :func:`calibrate_pull_constants`). For a two-column
#: design normalized to unit columns the condition number is
#: ``sqrt((1 + cos θ) / (1 - cos θ))`` with θ the angle between the
#: regressors: healthy fits (active fraction swinging across iterations,
#: BFS/SSSP-style) land around 5-30, WCC-style matrices whose gathers keep
#: 98-100% of edges active land in the hundreds, and the exactly-singular
#: case at ~1e16. Above 100 the fit amplifies model-mismatch residuals by
#: two orders of magnitude, which is where the recovered constants stop
#: being interpretable as costs.
COLLINEARITY_LIMIT = 100.0


def calibrate_pull_constants(
    push_records: List[IterationRecord],
    pull_records: List[IterationRecord],
) -> Dict[str, float]:
    """Fit the pull traffic-model constants from measured per-phase timings.

    The model prices a pull iteration's compute at ``c_scan`` per scanned
    in-edge (the frontier-bitmap test) plus ``c_active`` per
    frontier-sourced in-edge (the full per-edge work). Both constants are
    recovered by a least-squares fit of ``compute_us ~ c_scan * scanned +
    c_active * active`` over the pull iterations; the push iterations pin
    the reference cost ``c_push`` (measured push compute time per expanded
    edge). The ratios ``c_scan / c_push`` and ``c_active / c_push`` are
    directly comparable to ``TrafficModel.pull_scan_ops / push_edge_ops``
    (1/4 shipped) and ``pull_active_edge_ops / push_edge_ops`` (1 shipped),
    up to the memory-traffic share of iteration time the ops constants do
    not cover.

    When every pull iteration has the same active fraction (e.g. SpMV and
    BP gather all in-edges, so ``active == scanned``), the two regressors
    are collinear: the fit then reports the combined per-scanned-edge cost
    as ``fitted_scan_us_per_edge`` and NaN for the active term, with
    ``fit_rank`` = 1 flagging the degeneracy.

    *Near*-collinear matrices (WCC-style: gathers keep almost every edge
    active, so ``active ≈ scanned`` with only tiny variation) pass the
    exact-rank test but leave the two-parameter fit ill-conditioned - the
    least-squares solution then amplifies timing noise into huge
    positive/negative coefficient pairs that cancel. The fit therefore
    degrades to the same combined-cost fallback whenever the (column-
    normalized) design's condition number exceeds ``COLLINEARITY_LIMIT`` or
    either fitted cost comes out negative (cost constants are physically
    non-negative). ``fit_condition`` reports the measured condition number;
    ``fit_rank`` is 1 whenever the fallback was taken.
    """
    push_edges = sum(r.frontier_edges for r in push_records)
    push_compute = sum(r.compute_us for r in push_records)
    c_push = push_compute / push_edges if push_edges else float("nan")

    pull_rows = [r for r in pull_records if r.frontier_edges > 0]
    scanned = sum(r.frontier_edges for r in pull_rows)
    active = sum(r.active_edges for r in pull_rows)
    pull_compute = sum(r.compute_us for r in pull_rows)

    c_scan = c_active = float("nan")
    rank = 0
    condition = float("nan")
    if pull_rows:
        design = np.array(
            [[r.frontier_edges, r.active_edges] for r in pull_rows],
            dtype=np.float64,
        )
        target = np.array([r.compute_us for r in pull_rows], dtype=np.float64)
        rank = int(np.linalg.matrix_rank(design))
        # Condition number of the column-normalized design: scale-free, so
        # it measures only how close the two regressors are to collinear.
        norms = np.linalg.norm(design, axis=0)
        if np.all(norms > 0):
            singular = np.linalg.svd(design / norms, compute_uv=False)
            condition = (
                float(singular[0] / singular[-1])
                if singular[-1] > 0 else float("inf")
            )
        if rank >= 2 and condition <= COLLINEARITY_LIMIT:
            coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
            c_scan, c_active = float(coeffs[0]), float(coeffs[1])
            if c_scan < 0 or c_active < 0:
                # Noise-amplified cancelling pair: not a usable calibration.
                c_scan = c_active = float("nan")
                rank = 1
        else:
            rank = min(rank, 1)
        if rank < 2:
            # (Near-)collinear regressors: report the combined
            # per-scanned-edge cost instead of a meaningless split.
            c_scan = pull_compute / scanned if scanned else float("nan")
            c_active = float("nan")

    def _ratio(value: float) -> float:
        if not (np.isfinite(value) and np.isfinite(c_push) and c_push):
            return float("nan")
        return value / c_push

    return {
        "push_us_per_edge": c_push,
        "pull_us_per_scanned_edge": (
            pull_compute / scanned if scanned else float("nan")
        ),
        "pull_active_edge_fraction": active / scanned if scanned else float("nan"),
        "fitted_scan_us_per_edge": c_scan,
        "fitted_active_us_per_edge": c_active,
        "pull_scan_over_push_edge": _ratio(c_scan),
        "pull_active_over_push_edge": _ratio(c_active),
        "fit_rank": float(rank),
        "fit_condition": condition,
    }


def geometric_mean_speedup(speedups: List[float]) -> float:
    """Geometric mean ignoring NaNs/inf (failed comparisons)."""
    clean = [s for s in speedups if np.isfinite(s) and s > 0]
    if not clean:
        return float("nan")
    return float(np.exp(np.mean(np.log(clean))))
