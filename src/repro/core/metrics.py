"""Per-run metrics, iteration traces and result containers.

Every system in the repository (SIMD-X and the baselines) returns a
:class:`RunResult`, so the benchmark harness can compare them uniformly.
The iteration trace carries everything the paper's figures need: which filter
ran, which direction, how large the frontier was, and the simulated time of
each component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class IterationRecord:
    """One BSP iteration of a run.

    ``frontier_vertices`` is always the size of the active (push) frontier;
    ``frontier_edges`` counts the edges of the worklist the executed
    ``direction`` actually walked - the frontier's out-edges in push mode,
    the gather worklist's scanned in-edges in pull mode (which can span most
    of the graph, so their ratio is not a frontier degree in pull phases).
    """

    iteration: int
    direction: str
    frontier_vertices: int
    frontier_edges: int
    filter_used: str
    filter_overflowed: bool
    compute_us: float
    filter_us: float
    barrier_us: float
    launch_us: float

    @property
    def total_us(self) -> float:
        return self.compute_us + self.filter_us + self.barrier_us + self.launch_us


@dataclass
class RunResult:
    """Outcome of running one algorithm on one system.

    ``values`` is the user-facing result (distances, ranks, core flags...);
    ``elapsed_us`` the simulated GPU time (or modelled CPU time for the CPU
    baselines); ``failed``/``failure_reason`` record OOM or non-convergence
    the way Table 4's blank cells do.
    """

    system: str
    algorithm: str
    graph: str
    values: Optional[np.ndarray]
    elapsed_us: float
    iterations: int
    device: str = ""
    failed: bool = False
    failure_reason: str = ""
    kernel_launches: int = 0
    filter_trace: List[str] = field(default_factory=list)
    direction_trace: List[str] = field(default_factory=list)
    iteration_records: List[IterationRecord] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_us / 1000.0

    def speedup_over(self, other: "RunResult") -> float:
        """How many times faster this run is than ``other``."""
        if self.failed or other.failed:
            return float("nan")
        if self.elapsed_us == 0:
            return float("inf")
        return other.elapsed_us / self.elapsed_us

    def summary(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "algorithm": self.algorithm,
            "graph": self.graph,
            "device": self.device,
            "elapsed_ms": round(self.elapsed_ms, 4),
            "iterations": self.iterations,
            "kernel_launches": self.kernel_launches,
            "failed": self.failed,
            "failure_reason": self.failure_reason,
        }

    @classmethod
    def failure(
        cls,
        system: str,
        algorithm: str,
        graph: str,
        reason: str,
        *,
        device: str = "",
    ) -> "RunResult":
        """Construct the record for a failed run (OOM, non-convergence)."""
        return cls(
            system=system,
            algorithm=algorithm,
            graph=graph,
            values=None,
            elapsed_us=float("inf"),
            iterations=0,
            device=device,
            failed=True,
            failure_reason=reason,
        )


def aggregate_time_us(records: List[IterationRecord]) -> Dict[str, float]:
    """Total simulated time split by component across iterations."""
    return {
        "compute_us": sum(r.compute_us for r in records),
        "filter_us": sum(r.filter_us for r in records),
        "barrier_us": sum(r.barrier_us for r in records),
        "launch_us": sum(r.launch_us for r in records),
    }


def geometric_mean_speedup(speedups: List[float]) -> float:
    """Geometric mean ignoring NaNs/inf (failed comparisons)."""
    clean = [s for s in speedups if np.isfinite(s) and s > 0]
    if not clean:
        return float("nan")
    return float(np.exp(np.mean(np.log(clean))))
