"""Task-management filters (Section 4).

A *filter* turns the updates of one iteration into the next iteration's
active worklist. The paper contributes two filters and compares them to three
prior-work designs, all of which are implemented here so the ablation
experiments (Figure 12, and the related-work comparisons in Section 8) can be
reproduced:

* :class:`OnlineFilter`  -- record updated destinations into bounded
  per-thread bins *while computing*; extremely cheap when the frontier is
  small, but the bins can overflow (SIMD-X's contribution).
* :class:`BallotFilter`  -- update the metadata first, then perform a
  coalesced scan of the whole metadata array using warp ballots, producing a
  sorted, duplicate-free worklist (SIMD-X's contribution).
* :class:`BatchFilter`   -- Gunrock/B40C style: materialize the full active
  *edge* list (up to 2|E| memory), then compact the updated destinations;
  unsorted, redundant, memory hungry.
* :class:`StridedFilter` -- Enterprise/iBFS style metadata scan with strided
  (non-coalesced) accesses; correct but slow.
* :class:`AtomicFilter`  -- append active vertices to a global list with
  atomics (Luo et al.); correct but serializes on the list tail.

The paper's Section 4 pipeline has two more pieces that live elsewhere but
are parameterized here-ish for reference:

* **Worklist separators** (step I): the produced worklist is split into
  small / medium / large sub-lists by degree so the Thread / Warp / CTA
  kernels get similarly-sized tasks. The separators default to 32 (the warp
  size) and 256 (the CTA reduction width) - see
  :class:`repro.core.frontier.WorklistClassifier` and the sweep in
  ``benchmarks/test_sec4_worklist_separators.py``.
* **Decision thresholds** (step II): the JIT controller
  (:class:`repro.core.jit.JITTaskManager`) starts on the online filter and
  switches to ballot when a thread bin exceeds the overflow threshold
  (64 entries by default, the Figure 9a knob); a non-overflowing shadow run
  switches back. The controller is also direction-aware: pull phases force
  the online filter (a gather worker records at most one destination) and a
  pull->push switch pre-arms the ballot filter.

Each filter performs the *functional* worklist construction with NumPy and
reports the work a GPU implementation would have done, so the engine can
charge the device cost model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.gpu.kernel import WorkEstimate
from repro.gpu import memory as gmem
from repro.gpu.primitives import compact_flags, concatenate_bins
from repro.core.frontier import ThreadBins


class FilterMode(enum.Enum):
    """User-selectable task-management strategies."""

    JIT = "jit"
    ONLINE = "online"
    BALLOT = "ballot"
    BATCH = "batch"
    STRIDED = "strided"
    ATOMIC = "atomic"


class FilterOverflowError(RuntimeError):
    """Raised when a standalone online filter overflows its thread bins.

    Under JIT control overflow is handled by switching filters; when the user
    forces ``FilterMode.ONLINE`` the worklist would be silently incomplete,
    so the engine surfaces the failure instead (these are the blank "cannot
    complete" cells of Figure 12 for the online-only configuration).
    """


@dataclass
class FilterContext:
    """Everything a filter may need for one iteration.

    Attributes
    ----------
    num_vertices:
        Total vertex count (ballot/strided filters scan all of them).
    updated_destinations:
        Destination vertex of every update that *changed* metadata this
        iteration, duplicates included (online/batch/atomic filters record
        these as they happen).
    producer_thread:
        For each entry of ``updated_destinations``, the index of the
        simulated thread (frontier slot) that produced it; used to assign
        bin ownership for the online filter.
    active_mask:
        Boolean mask over all vertices, true where the algorithm's ``Active``
        function holds after this iteration's updates (ballot/strided filters
        recompute the worklist from this).
    frontier_edges:
        Edges expanded this iteration (batch filter materializes them).
    num_worker_threads:
        Number of simulated worker threads owning online-filter bins.
    max_producer_records:
        Static upper bound on the entries a single worker can record this
        iteration: the maximum out-degree of the frontier in push mode, 1 in
        pull mode (a gather worker records only its own destination). The
        JIT controller compares it against the overflow threshold to decide
        whether bounded bins can be trusted without waiting for the dynamic
        overflow signal.
    success_rate:
        Estimated share of this iteration's offers that can still land (a
        worker records an entry only when its update *changes* a
        destination). The engine estimates it as the updatable-vertex share
        before the iteration ran - the unvisited share for BFS, the
        surviving-core share for k-Core - and the JIT controller scales
        ``max_producer_records`` by it, so a hub whose neighbourhood is
        mostly settled no longer pre-arms the ballot filter at a pull->push
        switch. 1.0 (every offer may succeed) keeps the unscaled bound.
    """

    num_vertices: int
    updated_destinations: np.ndarray
    producer_thread: np.ndarray
    active_mask: np.ndarray
    frontier_edges: int
    num_worker_threads: int
    max_producer_records: int = 0
    success_rate: float = 1.0


@dataclass
class FilterResult:
    """Worklist plus the cost and quality attributes of producing it."""

    worklist: np.ndarray
    work: WorkEstimate
    overflowed: bool = False
    is_sorted: bool = False
    is_unique: bool = False
    extra_memory_bytes: int = 0

    @property
    def sortedness(self) -> float:
        return gmem.worklist_sortedness(self.worklist)

    @property
    def redundancy(self) -> float:
        return gmem.redundancy_factor(self.worklist)


class Filter:
    """Base class: one :meth:`build` call per iteration."""

    name = "filter"

    def build(self, ctx: FilterContext) -> FilterResult:  # pragma: no cover - abstract
        raise NotImplementedError


class OnlineFilter(Filter):
    """Record updated destinations in bounded per-thread bins while computing.

    The recording itself is almost free (a register write and a store into a
    thread-private bin), so the only charged work is writing the recorded
    entries and concatenating the bins with a prefix scan. The produced
    worklist may contain duplicates and is not sorted (Figure 6(c)).
    """

    name = "online"

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity

    def build(self, ctx: FilterContext) -> FilterResult:
        bins = ThreadBins(
            num_threads=max(1, ctx.num_worker_threads), capacity=self.capacity
        )
        bins.scatter(ctx.updated_destinations, ctx.producer_thread)
        concat = concatenate_bins(bins.bins)
        record_work = WorkEstimate(
            coalesced_bytes=gmem.sequential_bytes(
                int(ctx.updated_destinations.size), gmem.VERTEX_ID_BYTES
            ),
            compute_ops=float(ctx.updated_destinations.size),
        )
        return FilterResult(
            worklist=concat.values,
            work=record_work.merged_with(concat.work),
            overflowed=bins.overflowed,
            is_sorted=False,
            is_unique=False,
        )


class BallotFilter(Filter):
    """Scan the metadata array with warp ballots to build a sorted worklist.

    Consecutive threads inspect consecutive vertices (coalesced reads of the
    current and previous metadata), each warp votes with ``__ballot`` and
    lane 0 writes the warp's active vertices to its output range, which keeps
    the global worklist sorted and duplicate-free (Figure 6(b)). The cost is
    dominated by the full metadata scan - O(|V|) regardless of how few
    vertices are active, which is exactly its weakness on high-diameter
    graphs.
    """

    name = "ballot"

    def build(self, ctx: FilterContext) -> FilterResult:
        compacted = compact_flags(ctx.active_mask)
        scan_work = WorkEstimate(
            coalesced_bytes=gmem.metadata_scan_bytes(ctx.num_vertices),
            compute_ops=float(ctx.num_vertices),
            warp_primitive_ops=float(-(-ctx.num_vertices // 32)),
        )
        return FilterResult(
            worklist=compacted.values,
            work=scan_work.merged_with(compacted.work),
            overflowed=False,
            is_sorted=True,
            is_unique=True,
        )


class BatchFilter(Filter):
    """Gunrock/B40C-style batch filter (Figure 6(a)).

    Materializes the active edge list in device memory (reported via
    ``extra_memory_bytes`` so the engine can attempt the allocation and hit
    OOM on large frontiers), then records updated destinations in thread bins
    of unbounded size and concatenates them. The output is unsorted and
    redundant.
    """

    name = "batch"

    #: Bytes per active-edge-list entry: source, destination, weight.
    EDGE_ENTRY_BYTES = 12

    def build(self, ctx: FilterContext) -> FilterResult:
        edge_list_bytes = ctx.frontier_edges * self.EDGE_ENTRY_BYTES
        materialize_work = WorkEstimate(
            coalesced_bytes=2.0 * edge_list_bytes,  # write then re-read
            compute_ops=float(ctx.frontier_edges),
        )
        # Unbounded per-thread bins, then concatenation (no atomics).
        dests = ctx.updated_destinations
        record_work = WorkEstimate(
            coalesced_bytes=gmem.sequential_bytes(int(dests.size), gmem.VERTEX_ID_BYTES) * 2,
            compute_ops=float(dests.size),
        )
        worklist = np.asarray(dests, dtype=np.int64).copy()
        return FilterResult(
            worklist=worklist,
            work=materialize_work.merged_with(record_work),
            overflowed=False,
            is_sorted=False,
            is_unique=False,
            extra_memory_bytes=edge_list_bytes,
        )


class StridedFilter(Filter):
    """Metadata scan with strided thread-to-vertex assignment.

    Functionally identical to the ballot filter, but each thread strides
    through the metadata array (thread t reads vertices t, t + T, t + 2T...),
    so no read coalesces: the scan costs one transaction per vertex instead
    of one per eight, the 16x slowdown the paper attributes to Enterprise's
    strided filter.
    """

    name = "strided"

    def build(self, ctx: FilterContext) -> FilterResult:
        compacted = compact_flags(ctx.active_mask)
        scan_work = WorkEstimate(
            scattered_transactions=gmem.scattered_accesses(2 * ctx.num_vertices),
            compute_ops=float(ctx.num_vertices),
        )
        return FilterResult(
            worklist=compacted.values,
            work=scan_work.merged_with(compacted.work),
            overflowed=False,
            is_sorted=True,
            is_unique=True,
        )


class AtomicFilter(Filter):
    """Append updated destinations to a global worklist with atomics.

    Every recorded vertex performs an ``atomicAdd`` on the shared tail
    pointer, so all appends serialize on one address; the produced worklist
    is unsorted and redundant.
    """

    name = "atomic"

    def build(self, ctx: FilterContext) -> FilterResult:
        dests = np.asarray(ctx.updated_destinations, dtype=np.int64)
        work = WorkEstimate(
            coalesced_bytes=gmem.sequential_bytes(int(dests.size), gmem.VERTEX_ID_BYTES),
            compute_ops=float(dests.size),
            atomic_ops=float(dests.size),
            # All appends contend on the single tail counter.
            atomic_contention=float(max(1, dests.size)),
        )
        return FilterResult(
            worklist=dests.copy(),
            work=work,
            overflowed=False,
            is_sorted=False,
            is_unique=False,
        )


def make_filter(mode: FilterMode, *, online_capacity: int = 64) -> Filter:
    """Instantiate the filter for a non-JIT mode."""
    if mode == FilterMode.ONLINE:
        return OnlineFilter(capacity=online_capacity)
    if mode == FilterMode.BALLOT:
        return BallotFilter()
    if mode == FilterMode.BATCH:
        return BatchFilter()
    if mode == FilterMode.STRIDED:
        return StridedFilter()
    if mode == FilterMode.ATOMIC:
        return AtomicFilter()
    raise ValueError(f"{mode} is not a standalone filter (use JITTaskManager)")
