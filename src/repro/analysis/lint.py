"""Repo-specific AST lint rules behind ``tools/repro_lint.py``.

Five rules, each encoding a convention the test suite cannot check
structurally:

======== ================== ====================================================
id       name               what it flags
======== ================== ====================================================
REPRO001 extra-key          a string-literal ``RunResult.extra`` key (read,
                            write or membership test) that is not registered
                            in :mod:`repro.analysis.registry`
REPRO002 unseeded-rng       ``np.random`` legacy global-state calls, no-arg
                            ``default_rng()`` and stdlib ``random`` module use
                            (``src/`` only - tests may draw from fixtures)
REPRO003 counter-decrement  ``-=`` on an accounting counter (``*_us``,
                            ``*_count``, ``*_iterations``, ...) - counters are
                            increment-only by contract
REPRO004 float-eq-converged ``==`` / ``!=`` against a float constant or the
                            metadata arrays inside a ``converged()``
                            implementation (use tolerances or integer state)
REPRO005 acc-describe       a direct ``ACCAlgorithm`` subclass that does not
                            implement ``describe()`` (``src/`` only)
======== ================== ====================================================

Suppressions:

* line level - trailing ``# repro-lint: disable=REPRO001`` (comma-separate
  several ids; rule names work too);
* file level - ``# repro-lint: disable-file=REPRO002`` anywhere in the file.

The checker is pure :mod:`ast` - no imports of the linted code - so it runs
on defect fixtures and broken snippets alike.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis import registry

EXTRA_KEY = "REPRO001"
UNSEEDED_RNG = "REPRO002"
COUNTER_DECREMENT = "REPRO003"
FLOAT_EQ_CONVERGED = "REPRO004"
ACC_DESCRIBE = "REPRO005"

RULE_NAMES: Dict[str, str] = {
    EXTRA_KEY: "extra-key",
    UNSEEDED_RNG: "unseeded-rng",
    COUNTER_DECREMENT: "counter-decrement",
    FLOAT_EQ_CONVERGED: "float-eq-converged",
    ACC_DESCRIBE: "acc-describe",
}
_NAME_TO_ID = {name: rule_id for rule_id, name in RULE_NAMES.items()}

#: Rules that only apply to shipped code under ``src/``.
SRC_ONLY_RULES = {UNSEEDED_RNG, ACC_DESCRIBE}

#: Accounting-counter naming convention: increment-only by contract.
_COUNTER_SUFFIXES = (
    "_us", "_count", "_counter", "_counters", "_launches", "_iterations",
    "_switches", "_splits", "_pairs", "_edges", "_ops", "_walked", "_scanned",
)

#: ``np.random`` members that are explicitly seeded constructions.
_SEEDED_RNG_FACTORIES = {"default_rng", "Generator", "SeedSequence", "PCG64",
                         "Philox", "MT19937", "BitGenerator"}

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<file>-file)?\s*=\s*(?P<rules>[\w,\-]+)"
)


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def rule_name(self) -> str:
        return RULE_NAMES.get(self.rule, self.rule)

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.rule_name}] {self.message}"
        )


def _normalize_rules(raw: str) -> Set[str]:
    rules: Set[str] = set()
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        rules.add(_NAME_TO_ID.get(token, token.upper()))
    return rules


def _suppressions(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """(file-wide suppressed rules, per-line suppressed rules)."""
    file_rules: Set[str] = set()
    line_rules: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = _normalize_rules(match.group("rules"))
        if match.group("file"):
            file_rules |= rules
        else:
            line_rules.setdefault(lineno, set()).update(rules)
    return file_rules, line_rules


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, src_scope: bool):
        self.path = path
        self.src_scope = src_scope
        self.findings: List[Finding] = []
        #: Local names bound to the numpy module / np.random / stdlib random.
        self._numpy_aliases: Set[str] = set()
        self._nprandom_aliases: Set[str] = set()
        self._random_aliases: Set[str] = set()
        self._converged_depth = 0
        self._converged_params: Set[str] = set()

    # ------------------------------------------------------------------
    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in SRC_ONLY_RULES and not self.src_scope:
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -------------------------- imports ------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy":
                self._numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname is not None:
                    self._nprandom_aliases.add(alias.asname)
                else:
                    self._numpy_aliases.add("numpy")
            elif alias.name == "random":
                self._random_aliases.add(bound)
                self._add(
                    node, UNSEEDED_RNG,
                    "stdlib random draws from hidden global state; use "
                    "np.random.default_rng(seed)",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy" and node.level == 0:
            for alias in node.names:
                if alias.name == "random":
                    self._nprandom_aliases.add(alias.asname or "random")
        self.generic_visit(node)

    # ------------------------ REPRO001: extra keys --------------------
    @staticmethod
    def _is_extra_expr(node: ast.AST) -> bool:
        return (
            (isinstance(node, ast.Attribute) and node.attr == "extra")
            or (isinstance(node, ast.Name) and node.id == "extra")
        )

    def _check_extra_key(self, node: ast.AST, key_node: ast.AST) -> None:
        if not (
            isinstance(key_node, ast.Constant)
            and isinstance(key_node.value, str)
        ):
            return
        key = key_node.value
        if not registry.is_registered(key):
            self._add(
                key_node, EXTRA_KEY,
                f"RunResult.extra key {key!r} is not registered in "
                f"repro.analysis.registry",
            )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_extra_expr(node.value):
            self._check_extra_key(node, node.slice)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # "key" in result.extra
        if (
            len(node.ops) == 1
            and isinstance(node.ops[0], (ast.In, ast.NotIn))
            and self._is_extra_expr(node.comparators[0])
        ):
            self._check_extra_key(node, node.left)
        if self._converged_depth:
            self._check_converged_compare(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # result.extra.get("key", ...)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "get"
            and self._is_extra_expr(func.value)
            and node.args
        ):
            self._check_extra_key(node, node.args[0])
        # extra={"key": ...} keyword of a result construction
        for keyword in node.keywords:
            if keyword.arg == "extra" and isinstance(keyword.value, ast.Dict):
                for key_node in keyword.value.keys:
                    if key_node is not None:
                        self._check_extra_key(node, key_node)
        self._check_rng_call(node)
        self.generic_visit(node)

    # ------------------------ REPRO002: unseeded RNG ------------------
    def _rng_root(self, node: ast.AST) -> Optional[str]:
        """'legacy' for np.random.<fn>, 'module' for the np.random module."""
        if isinstance(node, ast.Attribute):
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in self._numpy_aliases
            ):
                return node.attr
            if (
                isinstance(value, ast.Name)
                and value.id in self._nprandom_aliases
            ):
                return node.attr
        return None

    def _check_rng_call(self, node: ast.Call) -> None:
        func = node.func
        member = self._rng_root(func)
        if member is not None:
            if member == "default_rng" and not node.args:
                self._add(
                    node, UNSEEDED_RNG,
                    "default_rng() without a seed is non-reproducible; pass "
                    "an explicit seed",
                )
            elif member not in _SEEDED_RNG_FACTORIES:
                self._add(
                    node, UNSEEDED_RNG,
                    f"np.random.{member} uses the legacy global RNG; use "
                    f"np.random.default_rng(seed)",
                )
            return
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._random_aliases
        ):
            if func.attr == "Random" and node.args:
                return  # random.Random(seed) is explicitly seeded
            self._add(
                node, UNSEEDED_RNG,
                f"random.{func.attr} draws from hidden global state; use "
                f"np.random.default_rng(seed)",
            )

    # --------------------- REPRO003: counter decrements ---------------
    @staticmethod
    def _target_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None  # subscripts (metadata[u] -= ...) are data, not counters

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Sub):
            name = self._target_name(node.target)
            if name is not None and name.endswith(_COUNTER_SUFFIXES):
                self._add(
                    node, COUNTER_DECREMENT,
                    f"accounting counter {name!r} is decremented; counters "
                    f"are increment-only by contract",
                )
        self.generic_visit(node)

    # ------------------ REPRO004: float == in converged ---------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        if node.name != "converged":
            self.generic_visit(node)
            return
        params = [a.arg for a in node.args.args if a.arg != "self"]
        # The metadata arrays by ACC convention: converged(curr, prev, it).
        outer = self._converged_params
        self._converged_params = set(params[:2])
        self._converged_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._converged_depth -= 1
            self._converged_params = outer

    def _references_metadata(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in self._converged_params:
                return True
        return False

    def _check_converged_compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands[:-1], operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            float_const = any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in (left, right)
            )
            metadata_ref = self._references_metadata(
                left
            ) or self._references_metadata(right)
            if float_const or metadata_ref:
                self._add(
                    node, FLOAT_EQ_CONVERGED,
                    "float equality in converged(); compare with a "
                    "tolerance or track integer state instead",
                )
                return

    # --------------------- REPRO005: describe() -----------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        is_acc_subclass = any(
            (isinstance(base, ast.Name) and base.id == "ACCAlgorithm")
            or (isinstance(base, ast.Attribute) and base.attr == "ACCAlgorithm")
            for base in node.bases
        )
        if is_acc_subclass:
            has_describe = any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "describe"
                for item in node.body
            )
            if not has_describe:
                self._add(
                    node, ACC_DESCRIBE,
                    f"ACC algorithm {node.name!r} does not implement "
                    f"describe(); shipped algorithms must be introspectable",
                )
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>", *, src_scope: bool = True
) -> List[Finding]:
    """Lint python ``source``; ``src_scope`` enables the src-only rules."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule="SYNTAX",
                message=f"cannot parse: {exc.msg}",
            )
        ]
    checker = _Checker(path, src_scope)
    checker.visit(tree)
    file_rules, line_rules = _suppressions(source)
    return [
        f for f in checker.findings
        if f.rule not in file_rules
        and f.rule not in line_rules.get(f.line, set())
    ]


def _is_src_scoped(path: Path) -> bool:
    return "src" in path.resolve().parts


def lint_file(path, *, src_scope: Optional[bool] = None) -> List[Finding]:
    path = Path(path)
    if src_scope is None:
        src_scope = _is_src_scoped(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), src_scope=src_scope)


def iter_python_files(paths: Sequence) -> Iterable[Path]:
    """Every .py file under ``paths`` (dirs walked, caches skipped)."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for file in sorted(entry.rglob("*.py")):
                if "__pycache__" not in file.parts:
                    yield file
        elif entry.suffix == ".py":
            yield entry


def lint_paths(paths: Sequence) -> List[Finding]:
    """Lint every python file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_file(file))
    return findings
