"""Central registry of every ``RunResult.extra`` key in the repository.

``RunResult.extra`` / ``BatchRunResult.extra`` are stringly-typed mappings,
which makes them the one result surface the type system cannot protect: a
typo'd key on the write side produces a silently-missing metric, a typo'd
key on the read side a ``KeyError`` only on the code path a test happens to
execute. Every key is therefore declared here, once, with a description and
the producers that write it:

* **writers** in ``src/`` reference the module-level constants
  (``registry.FUSION`` etc.) instead of repeating string literals;
* **readers** (tests, benchmarks, experiment scripts) may keep literal
  keys, but the AST lint pass (:mod:`repro.analysis.lint`, rule
  ``extra-key``) checks every literal read or written against this
  registry - an unregistered literal is a lint failure;
* the **runtime sanitizer** (:mod:`repro.analysis.sanitizer`) validates
  the keys of a finished run's ``extra`` mapping against the registry, so
  even dynamically-built keys are caught when a sanitized run ships them.

Adding a key is one :func:`register` call; removing one is deleting it and
letting the linter point at every stale reader.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple


@dataclass(frozen=True)
class ExtraKey:
    """Declaration of one ``RunResult.extra`` key."""

    name: str
    description: str
    #: Which code produces the key ("engine", "batch", "baseline",
    #: "sanitizer", ...). Informational - shown by the lint CLI's
    #: ``--list-keys``.
    producers: Tuple[str, ...] = ()
    #: True for cumulative accounting counters: the value is a
    #: non-negative total that a run may only ever grow. The sanitizer
    #: cross-checks these against the iteration records.
    monotone_counter: bool = False


_REGISTRY: Dict[str, ExtraKey] = {}


def register(key: ExtraKey) -> str:
    """Register ``key`` and return its name (for constant definitions)."""
    if key.name in _REGISTRY:
        raise ValueError(f"extra key {key.name!r} registered twice")
    _REGISTRY[key.name] = key
    return key.name


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def registered_keys() -> Mapping[str, ExtraKey]:
    """Read-only view of the full registry."""
    return dict(_REGISTRY)


def monotone_counter_keys() -> List[str]:
    """Names of the registered cumulative accounting counters."""
    return [k.name for k in _REGISTRY.values() if k.monotone_counter]


def unknown_keys(extra: Mapping[str, object]) -> List[str]:
    """The keys of ``extra`` that are not registered (sorted)."""
    return sorted(k for k in extra if not is_registered(k))


# ----------------------------------------------------------------------
# Engine keys (single-source and batched runs)
# ----------------------------------------------------------------------
FUSION = register(ExtraKey(
    "fusion",
    "Kernel-fusion strategy the run executed (FusionStrategy.value).",
    producers=("engine", "batch"),
))
FILTER_MODE = register(ExtraKey(
    "filter_mode",
    "Task-management filter mode of the run (FilterMode.value).",
    producers=("engine", "batch"),
))
DIRECTION_SWITCHES = register(ExtraKey(
    "direction_switches",
    "Push<->pull switches of the (union) direction selector.",
    producers=("engine", "batch"),
    monotone_counter=True,
))
BREAKDOWN = register(ExtraKey(
    "breakdown",
    "Per-kernel simulated-time breakdown from the device profiler.",
    producers=("engine", "batch"),
))
JIT_PRE_ARMED_ITERATIONS = register(ExtraKey(
    "jit_pre_armed_iterations",
    "Iterations whose ballot filter was pre-armed at a pull->push switch.",
    producers=("engine", "batch"),
))

KERNEL_BACKEND = register(ExtraKey(
    "kernel_backend",
    "Execution backend of the CSR-walk kernel primitives "
    "(EngineConfig.kernel_backend: 'numpy' vectorized or 'python' "
    "loop reference - bit-identical results, different wall-clock).",
    producers=("engine", "batch", "shard"),
))
KERNEL_EDGES_WALKED = register(ExtraKey(
    "kernel_edges_walked",
    "Edges expanded by the backend's CSR walks across the whole run; "
    "equals the iteration records' frontier_edges total on every path "
    "(single, batched, sharded) - the sanitizer enforces the identity.",
    producers=("engine", "batch", "shard"),
    monotone_counter=True,
))

# ----------------------------------------------------------------------
# Batched-run amortization bookkeeping
# ----------------------------------------------------------------------
UNION_EDGES_WALKED = register(ExtraKey(
    "union_edges_walked",
    "Edges the union CSR walks touched across all iterations.",
    producers=("batch",),
    monotone_counter=True,
))
LANE_EDGE_PAIRS = register(ExtraKey(
    "lane_edge_pairs",
    "(edge, lane) pairs evaluated - what a serial execution would walk.",
    producers=("batch",),
    monotone_counter=True,
))
PULL_EDGES_SCANNED = register(ExtraKey(
    "pull_edges_scanned",
    "In-edges scanned by pull iterations (the quantity splitting shrinks).",
    producers=("batch",),
    monotone_counter=True,
))
SPLIT_ITERATIONS = register(ExtraKey(
    "split_iterations",
    "Iterations on which the batch executed as >1 sub-batch.",
    producers=("batch",),
))
LANE_SPLITS = register(ExtraKey(
    "lane_splits",
    "Number of split iterations (len of split_iterations).",
    producers=("batch",),
    monotone_counter=True,
))

# ----------------------------------------------------------------------
# Sharded multi-device execution (EngineConfig.num_shards > 1)
# ----------------------------------------------------------------------
SHARDS = register(ExtraKey(
    "shards",
    "Number of contiguous vertex-range shards the run executed on "
    "(== EngineConfig.num_shards).",
    producers=("shard",),
))
SHARD_BOUNDARY_UPDATES = register(ExtraKey(
    "shard_boundary_updates",
    "Valid updates that crossed a shard boundary (push updates routed to "
    "a remote owner + pull gathers reading a remote source) - the "
    "exchange traffic of the per-superstep merge.",
    producers=("shard",),
    monotone_counter=True,
))
SHARD_SCANNED_EDGES = register(ExtraKey(
    "shard_scanned_edges",
    "Per-shard scanned-edge totals (list of len shards); sums to the "
    "run's iteration-record frontier_edges total.",
    producers=("shard",),
))
SHARD_PEAK_BYTES = register(ExtraKey(
    "shard_peak_bytes",
    "Per-shard peak simulated device memory (list of len shards) - the "
    "quantity the Table-4 OOM regression bounds against one device.",
    producers=("shard",),
))

# ----------------------------------------------------------------------
# Serving layer (src/repro/serve/)
# ----------------------------------------------------------------------
SERVE_BATCH_FILL = register(ExtraKey(
    "serve_batch_fill",
    "Fill factor of a served batch: dispatched lanes / "
    "AdmissionPolicy.max_batch. 1.0 means the batch formed at max-K; "
    "smaller values mean the max_wait_ms deadline fired first.",
    producers=("serve",),
))
SERVE_QUEUE_WAIT_US = register(ExtraKey(
    "serve_queue_wait_us",
    "Mean queue wait of the batch's lanes in microseconds: time between "
    "a query's admission and its batch's dispatch (wall-clock in the "
    "live server, simulated time in the bench/experiments §9 sweep).",
    producers=("serve",),
))

# ----------------------------------------------------------------------
# Dynamic graphs and result reuse (src/repro/dyn/, src/repro/cache/)
# ----------------------------------------------------------------------
DYN_GRAPH_VERSION = register(ExtraKey(
    "dyn_graph_version",
    "DynamicGraph version the result is valid for (monotone update-batch "
    "counter; 0 is the pristine base graph).",
    producers=("dyn", "cache", "serve"),
))
DYN_REPAIR_MODE = register(ExtraKey(
    "dyn_repair_mode",
    "How IncrementalRecompute produced the result: 'incremental' "
    "(warm-start repair from the affected frontier) or 'from_scratch' "
    "(exact fallback through a normal engine run).",
    producers=("dyn",),
))
DYN_REPAIR_RESET_VERTICES = register(ExtraKey(
    "dyn_repair_reset_vertices",
    "Vertices whose value the repair plan invalidated (support-closure "
    "of the deleted edges for BFS/SSSP, whole touched components for "
    "WCC); 0 on the from-scratch fallback.",
    producers=("dyn",),
    monotone_counter=True,
))
DYN_REPAIR_SEED_VERTICES = register(ExtraKey(
    "dyn_repair_seed_vertices",
    "Size of the repair run's warm-start frontier (reset-set boundary + "
    "insert sources + the query source when reset); 0 on the "
    "from-scratch fallback.",
    producers=("dyn",),
    monotone_counter=True,
))
CACHE_OUTCOME = register(ExtraKey(
    "cache_outcome",
    "How the result cache answered a query: 'hit' (stored values at the "
    "current graph version), 'repair' (stale entry repaired forward "
    "through the update receipts), or 'miss' (normal engine run).",
    producers=("cache", "serve"),
))

# ----------------------------------------------------------------------
# Baselines and analysis
# ----------------------------------------------------------------------
MODEL = register(ExtraKey(
    "model",
    "One-line description of a baseline's execution model.",
    producers=("baseline",),
))
SANITIZER = register(ExtraKey(
    "sanitizer",
    "Machine-readable report of the runtime sanitizer "
    "(EngineConfig.sanitize=True): violation list + per-check counts.",
    producers=("sanitizer",),
))
