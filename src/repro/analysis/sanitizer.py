"""Runtime sanitizer for the simulated SIMD-X engine.

Enabled with ``EngineConfig.sanitize=True``, the sanitizer shadows each
superstep's functional execution and turns the ACC model's implicit
contracts into checked invariants:

* **non-combined writes / write-write conflicts** - the paper's central
  claim is that ACC eliminates atomics *by construction*: a push update is
  only valid if it flows through the ``CombineOp`` segment reduction
  before touching vertex state. The sanitizer records every update stream
  an ACC hook produces and every ``apply`` the engine commits, rebuilds
  the metadata a faithful Compute->Combine->apply sequence would have
  produced, and compares it to the real metadata at superstep end. A
  mismatch on a ``(lane, vertex)`` that received several concurrent
  updates is a *write-write conflict* (it would have required an atomic
  on real hardware); any other mismatch is a *non-combined write*.
* **phase order** - gathers and scatters must read iteration-start
  metadata: operands are compared bit-for-bit against the superstep's
  snapshot, so a gather that observes metadata mutated earlier in the
  same superstep is flagged.
* **lane remaps** - across a :meth:`BatchedFrontier.sub_batch`
  split/merge, the planned sub-batches must partition the live lanes and
  every view's lane must map back to exactly its own frontier.
* **impure hooks** - ACC hooks receive read-only views of caller-owned
  arrays; an in-place mutation raises inside NumPy and is converted to a
  violation. The graph's CSR arrays are additionally frozen
  (``writeable=False``) and checksummed before/after every superstep, so
  mutation through a stale writable alias is caught too.
* **accounting** - iteration records and result counters must be
  non-negative, consistent and (for registered counters) monotone; every
  ``RunResult.extra`` key must come from :mod:`repro.analysis.registry`.

The sanitizer *records, never re-executes*: ACC hooks may have internal
side effects (delta-SSSP's bucket advance, PageRank's pending reset), so
each hook is invoked exactly once per engine call and all checking happens
on the recorded streams. A violation raises :class:`SanitizerError`
(default) or is collected into the report
(``EngineConfig.sanitize_raise=False``); either way the machine-readable
report lands in ``RunResult.extra["sanitizer"]``.
"""

from __future__ import annotations

import collections
import enum
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import registry


class ViolationKind(enum.Enum):
    """Classes of ACC-contract violations the sanitizer detects."""

    NON_COMBINED_WRITE = "non-combined-write"
    WRITE_WRITE_CONFLICT = "write-write-conflict"
    PHASE_ORDER = "phase-order"
    LANE_REMAP = "lane-remap"
    IMPURE_HOOK = "impure-hook"
    CSR_MUTATION = "csr-mutation"
    ACCOUNTING = "accounting"
    EXTRA_KEY = "extra-key"


@dataclass(frozen=True)
class SanitizerViolation:
    """One detected contract violation."""

    kind: ViolationKind
    detail: str
    iteration: int = 0
    lane: Optional[int] = None
    vertices: Tuple[int, ...] = ()

    def as_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "detail": self.detail,
            "iteration": self.iteration,
            "lane": self.lane,
            "vertices": list(self.vertices),
        }

    def __str__(self) -> str:
        where = f"iteration {self.iteration}"
        if self.lane is not None:
            where += f", lane {self.lane}"
        if self.vertices:
            where += f", vertices {list(self.vertices)}"
        return f"[{self.kind.value}] {self.detail} ({where})"


class SanitizerError(RuntimeError):
    """Raised on the first violation when ``sanitize_raise`` is on."""

    def __init__(self, violations: Sequence[SanitizerViolation]):
        self.violations = list(violations)
        lines = "\n".join(f"  {v}" for v in self.violations)
        super().__init__(
            f"sanitizer detected {len(self.violations)} ACC-contract "
            f"violation(s):\n{lines}"
        )


#: Legal values of ``extra["dyn_repair_mode"]``.
DYN_REPAIR_MODES = ("incremental", "from_scratch")
#: Legal values of ``extra["cache_outcome"]``.
CACHE_OUTCOMES = ("hit", "repair", "miss")


def validate_dyn_extra(
    extra: Dict[str, object], *, raise_on_violation: bool = False
) -> List[str]:
    """Check the dynamic-update / cache annotations of an extra mapping.

    Returns the list of problems (empty when clean). These keys are
    written after the engine returns, so the dyn/cache layers call this
    directly on sanitized runs; the in-engine sanitizer routes through it
    too for runs that already carry the keys.
    """
    problems: List[str] = []
    version = extra.get(registry.DYN_GRAPH_VERSION)
    if version is not None:
        if (
            not isinstance(version, (int, np.integer))
            or isinstance(version, bool)
            or version < 0
        ):
            problems.append(
                f"extra[{registry.DYN_GRAPH_VERSION!r}] must be a "
                f"non-negative integer, got {version!r}"
            )
    mode = extra.get(registry.DYN_REPAIR_MODE)
    if mode is not None:
        if mode not in DYN_REPAIR_MODES:
            problems.append(
                f"extra[{registry.DYN_REPAIR_MODE!r}] = {mode!r} is not "
                f"one of {DYN_REPAIR_MODES}"
            )
        for key in (
            registry.DYN_REPAIR_RESET_VERTICES,
            registry.DYN_REPAIR_SEED_VERTICES,
        ):
            value = extra.get(key)
            if (
                not isinstance(value, (int, np.integer))
                or isinstance(value, bool)
                or value < 0
            ):
                problems.append(
                    f"repair run must carry a non-negative integer "
                    f"extra[{key!r}], got {value!r}"
                )
        if mode == "from_scratch":
            for key in (
                registry.DYN_REPAIR_RESET_VERTICES,
                registry.DYN_REPAIR_SEED_VERTICES,
            ):
                value = extra.get(key)
                if isinstance(value, (int, np.integer)) and int(value) != 0:
                    problems.append(
                        f"from-scratch fallback must report "
                        f"extra[{key!r}] = 0, got {value!r}"
                    )
    outcome = extra.get(registry.CACHE_OUTCOME)
    if outcome is not None and outcome not in CACHE_OUTCOMES:
        problems.append(
            f"extra[{registry.CACHE_OUTCOME!r}] = {outcome!r} is not one "
            f"of {CACHE_OUTCOMES}"
        )
    if problems and raise_on_violation:
        raise SanitizerError(
            [
                SanitizerViolation(kind=ViolationKind.ACCOUNTING, detail=p)
                for p in problems
            ]
        )
    return problems


def _equal_nan(a: np.ndarray, b: np.ndarray) -> bool:
    """Bit-for-bit array equality where NaN == NaN."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    if a.dtype.kind == "f" and b.dtype.kind == "f":
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


def _mismatch_mask(expected: np.ndarray, actual: np.ndarray) -> np.ndarray:
    eq = expected == actual
    if expected.dtype.kind == "f" and actual.dtype.kind == "f":
        eq |= np.isnan(expected) & np.isnan(actual)
    return ~eq


class RuntimeSanitizer:
    """Shadow checker for one engine run (single-source or batched).

    The engine drives it through a fixed protocol:

    * :meth:`wrap` every algorithm instance (the single algorithm, or the
      batch prototype plus each lane clone) so every ACC hook call is
      intercepted;
    * :meth:`freeze_graph` once before the loop, :meth:`release` in a
      ``finally``;
    * :meth:`begin_superstep` / :meth:`end_superstep` around each
      iteration's functional work;
    * :meth:`check_groups` / :meth:`check_sub_batch` at the batched
      loop's split points, :meth:`observe_record` per iteration record;
    * :meth:`validate_extra` on the finished ``extra`` mapping, then
      :meth:`report` for ``extra["sanitizer"]``.
    """

    def __init__(self, graph, *, raise_on_violation: bool = True):
        self.graph = graph
        self.raise_on_violation = raise_on_violation
        self.violations: List[SanitizerViolation] = []
        self._checks: collections.Counter = collections.Counter()
        self._supersteps = 0
        self._iteration = 0
        self._last_record_iteration = 0
        # Running frontier_edges total over the observed records - the
        # ground truth the per-shard scanned-edge breakdown must sum to.
        self._record_frontier_edges = 0
        # (array, previous writeable flag) of every frozen CSR array.
        self._frozen: List[Tuple[np.ndarray, bool]] = []
        self._frozen_ids: set = set()
        self._begin_checksums: Optional[List[int]] = None
        # Superstep shadow state, reset by begin_superstep.
        self._snapshot: Optional[np.ndarray] = None
        self._update_dsts: Dict[int, List[np.ndarray]] = {}
        self._combined_full: Dict[int, np.ndarray] = {}
        self._apply_records: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def wrap(self, algorithm, lane: Optional[int]) -> "_SanitizedAlgorithm":
        """Proxy ``algorithm`` so every ACC hook call is intercepted.

        ``lane`` is the metadata row the instance serves: ``0`` for a
        single-source run, the lane index for a batch clone, ``None`` for
        the batch prototype whose flattened calls carry their own
        ``lanes`` axis.
        """
        return _SanitizedAlgorithm(algorithm, self, lane)

    def freeze_graph(self) -> None:
        """Mark the graph's CSR arrays read-only (restored by release)."""
        views = [self.graph.out_csr]
        if getattr(self.graph, "in_csr_built", False):
            views.append(self.graph.in_csr)
        for view in views:
            for arr in (view.offsets, view.targets, view.weights):
                if id(arr) in self._frozen_ids:
                    continue
                self._frozen_ids.add(id(arr))
                self._frozen.append((arr, bool(arr.flags.writeable)))
                arr.flags.writeable = False

    def release(self) -> None:
        """Restore the CSR arrays' original writeable flags."""
        for arr, writeable in self._frozen:
            arr.flags.writeable = writeable
        self._frozen = []
        self._frozen_ids = set()

    # ------------------------------------------------------------------
    # Superstep shadow
    # ------------------------------------------------------------------
    def begin_superstep(self, iteration: int, metadata: np.ndarray) -> None:
        self._supersteps += 1
        self._iteration = iteration
        # The in-CSR is built lazily on the first pull iteration; freeze
        # it the superstep after it appears.
        self.freeze_graph()
        self._begin_checksums = self._graph_checksums()
        self._snapshot = np.array(metadata, dtype=np.float64, copy=True)
        self._update_dsts = {}
        self._combined_full = {}
        self._apply_records = {}
        self._checks["supersteps"] += 1

    def end_superstep(self, iteration: int, metadata: np.ndarray) -> None:
        if self._snapshot is None:
            return
        expected = self._snapshot.copy()
        for lane, recs in self._apply_records.items():
            for touched, new_values in recs:
                if expected.ndim == 2:
                    expected[lane, touched] = new_values
                else:
                    expected[touched] = new_values
        actual = np.asarray(metadata, dtype=np.float64)
        self._checks["metadata_compare"] += 1
        if not _equal_nan(expected, actual):
            self._report_metadata_mismatch(iteration, expected, actual)
        end_checksums = self._graph_checksums()
        if self._begin_checksums is not None and end_checksums != self._begin_checksums:
            self._violation(
                ViolationKind.CSR_MUTATION,
                "graph CSR arrays changed during the superstep (mutation "
                "through a stale writable alias?)",
            )
        self._snapshot = None

    def _report_metadata_mismatch(
        self, iteration: int, expected: np.ndarray, actual: np.ndarray
    ) -> None:
        mism = _mismatch_mask(expected, actual)
        per_lane = (
            [(lane, np.nonzero(mism[lane])[0]) for lane in range(mism.shape[0])]
            if mism.ndim == 2 else [(0, np.nonzero(mism)[0])]
        )
        for lane, vertices in per_lane:
            if vertices.size == 0:
                continue
            dst_streams = self._update_dsts.get(lane, [])
            dsts = (
                np.concatenate(dst_streams) if dst_streams
                else np.zeros(0, dtype=np.int64)
            )
            counts = np.bincount(dsts, minlength=int(actual.shape[-1])) if dsts.size else None
            conflicted = counts is not None and bool((counts[vertices] >= 2).any())
            if conflicted:
                kind = ViolationKind.WRITE_WRITE_CONFLICT
                detail = (
                    "metadata differs from the recorded Compute->Combine->"
                    "apply shadow on vertices that received concurrent "
                    "updates - a write-write conflict that bypassed the "
                    "CombineOp reduction (would-be atomic)"
                )
            else:
                kind = ViolationKind.NON_COMBINED_WRITE
                detail = (
                    "metadata was written outside the recorded "
                    "Compute->Combine->apply sequence"
                )
            self._violation(
                kind, detail, lane=lane, vertices=tuple(vertices[:8].tolist())
            )

    # ------------------------------------------------------------------
    # Batched-run structure checks
    # ------------------------------------------------------------------
    def check_groups(self, iteration: int, live, groups) -> None:
        """The planned sub-batches must partition the live lanes."""
        self._checks["group_plans"] += 1
        seen: List[int] = []
        for group in groups:
            seen.extend(int(l) for l in group.lanes)
        duplicates = sorted({l for l in seen if seen.count(l) > 1})
        if duplicates:
            self._violation(
                ViolationKind.LANE_REMAP,
                f"lanes {duplicates} assigned to more than one sub-batch",
            )
        live_set = {int(l) for l in live}
        if set(seen) != live_set:
            missing = sorted(live_set - set(seen))
            extra = sorted(set(seen) - live_set)
            self._violation(
                ViolationKind.LANE_REMAP,
                f"sub-batches do not partition the live lanes "
                f"(missing {missing}, unexpected {extra})",
            )

    def check_sub_batch(self, view, lanes, lane_frontiers, iteration: int) -> None:
        """A sub-batch view must map each lane to exactly its frontier."""
        self._checks["sub_batch_views"] += 1
        lanes = [int(l) for l in lanes]
        if view.lane_ids is not None:
            if [int(l) for l in view.lane_ids] != lanes:
                self._violation(
                    ViolationKind.LANE_REMAP,
                    f"sub-batch lane_ids {list(view.lane_ids)} do not match "
                    f"the planned lanes {lanes}",
                )
                return
            local_of = {lane: i for i, lane in enumerate(lanes)}
        else:
            local_of = {lane: lane for lane in lanes}
        parts = []
        for lane in lanes:
            frontier = lane_frontiers[lane]
            if frontier.size:
                parts.append(frontier)
            if not np.array_equal(view.lane_vertices(local_of[lane]), frontier):
                self._violation(
                    ViolationKind.LANE_REMAP,
                    "sub-batch view does not reproduce the lane's frontier "
                    "after the split remap",
                    lane=lane,
                )
        expected_union = (
            np.unique(np.concatenate(parts)) if parts
            else np.zeros(0, dtype=np.int64)
        )
        if not np.array_equal(view.vertices, expected_union):
            self._violation(
                ViolationKind.LANE_REMAP,
                "sub-batch union vertices differ from the union of the "
                "group lanes' frontiers",
            )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def observe_record(self, record) -> None:
        """Sanity-check one IterationRecord as the engine appends it."""
        self._checks["records"] += 1
        for attr in (
            "frontier_vertices", "frontier_edges", "active_edges",
            "lane_edge_pairs", "active_lanes",
            "compute_us", "filter_us", "barrier_us", "launch_us",
        ):
            value = getattr(record, attr)
            if value < 0:
                self._violation(
                    ViolationKind.ACCOUNTING,
                    f"iteration record field {attr} is negative ({value!r})",
                )
        if record.active_edges > record.frontier_edges:
            self._violation(
                ViolationKind.ACCOUNTING,
                f"active_edges ({record.active_edges}) exceeds the "
                f"iteration's walked edges ({record.frontier_edges})",
            )
        if record.iteration < self._last_record_iteration:
            self._violation(
                ViolationKind.ACCOUNTING,
                f"iteration counter went backwards "
                f"({self._last_record_iteration} -> {record.iteration})",
            )
        self._last_record_iteration = max(
            self._last_record_iteration, int(record.iteration)
        )
        self._record_frontier_edges += max(0, int(record.frontier_edges))

    def validate_extra(self, extra: Dict[str, object]) -> None:
        """Registry + counter checks on a finished run's extra mapping."""
        self._checks["extra_keys"] += 1
        for key in registry.unknown_keys(extra):
            self._violation(
                ViolationKind.EXTRA_KEY,
                f"RunResult.extra key {key!r} is not registered in "
                f"repro.analysis.registry",
            )
        for key in registry.monotone_counter_keys():
            if key not in extra:
                continue
            value = extra[key]
            if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
                self._violation(
                    ViolationKind.ACCOUNTING,
                    f"counter extra[{key!r}] must be an integer, got "
                    f"{type(value).__name__}",
                )
            elif value < 0:
                self._violation(
                    ViolationKind.ACCOUNTING,
                    f"counter extra[{key!r}] is negative ({value!r})",
                )
        self._validate_kernel_extra(extra)
        self._validate_shard_extra(extra)
        self._validate_dyn_extra(extra)

    def _validate_kernel_extra(self, extra: Dict[str, object]) -> None:
        """Kernel-backend invariants of a finished run's extra keys.

        A run that reports its backend must report a walk counter, the
        backend name must be a registered backend, and the walked-edge
        total must equal the iteration records' frontier_edges total -
        both backends expand exactly the edges the records charge for.
        """
        # Imported here, not at module top: repro.analysis loads before
        # repro.core when the lint CLI starts from the analysis package,
        # and a top-level import of repro.core.kernels would cycle back
        # through repro.core.engine -> this module.
        from repro.core import kernels

        if registry.KERNEL_BACKEND not in extra:
            return
        self._checks["kernel_extra"] += 1
        backend = extra[registry.KERNEL_BACKEND]
        if backend not in kernels.BACKEND_NAMES:
            self._violation(
                ViolationKind.ACCOUNTING,
                f"extra[{registry.KERNEL_BACKEND!r}] = {backend!r} is not a "
                f"known kernel backend {kernels.BACKEND_NAMES}",
            )
        walked = extra.get(registry.KERNEL_EDGES_WALKED)
        if walked is None:
            self._violation(
                ViolationKind.ACCOUNTING,
                f"run reports extra[{registry.KERNEL_BACKEND!r}] but is "
                f"missing extra[{registry.KERNEL_EDGES_WALKED!r}]",
            )
            return
        if (
            isinstance(walked, (int, np.integer))
            and not isinstance(walked, bool)
            and int(walked) != self._record_frontier_edges
        ):
            self._violation(
                ViolationKind.ACCOUNTING,
                f"extra[{registry.KERNEL_EDGES_WALKED!r}] = {int(walked)} "
                f"disagrees with the iteration records' frontier_edges "
                f"total {self._record_frontier_edges}",
            )

    def _validate_shard_extra(self, extra: Dict[str, object]) -> None:
        """Per-shard counter invariants of a sharded run's extra keys."""
        if registry.SHARDS not in extra:
            return
        self._checks["shard_extra"] += 1
        shards = extra[registry.SHARDS]
        if not isinstance(shards, (int, np.integer)) or shards < 1:
            self._violation(
                ViolationKind.ACCOUNTING,
                f"extra[{registry.SHARDS!r}] must be a positive integer, "
                f"got {shards!r}",
            )
            return
        for key in (registry.SHARD_SCANNED_EDGES, registry.SHARD_PEAK_BYTES):
            value = extra.get(key)
            if value is None:
                self._violation(
                    ViolationKind.ACCOUNTING,
                    f"sharded run is missing extra[{key!r}]",
                )
                continue
            values = list(value)
            if len(values) != int(shards):
                self._violation(
                    ViolationKind.ACCOUNTING,
                    f"extra[{key!r}] has {len(values)} entries for "
                    f"{int(shards)} shards",
                )
                continue
            if any(
                not isinstance(v, (int, np.integer)) or v < 0 for v in values
            ):
                self._violation(
                    ViolationKind.ACCOUNTING,
                    f"extra[{key!r}] entries must be non-negative integers, "
                    f"got {values!r}",
                )
                continue
            if (
                key == registry.SHARD_SCANNED_EDGES
                and sum(int(v) for v in values) != self._record_frontier_edges
            ):
                self._violation(
                    ViolationKind.ACCOUNTING,
                    f"sum(extra[{key!r}]) = {sum(int(v) for v in values)} "
                    f"disagrees with the iteration records' frontier_edges "
                    f"total {self._record_frontier_edges}",
                )

    def _validate_dyn_extra(self, extra: Dict[str, object]) -> None:
        """Dynamic-update / repair invariants of a run's extra keys.

        The repair annotations are written *after* the engine returns
        (by :class:`repro.dyn.incremental.IncrementalRecompute` and the
        result cache), so besides this in-engine hook the same checks are
        exposed as the module-level :func:`validate_dyn_extra`, which the
        dyn/cache layers call on their annotated results when the run is
        sanitized.
        """
        if not any(
            key in extra
            for key in (
                registry.DYN_GRAPH_VERSION,
                registry.DYN_REPAIR_MODE,
                registry.CACHE_OUTCOME,
            )
        ):
            return
        self._checks["dyn_extra"] += 1
        for detail in validate_dyn_extra(extra):
            self._violation(ViolationKind.ACCOUNTING, detail)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Machine-readable summary for ``RunResult.extra['sanitizer']``."""
        return {
            "clean": not self.violations,
            "supersteps": self._supersteps,
            "checks": dict(self._checks),
            "violations": [v.as_dict() for v in self.violations],
        }

    # ------------------------------------------------------------------
    # Internals shared with the proxies
    # ------------------------------------------------------------------
    def _violation(
        self,
        kind: ViolationKind,
        detail: str,
        *,
        lane: Optional[int] = None,
        vertices: Tuple[int, ...] = (),
    ) -> None:
        self.violations.append(
            SanitizerViolation(
                kind=kind,
                detail=detail,
                iteration=self._iteration,
                lane=lane,
                vertices=tuple(int(v) for v in vertices),
            )
        )
        if self.raise_on_violation:
            raise SanitizerError(self.violations)

    def _graph_checksums(self) -> List[int]:
        return [zlib.adler32(arr.tobytes()) for arr, _ in self._frozen]

    def _record_updates(
        self,
        lane_key: int,
        updates: np.ndarray,
        dst_ids: np.ndarray,
        lanes: Optional[np.ndarray],
    ) -> None:
        """Record the destination of every valid (non-NaN) update offered."""
        if self._snapshot is None:
            return
        updates = np.asarray(updates, dtype=np.float64)
        dst_ids = np.asarray(dst_ids, dtype=np.int64)
        valid = ~np.isnan(updates)
        dst_valid = dst_ids[valid]
        if lanes is None:
            self._update_dsts.setdefault(lane_key, []).append(dst_valid)
            return
        lane_valid = np.asarray(lanes, dtype=np.int64)[valid]
        for lane in np.unique(lane_valid):
            self._update_dsts.setdefault(int(lane), []).append(
                dst_valid[lane_valid == lane]
            )


class _SanitizedCombineOp:
    """Records the segment reductions the engine performs for one lane."""

    def __init__(self, op, sanitizer: RuntimeSanitizer, lane_key: int):
        self._op = op
        self._san = sanitizer
        self._lane_key = lane_key

    def segment_reduce(self, values, segment_ids, num_segments, *, backend=None):
        out = self._op.segment_reduce(
            values, segment_ids, num_segments, backend=backend
        )
        if self._san._snapshot is not None:
            self._san._combined_full[self._lane_key] = np.asarray(
                out, dtype=np.float64
            ).copy()
            self._san._checks["combines"] += 1
        return out

    def __getattr__(self, name):
        return getattr(self._op, name)


class _SanitizedAlgorithm:
    """Recording proxy around one ACC algorithm instance.

    Hooks are invoked exactly once per engine call (never re-executed -
    hooks may carry internal state) on read-only views of every array
    argument; update streams, reductions and applies are recorded for the
    sanitizer's end-of-superstep comparison.
    """

    def __init__(self, inner, sanitizer: RuntimeSanitizer, lane: Optional[int]):
        self._inner = inner
        self._san = sanitizer
        self._lane = lane
        self._lane_key = 0 if lane is None else int(lane)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    # -------------------------- helpers ------------------------------
    @staticmethod
    def _readonly(value):
        if isinstance(value, np.ndarray):
            view = value.view()
            view.flags.writeable = False
            return view
        return value

    def _pure(self, hook: str, fn, *args, **kwargs):
        """Call ``fn`` on read-only views; a write is an impure-hook."""
        ro_args = [self._readonly(a) for a in args]
        ro_kwargs = {k: self._readonly(v) for k, v in kwargs.items()}
        self._san._checks["hook_calls"] += 1
        try:
            return fn(*ro_args, **ro_kwargs)
        except ValueError as exc:
            if "read-only" not in str(exc):
                raise
            self._san._violation(
                ViolationKind.IMPURE_HOOK,
                f"{type(self._inner).__name__}.{hook} mutated a "
                f"caller-owned array in place",
                lane=self._lane,
            )
            # Collect-only mode reaches here: keep the run alive on
            # writable scratch copies (the hook re-runs, so post-violation
            # state is best-effort - the violation is already recorded).
            copies = [
                a.copy() if isinstance(a, np.ndarray) else a for a in args
            ]
            copy_kwargs = {
                k: (v.copy() if isinstance(v, np.ndarray) else v)
                for k, v in kwargs.items()
            }
            return fn(*copies, **copy_kwargs)

    def _check_operands(
        self, hook: str, src_meta, dst_meta, src_ids, dst_ids, lanes
    ) -> None:
        """Compute operands must be iteration-start metadata, bit-for-bit."""
        snap = self._san._snapshot
        if snap is None:
            return
        src_ids = np.asarray(src_ids, dtype=np.int64)
        dst_ids = np.asarray(dst_ids, dtype=np.int64)
        if snap.ndim == 1:
            exp_src, exp_dst = snap[src_ids], snap[dst_ids]
        elif self._lane is not None:
            exp_src = snap[self._lane, src_ids]
            exp_dst = snap[self._lane, dst_ids]
        elif lanes is not None:
            lane_arr = np.asarray(lanes, dtype=np.int64)
            exp_src = snap[lane_arr, src_ids]
            exp_dst = snap[lane_arr, dst_ids]
        else:
            return
        self._san._checks["phase_order"] += 1
        for name, got, exp, ids in (
            ("source", np.asarray(src_meta), exp_src, src_ids),
            ("destination", np.asarray(dst_meta), exp_dst, dst_ids),
        ):
            if not _equal_nan(got, exp):
                bad = ids[np.nonzero(_mismatch_mask(exp, got.astype(np.float64)))[0]]
                self._san._violation(
                    ViolationKind.PHASE_ORDER,
                    f"{hook} read {name} metadata mutated earlier in the "
                    f"same superstep (operands differ from the "
                    f"iteration-start snapshot)",
                    lane=self._lane,
                    vertices=tuple(np.unique(bad)[:8].tolist()),
                )

    # ---------------------- intercepted ACC API ----------------------
    @property
    def combine_op(self):
        return _SanitizedCombineOp(
            self._inner.combine_op, self._san, self._lane_key
        )

    def compute_edges(self, src_meta, weights, dst_meta, src_ids, dst_ids, graph):
        self._check_operands(
            "compute_edges", src_meta, dst_meta, src_ids, dst_ids, None
        )
        updates = self._pure(
            "compute_edges", self._inner.compute_edges,
            src_meta, weights, dst_meta, src_ids, dst_ids, graph,
        )
        self._san._record_updates(self._lane_key, updates, dst_ids, None)
        return updates

    def scatter_edges(
        self, src_meta, weights, dst_meta, src_ids, dst_ids, graph, lanes=None
    ):
        self._check_operands(
            "scatter_edges", src_meta, dst_meta, src_ids, dst_ids, lanes
        )
        updates = self._pure(
            "scatter_edges", self._inner.scatter_edges,
            src_meta, weights, dst_meta, src_ids, dst_ids, graph, lanes=lanes,
        )
        self._san._record_updates(self._lane_key, updates, dst_ids, lanes)
        return updates

    def gather_edges(
        self, src_meta, weights, dst_meta, src_ids, dst_ids, graph, lanes=None
    ):
        self._check_operands(
            "gather_edges", src_meta, dst_meta, src_ids, dst_ids, lanes
        )
        updates = self._pure(
            "gather_edges", self._inner.gather_edges,
            src_meta, weights, dst_meta, src_ids, dst_ids, graph, lanes=lanes,
        )
        self._san._record_updates(self._lane_key, updates, dst_ids, lanes)
        return updates

    def apply(self, old, combined, touched):
        san = self._san
        touched_arr = np.asarray(touched, dtype=np.int64)
        if san._snapshot is not None:
            san._checks["applies"] += 1
            reduced = san._combined_full.get(self._lane_key)
            if reduced is None:
                san._violation(
                    ViolationKind.NON_COMBINED_WRITE,
                    "apply invoked without a CombineOp reduction this "
                    "superstep - updates bypassed Combine",
                    lane=self._lane,
                    vertices=tuple(touched_arr[:8].tolist()),
                )
            elif not _equal_nan(
                np.asarray(combined, dtype=np.float64), reduced[touched_arr]
            ):
                san._violation(
                    ViolationKind.NON_COMBINED_WRITE,
                    "apply received values that were not produced by the "
                    "CombineOp reduction",
                    lane=self._lane,
                    vertices=tuple(touched_arr[:8].tolist()),
                )
        new_values = self._pure("apply", self._inner.apply, old, combined, touched)
        if san._snapshot is not None:
            san._apply_records.setdefault(self._lane_key, []).append(
                (
                    touched_arr.copy(),
                    np.asarray(new_values, dtype=np.float64).copy(),
                )
            )
        return new_values

    def active_mask(self, curr, prev):
        return self._pure("active_mask", self._inner.active_mask, curr, prev)

    def gather_mask(self, metadata, graph, frontier=None):
        return self._pure(
            "gather_mask", self._inner.gather_mask, metadata, graph, frontier
        )

    def on_frontier_expanded(self, frontier, metadata):
        return self._pure(
            "on_frontier_expanded", self._inner.on_frontier_expanded,
            frontier, metadata,
        )

    def converged(self, curr, prev, iteration):
        return self._pure(
            "converged", self._inner.converged, curr, prev, iteration
        )

    def vertex_value(self, metadata):
        return self._pure(
            "vertex_value", self._inner.vertex_value, metadata
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sanitized({self._inner!r}, lane={self._lane})"
