"""Static analysis and runtime sanitizing for the simulated engine.

Two prongs, one goal: turn the ACC model's implicit contracts into
*checkable* invariants instead of properties a fuzz seed may or may not
trip over.

* :mod:`repro.analysis.registry` -- the central registry of every
  ``RunResult.extra`` key the repository writes or reads. A typo'd key is
  a lint error, not a silently-empty metric.
* :mod:`repro.analysis.sanitizer` -- the runtime sanitizer
  (``EngineConfig.sanitize=True``): shadows each superstep's functional
  execution and flags writes that bypass the ``CombineOp`` reduction
  (would-be atomics), phase-order violations, non-bijective lane remaps,
  impure ACC hooks and broken accounting. Violations raise
  :class:`~repro.analysis.sanitizer.SanitizerError`; clean runs land a
  machine-readable report in ``RunResult.extra["sanitizer"]``.
* :mod:`repro.analysis.lint` -- the repo-specific AST lint pass behind
  ``tools/repro_lint.py`` (extra-key registry enforcement, seeded-RNG
  discipline, increment-only accounting counters, no float equality in
  ``converged()``, mandatory ``describe()`` on ACC algorithms).

See ``docs/static-analysis.md`` for the rule table and how to run both.
"""

from repro.analysis.registry import ExtraKey, is_registered, registered_keys
from repro.analysis.sanitizer import (
    RuntimeSanitizer,
    SanitizerError,
    SanitizerViolation,
    ViolationKind,
)

__all__ = [
    "ExtraKey",
    "is_registered",
    "registered_keys",
    "RuntimeSanitizer",
    "SanitizerError",
    "SanitizerViolation",
    "ViolationKind",
]
