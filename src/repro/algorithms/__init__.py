"""Graph algorithms expressed in the ACC model (Section 6).

Each algorithm is a thin :class:`~repro.core.acc.ACCAlgorithm` subclass - a
few dozen lines, mirroring the paper's claim that a user programs an
algorithm in tens of lines of code while the engine handles scheduling,
filtering, direction and fusion.

=================  =========  ============  =========================
Algorithm          Combine    Kind          Notes
=================  =========  ============  =========================
BFS                min        voting        level-synchronous traversal
SSSP               min        aggregation   delta-style relaxation
PageRank           sum        aggregation   delta-accumulative (Maiter)
k-Core             sum        aggregation   iterative peeling, k = 16
Belief propagation sum        aggregation   damped message passing
SpMV               sum        aggregation   one-shot y = A x
WCC                min        voting        label propagation
=================  =========  ============  =========================
"""

from repro.algorithms.bfs import BFS
from repro.algorithms.sssp import SSSP
from repro.algorithms.pagerank import PageRank
from repro.algorithms.kcore import KCore
from repro.algorithms.belief_propagation import BeliefPropagation
from repro.algorithms.spmv import SpMV
from repro.algorithms.wcc import WCC

ALGORITHMS = {
    "bfs": BFS,
    "sssp": SSSP,
    "pagerank": PageRank,
    "kcore": KCore,
    "bp": BeliefPropagation,
    "spmv": SpMV,
    "wcc": WCC,
}

__all__ = [
    "BFS",
    "SSSP",
    "PageRank",
    "KCore",
    "BeliefPropagation",
    "SpMV",
    "WCC",
    "ALGORITHMS",
]
