"""PageRank in the ACC model (Section 6).

The paper runs PageRank in pull mode with ``agg_sum`` as the combine and
switches to push mode near convergence, "because the majority of the vertices
are stable", citing Maiter's delta-based accumulative formulation [72]. We
implement exactly that delta-accumulative scheme, which fits the ACC
scatter/combine structure naturally and lets the frontier shrink as ranks
converge:

* metadata is the accumulated rank of each vertex (starts at ``1 - d``);
* every vertex also carries a *pending delta*: rank mass received since it
  last propagated. Initially the pending delta equals the initial rank.
* ``compute`` for edge (v, u) sends ``d * pending(v) / out_degree(v)``;
* ``combine`` sums incoming mass; ``apply`` adds it to the rank (and to the
  destination's pending delta);
* a vertex is active while its pending delta exceeds ``tolerance``.

The fixed point of this process is the standard damped PageRank. In the
early iterations every vertex is active (the JIT controller flips to the
ballot filter immediately, as Figure 8 notes for PR); late iterations have a
small frontier, which is when the engine's direction selector switches the
computation to push mode, mirroring the paper's decision-tree switch. The
pull iterations are genuine gathers over the in-CSR: every vertex collects
the pending deltas of its in-neighbours that are in the frontier, which
produces bit-identical ranks to the scatter formulation.
"""

from __future__ import annotations

import numpy as np

from repro.core.acc import ACCAlgorithm, CombineKind, CombineOp, InitialState
from repro.graph.csr import CSRGraph


class PageRank(ACCAlgorithm):
    """Delta-accumulative PageRank (Maiter-style)."""

    name = "pagerank"
    combine_kind = CombineKind.AGGREGATION
    combine_op = CombineOp.SUM
    uses_weights = False
    starts_in_pull = True
    max_iterations = 200

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-4):
        if not (0.0 < damping < 1.0):
            raise ValueError("damping must be in (0, 1)")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.damping = damping
        self.tolerance = tolerance
        self._pending: np.ndarray | None = None
        self._out_degrees: np.ndarray | None = None

    def init(self, graph: CSRGraph, **params) -> InitialState:
        n = graph.num_vertices
        base = 1.0 - self.damping
        metadata = np.full(n, base, dtype=np.float64)
        self._pending = np.full(n, base, dtype=np.float64)
        self._out_degrees = np.maximum(graph.out_degrees().astype(np.float64), 1.0)
        frontier = np.arange(n, dtype=np.int64)
        return InitialState(metadata=metadata, frontier=frontier)

    def active_mask(self, curr: np.ndarray, prev: np.ndarray) -> np.ndarray:
        pending = self._pending if self._pending is not None else np.abs(curr - prev)
        return pending > self.tolerance

    def compute_edges(self, src_meta, weights, dst_meta, src_ids, dst_ids, graph):
        pending = self._pending[src_ids]
        share = self.damping * pending / self._out_degrees[src_ids]
        return np.where(share > 0.0, share, np.nan)

    def on_frontier_expanded(self, frontier: np.ndarray, metadata: np.ndarray) -> None:
        # The frontier has propagated its accumulated delta; reset it.
        self._pending[frontier] = 0.0

    def apply(self, old, combined, touched):
        self._pending[touched] += combined
        return old + combined

    def vertex_value(self, metadata: np.ndarray) -> np.ndarray:
        """Ranks normalized to sum to 1 (the conventional presentation)."""
        total = metadata.sum()
        if total <= 0:
            return metadata
        return metadata / total

    def raw_ranks(self, metadata: np.ndarray) -> np.ndarray:
        """Un-normalized accumulated ranks (fixed point of the recurrence)."""
        return metadata

    def describe(self) -> dict:
        return {
            **super().describe(),
            "damping": self.damping,
            "tolerance": self.tolerance,
        }
