"""Breadth-first search in the ACC model (Section 6).

Metadata is the BFS level of each vertex (infinity while unvisited). An edge
from a visited vertex offers ``level + 1`` to an unvisited neighbour; all
offers arriving at a vertex in one iteration carry the same value, so the
combine is a *vote* (any single update suffices), which is what enables the
collaborative early termination the paper credits for part of the Figure 5
speedup. A vertex is active exactly when its level changed this iteration.

In pull (gather) iterations - the middle of the traversal, when the frontier
covers most of the graph - only *unvisited* vertices gather over their
in-edges (``gather_mask``), the classic bottom-up optimization of Beamer et
al. that SIMD-X's direction selector exists to exploit.

BFS is the canonical *batched* traversal (``SIMDXEngine.run_batch``): K
sources become K lanes whose per-edge computes flatten into one call, and
because ``compute_edges`` is a pure per-edge map the inherited
``scatter_edges`` / ``gather_edges`` lane-axis hooks need no override -
``supports_multi_source`` is all it takes to opt in.
"""

from __future__ import annotations

import numpy as np

from repro.core.acc import ACCAlgorithm, CombineKind, CombineOp, InitialState
from repro.graph.csr import CSRGraph

UNVISITED = np.inf


class BFS(ACCAlgorithm):
    """Level-synchronous breadth-first search."""

    name = "bfs"
    combine_kind = CombineKind.VOTING
    combine_op = CombineOp.MIN
    uses_weights = False
    starts_in_pull = False
    supports_multi_source = True

    def __init__(self, source: int = 0):
        self.source = source

    def init(self, graph: CSRGraph, *, source: int | None = None) -> InitialState:
        src = self.source if source is None else source
        if not (0 <= src < graph.num_vertices):
            raise ValueError(f"source {src} out of range")
        metadata = np.full(graph.num_vertices, UNVISITED, dtype=np.float64)
        metadata[src] = 0.0
        return InitialState(metadata=metadata, frontier=np.array([src], dtype=np.int64))

    def active_mask(self, curr: np.ndarray, prev: np.ndarray) -> np.ndarray:
        return curr != prev

    def compute_edges(self, src_meta, weights, dst_meta, src_ids, dst_ids, graph):
        candidate = src_meta + 1.0
        # Only unvisited (or farther) destinations receive an offer.
        return np.where(candidate < dst_meta, candidate, np.nan)

    def apply(self, old, combined, touched):
        return np.minimum(old, combined)

    def gather_mask(self, metadata, graph, frontier=None):
        # Bottom-up (Beamer-style) BFS: only unvisited vertices gather. A
        # visited vertex's level is final - every later offer is larger - so
        # skipping it drops only edges whose update would be NaN anyway.
        return np.isinf(metadata)

    def vertex_value(self, metadata: np.ndarray) -> np.ndarray:
        """BFS levels as int64, with -1 for unreachable vertices."""
        out = np.where(np.isfinite(metadata), metadata, -1.0)
        return out.astype(np.int64)

    def describe(self) -> dict:
        return {**super().describe(), "source": self.source}
