"""Single-source shortest path in the ACC model (Section 3.3, Figure 4a).

Metadata is the tentative distance. ``compute`` offers ``dist(src) + w`` to
the destination when that improves on its current distance, ``combine`` takes
the minimum of all offers, and ``apply`` keeps the smaller of the old and
combined distance. A vertex is active when its distance changed, so - unlike
BFS - the same vertex can re-enter the frontier across iterations (Figure 1
updates vertex b at iterations 1 and 3), which is why SSSP runs many more
iterations and stresses the task-management machinery harder.

The paper adopts delta-stepping to admit more parallelism than Dijkstra's
single-vertex-at-a-time order. The default configuration here is the
``delta = infinity`` end of that spectrum (every improved vertex relaxes
immediately, Bellman-Ford style); passing ``delta`` enables bucketed
scheduling, where only vertices whose tentative distance falls inside the
current bucket are eligible and the bucket advances once it drains. Both
schedules converge to the same distances; the bucketed one trades extra
iterations for fewer wasted relaxations on weighted graphs.

Direction is orthogonal to the schedule: a pull iteration gathers the same
``dist(src) + w`` offers over in-edges whose source lies in the frontier, so
the pending-set bookkeeping (``on_frontier_expanded`` clears the frontier's
outstanding improvements, ``apply`` re-marks improved destinations) behaves
identically whether the frontier scattered or the destinations gathered.
``gather_mask`` additionally prunes settled vertices from the gather
worklist with a frontier-dependent bound: no destination at or below
``min(dist over frontier) + min(edge weight)`` can receive an improving
offer this iteration.
"""

from __future__ import annotations

import numpy as np

from repro.core.acc import ACCAlgorithm, CombineKind, CombineOp, InitialState
from repro.graph.csr import CSRGraph

UNREACHED = np.inf


class SSSP(ACCAlgorithm):
    """Frontier-based shortest-path relaxation (delta-step style)."""

    name = "sssp"
    combine_kind = CombineKind.AGGREGATION
    combine_op = CombineOp.MIN
    uses_weights = True
    starts_in_pull = False
    #: K sources batch into K lanes (``SIMDXEngine.run_batch``): the
    #: per-edge relaxation is a pure map, and the per-lane pending-set
    #: bookkeeping stays correct because the engine gives each lane its own
    #: algorithm copy (``init`` allocates fresh per-run state).
    supports_multi_source = True

    def __init__(self, source: int = 0, delta: float | None = None):
        if delta is not None and delta <= 0:
            raise ValueError("delta must be positive")
        self.source = source
        self.delta = delta
        self._bucket_limit = np.inf
        self._pending: np.ndarray | None = None
        self._min_weight = 0.0

    def init(self, graph: CSRGraph, *, source: int | None = None) -> InitialState:
        src = self.source if source is None else source
        if not (0 <= src < graph.num_vertices):
            raise ValueError(f"source {src} out of range")
        metadata = np.full(graph.num_vertices, UNREACHED, dtype=np.float64)
        metadata[src] = 0.0
        self._bucket_limit = self.delta if self.delta is not None else np.inf
        self._pending = np.zeros(graph.num_vertices, dtype=bool)
        self._pending[src] = True
        weights = graph.out_csr.weights
        self._min_weight = float(weights.min()) if weights.size else 0.0
        return InitialState(metadata=metadata, frontier=np.array([src], dtype=np.int64))

    def active_mask(self, curr: np.ndarray, prev: np.ndarray) -> np.ndarray:
        if self.delta is None:
            return curr != prev
        # Delta-stepping: a vertex is eligible when it holds an un-relaxed
        # improvement *and* its distance lies inside the current bucket; the
        # bucket advances when it drains but improvements remain outstanding.
        pending = self._pending if self._pending is not None else (curr != prev)
        mask = pending & (curr <= self._bucket_limit)
        while not mask.any() and pending.any():
            self._bucket_limit += self.delta
            mask = pending & (curr <= self._bucket_limit)
        return mask

    def compute_edges(self, src_meta, weights, dst_meta, src_ids, dst_ids, graph):
        candidate = src_meta + weights
        return np.where(candidate < dst_meta, candidate, np.nan)

    def on_frontier_expanded(self, frontier: np.ndarray, metadata: np.ndarray) -> None:
        if self._pending is not None:
            # The frontier's outstanding improvements have now been relaxed.
            self._pending[frontier] = False

    def apply(self, old, combined, touched):
        new = np.minimum(old, combined)
        if self._pending is not None:
            improved = touched[new < old]
            self._pending[improved] = True
        return new

    def gather_mask(self, metadata, graph, frontier=None):
        if frontier is None or frontier.size == 0:
            return np.ones(metadata.shape[0], dtype=bool)
        # Frontier-dependent settled-vertex pruning: every offer this
        # iteration is dist(v) + w with v in the frontier, so no destination
        # at or below min(dist over frontier) + min(edge weight) can improve
        # - it is settled relative to this frontier. (With the repository's
        # positive weights this skips the whole shortest-path tree built so
        # far; using the graph's true minimum weight keeps the bound safe
        # for zero or negative weights too.)
        bound = float(np.min(metadata[frontier])) + self._min_weight
        return metadata > bound

    def converged(self, curr, prev, iteration) -> bool:
        # With delta-stepping the in-bucket worklist can drain while
        # improvements remain in later buckets; report non-convergence so the
        # engine re-seeds the frontier from the (bucket-advanced) active mask.
        if self.delta is None or self._pending is None:
            return True
        return not bool(self._pending.any())

    def vertex_value(self, metadata: np.ndarray) -> np.ndarray:
        """Tentative distances; infinity marks unreachable vertices."""
        return metadata

    def describe(self) -> dict:
        return {
            **super().describe(),
            "source": self.source,
            "delta": self.delta,
        }
