"""Sparse matrix-vector multiplication in the ACC model.

SpMV appears in the paper's architecture figure (Figure 3) as one of the
supported workloads. Treating the CSR graph as the sparse matrix A (edge
weight = matrix entry), ``y = A^T x`` falls out of ACC directly: every vertex
is active once, ``compute`` multiplies the source's ``x`` value by the edge
weight, ``combine`` sums the products arriving at each destination, and
``apply`` overwrites the destination's metadata with the sum. The run
terminates after the single sweep because no vertex remains active.

SpMV is the degenerate single-iteration workload: it gains nothing from task
management (there is only one frontier, containing every vertex) and very
little from kernel fusion (there is only one launch to begin with), which
makes it a useful control case in the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.core.acc import ACCAlgorithm, CombineKind, CombineOp, InitialState
from repro.graph.csr import CSRGraph


class SpMV(ACCAlgorithm):
    """One-shot y = A^T x over the graph's weighted adjacency structure."""

    name = "spmv"
    combine_kind = CombineKind.AGGREGATION
    combine_op = CombineOp.SUM
    uses_weights = True
    starts_in_pull = True
    max_iterations = 1

    def __init__(self, x: np.ndarray | None = None, x_seed: int = 23):
        self.x = None if x is None else np.asarray(x, dtype=np.float64)
        self.x_seed = x_seed
        self._x_active: np.ndarray | None = None
        self._done = False

    def init(self, graph: CSRGraph, *, x: np.ndarray | None = None) -> InitialState:
        n = graph.num_vertices
        vec = x if x is not None else self.x
        if vec is None:
            rng = np.random.default_rng(self.x_seed)
            vec = rng.random(n)
        vec = np.asarray(vec, dtype=np.float64)
        if vec.shape != (n,):
            raise ValueError("x must have one entry per vertex")
        self._x_active = vec.copy()
        self._done = False
        # Metadata holds the output vector y, initially zero.
        metadata = np.zeros(n, dtype=np.float64)
        frontier = np.arange(n, dtype=np.int64)
        return InitialState(metadata=metadata, frontier=frontier)

    def active_mask(self, curr: np.ndarray, prev: np.ndarray) -> np.ndarray:
        if self._done:
            return np.zeros(curr.shape[0], dtype=bool)
        return np.ones(curr.shape[0], dtype=bool)

    def compute_edges(self, src_meta, weights, dst_meta, src_ids, dst_ids, graph):
        return weights * self._x_active[src_ids]

    def on_frontier_expanded(self, frontier: np.ndarray, metadata: np.ndarray) -> None:
        self._done = True

    def apply(self, old, combined, touched):
        return combined

    def vertex_value(self, metadata: np.ndarray) -> np.ndarray:
        """The product vector y (zero for vertices with no in-edges)."""
        return metadata

    def describe(self) -> dict:
        return {
            **super().describe(),
            "x_seed": None if self.x is not None else self.x_seed,
        }
