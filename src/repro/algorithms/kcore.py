"""k-Core decomposition in the ACC model (Section 6).

k-Core iteratively deletes vertices whose degree is below ``k`` until every
remaining vertex has at least ``k`` remaining neighbours. In ACC terms:

* metadata is the vertex's *remaining degree*;
* a vertex becomes active in the iteration its remaining degree first drops
  below ``k`` (it has just been "deleted");
* ``compute`` for an edge from a deleted vertex sends a decrement of 1 to the
  destination - unless the destination has already fallen below ``k``, in
  which case no update is sent. This guard is the algorithmic innovation the
  paper credits ACC's flexibility for ("we will stop further subtracting the
  degree of destination vertex once the destination vertex's degree goes
  below k"), and it removes a large number of useless updates;
* ``combine`` sums the decrements and ``apply`` subtracts them.

The workload profile is the opposite of BFS: enormous frontiers in the first
iteration or two (every low-degree vertex deletes at once - the ballot filter
activates immediately, Figure 8) followed by a long tail of small frontiers.
The paper uses k = 16 by default and k = 32 for the Table 4 comparison
against Ligra; both are exposed via the constructor.
"""

from __future__ import annotations

import numpy as np

from repro.core.acc import ACCAlgorithm, CombineKind, CombineOp, InitialState
from repro.graph.csr import CSRGraph

DEFAULT_K = 16


class KCore(ACCAlgorithm):
    """Iterative peeling k-core decomposition."""

    name = "kcore"
    combine_kind = CombineKind.AGGREGATION
    combine_op = CombineOp.SUM
    uses_weights = False
    starts_in_pull = True

    def __init__(self, k: int = DEFAULT_K):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k

    def init(self, graph: CSRGraph, *, k: int | None = None) -> InitialState:
        if k is not None:
            if k <= 0:
                raise ValueError("k must be positive")
            self.k = k
        degrees = graph.out_degrees().astype(np.float64)
        metadata = degrees.copy()
        frontier = np.nonzero(degrees < self.k)[0].astype(np.int64)
        return InitialState(metadata=metadata, frontier=frontier)

    def active_mask(self, curr: np.ndarray, prev: np.ndarray) -> np.ndarray:
        # Active exactly in the iteration a vertex crosses below k: it then
        # broadcasts its deletion once and never again.
        return (curr < self.k) & (prev >= self.k)

    def compute_edges(self, src_meta, weights, dst_meta, src_ids, dst_ids, graph):
        # Deleted source decrements destinations that are still in the core.
        return np.where(dst_meta >= self.k, 1.0, np.nan)

    def apply(self, old, combined, touched):
        return np.maximum(old - combined, 0.0)

    def gather_mask(self, metadata, graph, frontier=None):
        # Pull iterations gather only at vertices still in the core: compute
        # sends no decrement to a vertex already below k (the paper's
        # stop-subtracting guard), so deleted vertices have nothing to
        # gather.
        return metadata >= self.k

    def vertex_value(self, metadata: np.ndarray) -> np.ndarray:
        """Remaining degrees after peeling (>= k means the vertex survives)."""
        return metadata

    def core_membership(self, metadata: np.ndarray) -> np.ndarray:
        """Boolean mask of vertices in the k-core."""
        return metadata >= self.k

    def describe(self) -> dict:
        return {**super().describe(), "k": self.k}
