"""Weakly connected components in the ACC model.

The paper lists connected components as the canonical *voting* combine
besides BFS (Section 3.2): label propagation where every vertex starts with
its own id as the label, each edge offers the source's label to the
destination, the combine keeps the minimum, and a vertex is active whenever
its label shrank. At convergence all vertices of a weakly connected component
share the smallest vertex id in the component.

On directed graphs the propagation must ignore edge direction to compute
*weak* connectivity; a single iteration only moves labels along the stored
direction (out-edges in push mode, the same edges walked from the in-CSR in
pull mode), so ``init`` seeds the frontier with every vertex and the
symmetric closure emerges over iterations as labels flow both ways along
each stored direction (for directed inputs, both the out- and in-CSR views
contain each edge once, and running on the undirected datasets the question
does not arise). Because push and pull walk the identical edge set, the
labels converge identically in either direction. In pull mode,
``gather_mask`` prunes destinations whose label already sits at or below
the frontier's minimum label - they cannot shrink this iteration - which
skips the converged body of each component late in the propagation.
"""

from __future__ import annotations

import numpy as np

from repro.core.acc import ACCAlgorithm, CombineKind, CombineOp, InitialState
from repro.graph.csr import CSRGraph


class WCC(ACCAlgorithm):
    """Minimum-label propagation for weakly connected components."""

    name = "wcc"
    combine_kind = CombineKind.VOTING
    combine_op = CombineOp.MIN
    uses_weights = False
    starts_in_pull = False

    def init(self, graph: CSRGraph, **params) -> InitialState:
        n = graph.num_vertices
        metadata = np.arange(n, dtype=np.float64)
        frontier = np.arange(n, dtype=np.int64)
        return InitialState(metadata=metadata, frontier=frontier)

    def active_mask(self, curr: np.ndarray, prev: np.ndarray) -> np.ndarray:
        return curr != prev

    def compute_edges(self, src_meta, weights, dst_meta, src_ids, dst_ids, graph):
        return np.where(src_meta < dst_meta, src_meta, np.nan)

    def apply(self, old, combined, touched):
        return np.minimum(old, combined)

    def gather_mask(self, metadata, graph, frontier=None):
        if frontier is None or frontier.size == 0:
            return np.ones(metadata.shape[0], dtype=bool)
        # Frontier-dependent settled-vertex pruning: an edge only offers its
        # source's label when that label is smaller, and only frontier
        # sources offer anything this iteration - so a destination whose
        # label is already at or below the frontier's minimum label cannot
        # shrink. Late in the propagation this skips the (large) converged
        # body of each component.
        return metadata > float(np.min(metadata[frontier]))

    def vertex_value(self, metadata: np.ndarray) -> np.ndarray:
        """Component labels as int64 (the smallest vertex id reached)."""
        return metadata.astype(np.int64)

    def describe(self) -> dict:
        return super().describe()
