"""Belief propagation in the ACC model (Section 6).

The paper describes BP as sum-product message passing over a Bayesian
network / Markov random field where "vertex possibility is the metadata",
all vertices are treated as active, and the combine sums contributions from
all related events. The exact sum-product update over discrete potentials
requires per-edge message state; the paper's evaluation only exercises the
single-metadata-per-vertex form, so - like the paper - we run the damped
linearised update used for Gaussian/linearised BP:

    belief[u] <- prior[u] + damping * sum_{v in Nbr(u)} w(v, u) * belief[v]

where the edge weights are row-normalized likelihoods. This keeps the
algorithm a pure ACC aggregation (compute multiplies the source belief by
the edge likelihood; combine sums; apply adds the damped sum to the prior),
converges geometrically for damping < 1, and - critically for the
reproduction - has the same workload profile the paper relies on: every
vertex is active in every iteration, so the ballot filter activates on the
first iteration and the computation is dominated by full-graph edge sweeps,
making BP (like PageRank) the algorithm where task management helps least
and kernel fusion helps only modestly (Figure 13b).
"""

from __future__ import annotations

import numpy as np

from repro.core.acc import ACCAlgorithm, CombineKind, CombineOp, InitialState
from repro.graph.csr import CSRGraph


class BeliefPropagation(ACCAlgorithm):
    """Damped linearised belief propagation (sum combine)."""

    name = "bp"
    combine_kind = CombineKind.AGGREGATION
    combine_op = CombineOp.SUM
    uses_weights = True
    starts_in_pull = True
    max_iterations = 30

    def __init__(
        self,
        damping: float = 0.5,
        num_iterations: int = 20,
        prior_seed: int = 17,
    ):
        if not (0.0 < damping < 1.0):
            raise ValueError("damping must be in (0, 1)")
        if num_iterations <= 0:
            raise ValueError("num_iterations must be positive")
        self.damping = damping
        self.num_iterations = num_iterations
        self.prior_seed = prior_seed
        self._prior: np.ndarray | None = None
        self._weight_norm: np.ndarray | None = None
        self._iterations_done = 0

    def init(self, graph: CSRGraph, *, priors: np.ndarray | None = None) -> InitialState:
        n = graph.num_vertices
        if priors is not None:
            priors = np.asarray(priors, dtype=np.float64)
            if priors.shape != (n,):
                raise ValueError("priors must have one entry per vertex")
            if np.any(priors < 0):
                raise ValueError("priors must be non-negative")
            self._prior = priors.copy()
        else:
            rng = np.random.default_rng(self.prior_seed)
            self._prior = rng.random(n)
        # Row-normalize outgoing likelihoods so the damped update is a
        # contraction and beliefs stay bounded.
        out_weight_sums = np.zeros(n, dtype=np.float64)
        np.add.at(
            out_weight_sums,
            np.repeat(np.arange(n), graph.out_degrees()),
            graph.out_csr.weights.astype(np.float64),
        )
        self._weight_norm = np.maximum(out_weight_sums, 1e-12)
        self._iterations_done = 0
        self.max_iterations = self.num_iterations
        metadata = self._prior.copy()
        frontier = np.arange(n, dtype=np.int64)
        return InitialState(metadata=metadata, frontier=frontier)

    def active_mask(self, curr: np.ndarray, prev: np.ndarray) -> np.ndarray:
        # BP treats every vertex as active for a fixed number of sweeps.
        if self._iterations_done >= self.num_iterations:
            return np.zeros(curr.shape[0], dtype=bool)
        return np.ones(curr.shape[0], dtype=bool)

    def compute_edges(self, src_meta, weights, dst_meta, src_ids, dst_ids, graph):
        likelihood = weights / self._weight_norm[src_ids]
        return likelihood * src_meta

    def on_frontier_expanded(self, frontier: np.ndarray, metadata: np.ndarray) -> None:
        self._iterations_done += 1

    def apply(self, old, combined, touched):
        return self._prior[touched] + self.damping * combined

    def vertex_value(self, metadata: np.ndarray) -> np.ndarray:
        """Posterior beliefs normalized to sum to 1."""
        total = metadata.sum()
        if total <= 0:
            return metadata
        return metadata / total

    def describe(self) -> dict:
        return {
            **super().describe(),
            "damping": self.damping,
            "num_iterations": self.num_iterations,
            "prior_seed": self.prior_seed,
        }
