"""Benchmark harness reproducing every table and figure of the paper.

* :mod:`repro.bench.harness` -- run-matrix utilities: build algorithms,
  pick deterministic sources, run any system on any dataset, share
  functional traces across baselines.
* :mod:`repro.bench.experiments` -- one entry point per paper artifact
  (``figure5``, ``figure8``, ``figure9a``, ``figure9b``, ``table2``,
  ``table3``, ``table4``, ``figure12``, ``figure13``, ``section7_3``,
  ``worklist_separators``), each returning structured rows.
* :mod:`repro.bench.reporting` -- text rendering of those rows in the same
  layout the paper uses, used by the ``benchmarks/`` pytest files and the
  ``examples/reproduce_paper.py`` driver.
"""

from repro.bench.harness import (
    BenchmarkContext,
    default_source,
    make_algorithm,
    run_simdx,
    run_system,
)
from repro.bench import experiments
from repro.bench import reporting

__all__ = [
    "BenchmarkContext",
    "default_source",
    "make_algorithm",
    "run_simdx",
    "run_system",
    "experiments",
    "reporting",
]
