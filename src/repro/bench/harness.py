"""Run-matrix utilities for the experiment suite.

The experiments sweep (system x algorithm x graph x device); this module
holds the shared plumbing: deterministic source selection, algorithm
construction, running one configuration, and caching of graphs and
functional traces so an 11-graph sweep does not recompute the same BFS five
times for five systems.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.algorithms import ALGORITHMS
from repro.baselines import CuShaLike, GaloisLike, GunrockLike, LigraLike
from repro.baselines.common import ExecutionTrace, trace_execution
from repro.core.acc import ACCAlgorithm
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.filters import FilterMode
from repro.core.fusion import FusionStrategy
from repro.core.metrics import RunResult
from repro.gpu.device import GPUDevice, GPUSpec, K40, get_device_spec
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASET_ORDER, load_dataset

#: Systems understood by :func:`run_system`.
SYSTEM_NAMES = ("simdx", "gunrock", "cusha", "galois", "ligra")

#: Paper Table 4 evaluates these four algorithms across systems.
TABLE4_ALGORITHMS = ("bfs", "pagerank", "sssp", "kcore")


def default_source(graph: CSRGraph) -> int:
    """Deterministic traversal source: the highest-out-degree vertex.

    The paper averages over 64 random sources; for a deterministic,
    reproducible harness we instead pick the hub vertex, which guarantees the
    traversal reaches the giant component on every dataset analogue.
    """
    degrees = graph.out_degrees()
    if degrees.size == 0:
        return 0
    return int(np.argmax(degrees))


def default_sources(graph: CSRGraph, k: int) -> List[int]:
    """Deterministic K-query source set: the K highest-out-degree vertices.

    Extends :func:`default_source` to the batched experiments
    (``SIMDXEngine.run_batch``): distinct hubs, all inside the giant
    component, stable across runs. ``k`` may not exceed the vertex count.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    degrees = graph.out_degrees()
    if k > degrees.size:
        raise ValueError(f"k={k} exceeds the graph's {degrees.size} vertices")
    # Descending degree with ties broken by *lowest* vertex id, so the
    # first entry is exactly default_source's np.argmax pick.
    order = np.argsort(-degrees, kind="stable")
    return [int(v) for v in order[:k]]


def make_algorithm(name: str, graph: CSRGraph, **kwargs) -> ACCAlgorithm:
    """Instantiate an algorithm with benchmark-default parameters."""
    key = name.lower()
    if key not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}")
    if key in ("bfs", "sssp"):
        kwargs.setdefault("source", default_source(graph))
    if key == "kcore":
        kwargs.setdefault("k", 16)
    if key == "bp":
        kwargs.setdefault("num_iterations", 10)
    if key == "pagerank":
        kwargs.setdefault("tolerance", 1e-3)
    return ALGORITHMS[key](**kwargs)


def run_simdx(
    graph: CSRGraph,
    algorithm: ACCAlgorithm,
    *,
    device_spec: GPUSpec = K40,
    config: Optional[EngineConfig] = None,
    **params,
) -> RunResult:
    """Run SIMD-X with the given configuration on one graph."""
    engine = SIMDXEngine(graph, device=GPUDevice(device_spec), config=config)
    return engine.run(algorithm, **params)


def run_system(
    system: str,
    graph: CSRGraph,
    algorithm: ACCAlgorithm,
    *,
    device_spec: GPUSpec = K40,
    config: Optional[EngineConfig] = None,
    trace: Optional[ExecutionTrace] = None,
    **params,
) -> RunResult:
    """Run one named system (``simdx`` / ``gunrock`` / ``cusha`` / ...)."""
    key = system.lower()
    if key == "simdx":
        return run_simdx(
            graph, algorithm, device_spec=device_spec, config=config, **params
        )
    if key == "gunrock":
        return GunrockLike(GPUDevice(device_spec)).run(
            algorithm, graph, trace=trace, **params
        )
    if key == "cusha":
        return CuShaLike(GPUDevice(device_spec)).run(
            algorithm, graph, trace=trace, **params
        )
    if key == "galois":
        return GaloisLike().run(algorithm, graph, trace=trace, **params)
    if key == "ligra":
        return LigraLike().run(algorithm, graph, trace=trace, **params)
    raise KeyError(f"unknown system {system!r}; known: {SYSTEM_NAMES}")


@dataclass
class BenchmarkContext:
    """Caches graphs and functional traces across an experiment sweep.

    Parameters
    ----------
    scale:
        Dataset scale factor passed to :func:`repro.graph.datasets.load_dataset`.
    datasets:
        Which dataset abbreviations to sweep (defaults to the paper's 11).
    device:
        Device spec name used for the GPU systems (default K40).
    """

    scale: float = 1.0
    datasets: Tuple[str, ...] = tuple(DATASET_ORDER)
    device: str = "K40"
    _graphs: Dict[str, CSRGraph] = field(default_factory=dict, repr=False)
    _traces: Dict[Tuple[str, str], ExecutionTrace] = field(default_factory=dict, repr=False)

    @property
    def device_spec(self) -> GPUSpec:
        return get_device_spec(self.device)

    def graph(self, abbrev: str) -> CSRGraph:
        key = abbrev.upper()
        if key not in self._graphs:
            self._graphs[key] = load_dataset(key, self.scale)
        return self._graphs[key]

    def trace(self, abbrev: str, algorithm_name: str) -> ExecutionTrace:
        """Functional trace shared across baseline cost models."""
        key = (abbrev.upper(), algorithm_name.lower())
        if key not in self._traces:
            graph = self.graph(abbrev)
            algorithm = make_algorithm(algorithm_name, graph)
            self._traces[key] = trace_execution(algorithm, graph)
        return self._traces[key]

    def run(
        self,
        system: str,
        abbrev: str,
        algorithm_name: str,
        *,
        config: Optional[EngineConfig] = None,
        device_spec: Optional[GPUSpec] = None,
    ) -> RunResult:
        """Run one (system, graph, algorithm) cell of the matrix."""
        graph = self.graph(abbrev)
        algorithm = make_algorithm(algorithm_name, graph)
        trace = None
        if system.lower() not in ("simdx",):
            trace = self.trace(abbrev, algorithm_name)
        return run_system(
            system,
            graph,
            algorithm,
            device_spec=device_spec or self.device_spec,
            config=config,
            trace=trace,
        )

    def wallclock_config(self, kernel_backend: str) -> EngineConfig:
        """Engine configuration for the wall-clock backend benchmark."""
        return EngineConfig(kernel_backend=kernel_backend)

    def simdx_config(
        self,
        *,
        filter_mode: FilterMode = FilterMode.JIT,
        fusion: FusionStrategy = FusionStrategy.PUSH_PULL,
        overflow_threshold: int = 64,
        **kwargs,
    ) -> EngineConfig:
        """Convenience constructor for ablation configurations."""
        return EngineConfig(
            filter_mode=filter_mode,
            fusion=fusion,
            overflow_threshold=overflow_threshold,
            **kwargs,
        )


# ----------------------------------------------------------------------
# Wall-clock kernel-backend benchmark (``python -m repro.bench.harness``)
# ----------------------------------------------------------------------
#: Schema version of the emitted BENCH_*.json records.
BENCH_SCHEMA_VERSION = 1

#: Algorithms of the wall-clock backend benchmark. Chosen so the pure-loop
#: python backend stays tractable while still covering a traversal (bfs),
#: a weighted traversal (sssp) and an all-active iterative kernel
#: (pagerank) - the three workloads the acceptance gate pins.
BENCH_ALGORITHMS = ("bfs", "sssp", "pagerank")

#: Default datasets for the wall-clock benchmark; override with the
#: ``REPRO_BENCH_DATASETS`` environment variable (comma-separated).
BENCH_DATASETS = ("LJ", "RC")

#: Default dataset scale for the wall-clock benchmark. Deliberately small:
#: the python backend walks every edge in an interpreter loop and the CI
#: regression job re-runs the full matrix on every push.
BENCH_SCALE = 0.25


class BenchSelfCheckError(RuntimeError):
    """Two same-seed benchmark runs disagreed - the run is not deterministic."""


def host_fingerprint() -> Dict[str, str]:
    """Platform/interpreter identity stored alongside wall-clock numbers.

    Wall-clock seconds are only comparable on similar hosts; the
    regression gate therefore compares backend *ratios* and uses this
    record purely to document where the committed baseline was measured.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


#: Target duration of one timed sample; cells faster than this run in an
#: auto-calibrated inner loop (timeit-style) so interpreter noise cannot
#: swamp the measurement.
_SAMPLE_TARGET_S = 0.2
_MAX_INNER_RUNS = 64


def _run_cell(context: BenchmarkContext, abbrev: str, algorithm_name: str,
              backend: str) -> RunResult:
    graph = context.graph(abbrev)  # cached: loading stays outside the clock
    algorithm = make_algorithm(algorithm_name, graph)
    config = context.wallclock_config(backend)
    result = run_simdx(graph, algorithm, device_spec=context.device_spec,
                       config=config)
    if result.failed:
        raise RuntimeError(
            f"benchmark run failed: {abbrev}/{algorithm_name}/{backend}"
        )
    return result


def _timed_sample(context: BenchmarkContext, abbrev: str, algorithm_name: str,
                  backend: str, inner: int) -> float:
    """Wall-clock of one sample: ``inner`` back-to-back runs, per-run mean."""
    start = time.perf_counter()
    for _ in range(inner):
        _run_cell(context, abbrev, algorithm_name, backend)
    return (time.perf_counter() - start) / inner


def _deterministic_fields(result: RunResult) -> Dict[str, object]:
    """The exactly-reproducible slice of a run (everything but wall-clock)."""
    return {
        "iterations": int(result.iterations),
        "simulated_us": float(result.elapsed_us),
        "kernel_launches": int(result.kernel_launches),
        "kernel_edges_walked": int(result.extra["kernel_edges_walked"]),
        "frontier_edges_total": int(
            sum(r.frontier_edges for r in result.iteration_records)
        ),
    }


def run_wallclock_benchmark(
    *,
    scale: float = BENCH_SCALE,
    datasets: Iterable[str] = BENCH_DATASETS,
    algorithms: Iterable[str] = BENCH_ALGORITHMS,
    repeats: int = 5,
    device: str = "K40",
    bench_id: str = "BENCH_0000",
) -> Dict[str, object]:
    """Measure both kernel backends and return a BENCH_*.json record.

    ``bench_id`` names the emitted record (``BENCH_<pr>``): each PR
    commits its own record so the wall-clock trajectory accumulates;
    ``tools/bench_compare.py`` gates consecutive records against each
    other.

    Protocol, per (dataset, algorithm, backend) cell:

    * the graph cache is primed (untimed) before anything starts a
      clock - graph loading stays outside every measurement, including
      the calibration estimate below;
    * two untimed same-seed runs first; their deterministic fields
      (simulated time, iteration count, scanned-edge counters) and result
      values must agree exactly - a mismatch raises
      :class:`BenchSelfCheckError`. The two backends must additionally be
      bit-identical to each other on values and deterministic fields.
    * the untimed runs also calibrate a timeit-style inner loop so every
      timed sample lasts at least ~0.2s - sub-50ms cells would otherwise
      drown a 15% CI gate in interpreter/scheduler noise.
    * ``repeats`` timed samples per backend, interleaved across backends
      so machine-wide slowdowns hit both backends alike; the reported
      wall-clock is the minimum sample (per-run mean within a sample).
    """
    if repeats < 2:
        raise ValueError("repeats must be >= 2 for the same-seed self-check")
    context = BenchmarkContext(scale=scale, datasets=tuple(datasets),
                               device=device)
    benchmarks: List[Dict[str, object]] = []
    for abbrev in context.datasets:
        # Prime the graph cache so the first cell's calibration estimate
        # never times the cold dataset build: an inflated estimate would
        # under-calibrate inner_runs and leave that cell's samples short
        # of _SAMPLE_TARGET_S (extra noise under the 15% CI gate).
        context.graph(abbrev)
        for algorithm_name in algorithms:
            per_backend: Dict[str, Dict[str, object]] = {}
            inner_runs: Dict[str, int] = {}
            reference: Optional[RunResult] = None
            shared: Optional[Dict[str, object]] = None
            for backend in ("python", "numpy"):
                # Untimed warmup pair: same-seed determinism self-check
                # plus the duration estimate for inner-loop calibration.
                start = time.perf_counter()
                first = _run_cell(context, abbrev, algorithm_name, backend)
                estimate = time.perf_counter() - start
                second = _run_cell(context, abbrev, algorithm_name, backend)
                fields = _deterministic_fields(first)
                if _deterministic_fields(second) != fields:
                    raise BenchSelfCheckError(
                        f"{abbrev}/{algorithm_name}/{backend}: same-seed "
                        f"repeats disagree on deterministic fields"
                    )
                if not np.array_equal(second.values, first.values):
                    raise BenchSelfCheckError(
                        f"{abbrev}/{algorithm_name}/{backend}: same-seed "
                        f"repeats disagree on result values"
                    )
                if reference is None:
                    reference, shared = first, fields
                else:
                    if fields != shared:
                        raise BenchSelfCheckError(
                            f"{abbrev}/{algorithm_name}: backends disagree on "
                            f"deterministic fields: {shared} vs {fields}"
                        )
                    if not np.array_equal(first.values, reference.values):
                        raise BenchSelfCheckError(
                            f"{abbrev}/{algorithm_name}: backends disagree on "
                            f"result values"
                        )
                inner_runs[backend] = min(
                    _MAX_INNER_RUNS,
                    max(1, int(_SAMPLE_TARGET_S / max(estimate, 1e-6)) + 1),
                )
            samples: Dict[str, List[float]] = {"python": [], "numpy": []}
            for _ in range(repeats):
                for backend in ("python", "numpy"):
                    samples[backend].append(_timed_sample(
                        context, abbrev, algorithm_name, backend,
                        inner_runs[backend],
                    ))
            for backend in ("python", "numpy"):
                per_backend[backend] = {
                    "wall_clock_s": min(samples[backend]),
                    "inner_runs": inner_runs[backend],
                }
            speedup = (
                per_backend["python"]["wall_clock_s"]
                / per_backend["numpy"]["wall_clock_s"]
            )
            entry: Dict[str, object] = {
                "dataset": abbrev,
                "algorithm": algorithm_name,
                "backends": per_backend,
                "speedup_numpy_over_python": speedup,
            }
            entry.update(shared or {})
            benchmarks.append(entry)
    return {
        "bench_id": bench_id,
        "schema_version": BENCH_SCHEMA_VERSION,
        "config": {
            "scale": scale,
            "datasets": list(context.datasets),
            "algorithms": list(algorithms),
            "repeats": repeats,
            "device": device,
        },
        "host": host_fingerprint(),
        "benchmarks": benchmarks,
    }


def bench_datasets_from_env(default: Iterable[str] = BENCH_DATASETS) -> List[str]:
    """Dataset list from ``REPRO_BENCH_DATASETS`` (comma-separated) or default."""
    raw = os.environ.get("REPRO_BENCH_DATASETS", "")
    names = [part.strip().upper() for part in raw.split(",") if part.strip()]
    return names or list(default)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: measure the kernel backends and optionally emit BENCH JSON."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.harness",
        description="Wall-clock benchmark of the kernel backends "
                    "(python loop reference vs numpy vectorized).",
    )
    parser.add_argument("--emit-bench-json", metavar="PATH", default=None,
                        help="write the benchmark record to PATH as JSON")
    parser.add_argument("--bench-id", default="BENCH_0000",
                        help="record id of the emitted JSON, BENCH_<pr> "
                             "(default %(default)s)")
    parser.add_argument("--scale", type=float, default=BENCH_SCALE,
                        help="dataset scale factor (default %(default)s)")
    parser.add_argument("--datasets", default=None,
                        help="comma-separated dataset abbreviations "
                             "(default: $REPRO_BENCH_DATASETS or LJ,RC)")
    parser.add_argument("--algorithms", default=",".join(BENCH_ALGORITHMS),
                        help="comma-separated algorithms (default %(default)s)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed samples per cell (default %(default)s)")
    args = parser.parse_args(argv)
    if args.datasets is not None:
        datasets = [p.strip().upper() for p in args.datasets.split(",")
                    if p.strip()]
    else:
        datasets = bench_datasets_from_env()
    algorithms = [p.strip().lower() for p in args.algorithms.split(",")
                  if p.strip()]
    record = run_wallclock_benchmark(
        scale=args.scale, datasets=datasets, algorithms=algorithms,
        repeats=args.repeats, bench_id=args.bench_id,
    )
    header = f"{'dataset':>8} {'algorithm':>10} {'python_s':>10} " \
             f"{'numpy_s':>10} {'speedup':>8}"
    print(header)
    for entry in record["benchmarks"]:
        backends = entry["backends"]
        print(f"{entry['dataset']:>8} {entry['algorithm']:>10} "
              f"{backends['python']['wall_clock_s']:>10.4f} "
              f"{backends['numpy']['wall_clock_s']:>10.4f} "
              f"{entry['speedup_numpy_over_python']:>8.2f}")
    if args.emit_bench_json:
        with open(args.emit_bench_json, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote {args.emit_bench_json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI in CI
    raise SystemExit(main())
