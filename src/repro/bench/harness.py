"""Run-matrix utilities for the experiment suite.

The experiments sweep (system x algorithm x graph x device); this module
holds the shared plumbing: deterministic source selection, algorithm
construction, running one configuration, and caching of graphs and
functional traces so an 11-graph sweep does not recompute the same BFS five
times for five systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.algorithms import ALGORITHMS
from repro.baselines import CuShaLike, GaloisLike, GunrockLike, LigraLike
from repro.baselines.common import ExecutionTrace, trace_execution
from repro.core.acc import ACCAlgorithm
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.filters import FilterMode
from repro.core.fusion import FusionStrategy
from repro.core.metrics import RunResult
from repro.gpu.device import GPUDevice, GPUSpec, K40, get_device_spec
from repro.graph.csr import CSRGraph
from repro.graph.datasets import DATASET_ORDER, load_dataset

#: Systems understood by :func:`run_system`.
SYSTEM_NAMES = ("simdx", "gunrock", "cusha", "galois", "ligra")

#: Paper Table 4 evaluates these four algorithms across systems.
TABLE4_ALGORITHMS = ("bfs", "pagerank", "sssp", "kcore")


def default_source(graph: CSRGraph) -> int:
    """Deterministic traversal source: the highest-out-degree vertex.

    The paper averages over 64 random sources; for a deterministic,
    reproducible harness we instead pick the hub vertex, which guarantees the
    traversal reaches the giant component on every dataset analogue.
    """
    degrees = graph.out_degrees()
    if degrees.size == 0:
        return 0
    return int(np.argmax(degrees))


def default_sources(graph: CSRGraph, k: int) -> List[int]:
    """Deterministic K-query source set: the K highest-out-degree vertices.

    Extends :func:`default_source` to the batched experiments
    (``SIMDXEngine.run_batch``): distinct hubs, all inside the giant
    component, stable across runs. ``k`` may not exceed the vertex count.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    degrees = graph.out_degrees()
    if k > degrees.size:
        raise ValueError(f"k={k} exceeds the graph's {degrees.size} vertices")
    # Descending degree with ties broken by *lowest* vertex id, so the
    # first entry is exactly default_source's np.argmax pick.
    order = np.argsort(-degrees, kind="stable")
    return [int(v) for v in order[:k]]


def make_algorithm(name: str, graph: CSRGraph, **kwargs) -> ACCAlgorithm:
    """Instantiate an algorithm with benchmark-default parameters."""
    key = name.lower()
    if key not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}")
    if key in ("bfs", "sssp"):
        kwargs.setdefault("source", default_source(graph))
    if key == "kcore":
        kwargs.setdefault("k", 16)
    if key == "bp":
        kwargs.setdefault("num_iterations", 10)
    if key == "pagerank":
        kwargs.setdefault("tolerance", 1e-3)
    return ALGORITHMS[key](**kwargs)


def run_simdx(
    graph: CSRGraph,
    algorithm: ACCAlgorithm,
    *,
    device_spec: GPUSpec = K40,
    config: Optional[EngineConfig] = None,
    **params,
) -> RunResult:
    """Run SIMD-X with the given configuration on one graph."""
    engine = SIMDXEngine(graph, device=GPUDevice(device_spec), config=config)
    return engine.run(algorithm, **params)


def run_system(
    system: str,
    graph: CSRGraph,
    algorithm: ACCAlgorithm,
    *,
    device_spec: GPUSpec = K40,
    config: Optional[EngineConfig] = None,
    trace: Optional[ExecutionTrace] = None,
    **params,
) -> RunResult:
    """Run one named system (``simdx`` / ``gunrock`` / ``cusha`` / ...)."""
    key = system.lower()
    if key == "simdx":
        return run_simdx(
            graph, algorithm, device_spec=device_spec, config=config, **params
        )
    if key == "gunrock":
        return GunrockLike(GPUDevice(device_spec)).run(
            algorithm, graph, trace=trace, **params
        )
    if key == "cusha":
        return CuShaLike(GPUDevice(device_spec)).run(
            algorithm, graph, trace=trace, **params
        )
    if key == "galois":
        return GaloisLike().run(algorithm, graph, trace=trace, **params)
    if key == "ligra":
        return LigraLike().run(algorithm, graph, trace=trace, **params)
    raise KeyError(f"unknown system {system!r}; known: {SYSTEM_NAMES}")


@dataclass
class BenchmarkContext:
    """Caches graphs and functional traces across an experiment sweep.

    Parameters
    ----------
    scale:
        Dataset scale factor passed to :func:`repro.graph.datasets.load_dataset`.
    datasets:
        Which dataset abbreviations to sweep (defaults to the paper's 11).
    device:
        Device spec name used for the GPU systems (default K40).
    """

    scale: float = 1.0
    datasets: Tuple[str, ...] = tuple(DATASET_ORDER)
    device: str = "K40"
    _graphs: Dict[str, CSRGraph] = field(default_factory=dict, repr=False)
    _traces: Dict[Tuple[str, str], ExecutionTrace] = field(default_factory=dict, repr=False)

    @property
    def device_spec(self) -> GPUSpec:
        return get_device_spec(self.device)

    def graph(self, abbrev: str) -> CSRGraph:
        key = abbrev.upper()
        if key not in self._graphs:
            self._graphs[key] = load_dataset(key, self.scale)
        return self._graphs[key]

    def trace(self, abbrev: str, algorithm_name: str) -> ExecutionTrace:
        """Functional trace shared across baseline cost models."""
        key = (abbrev.upper(), algorithm_name.lower())
        if key not in self._traces:
            graph = self.graph(abbrev)
            algorithm = make_algorithm(algorithm_name, graph)
            self._traces[key] = trace_execution(algorithm, graph)
        return self._traces[key]

    def run(
        self,
        system: str,
        abbrev: str,
        algorithm_name: str,
        *,
        config: Optional[EngineConfig] = None,
        device_spec: Optional[GPUSpec] = None,
    ) -> RunResult:
        """Run one (system, graph, algorithm) cell of the matrix."""
        graph = self.graph(abbrev)
        algorithm = make_algorithm(algorithm_name, graph)
        trace = None
        if system.lower() not in ("simdx",):
            trace = self.trace(abbrev, algorithm_name)
        return run_system(
            system,
            graph,
            algorithm,
            device_spec=device_spec or self.device_spec,
            config=config,
            trace=trace,
        )

    def simdx_config(
        self,
        *,
        filter_mode: FilterMode = FilterMode.JIT,
        fusion: FusionStrategy = FusionStrategy.PUSH_PULL,
        overflow_threshold: int = 64,
        **kwargs,
    ) -> EngineConfig:
        """Convenience constructor for ablation configurations."""
        return EngineConfig(
            filter_mode=filter_mode,
            fusion=fusion,
            overflow_threshold=overflow_threshold,
            **kwargs,
        )
