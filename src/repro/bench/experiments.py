"""One entry point per table / figure of the paper's evaluation (Section 7).

Every function takes a :class:`~repro.bench.harness.BenchmarkContext` (which
controls the dataset scale and selection) and returns plain dictionaries /
lists of rows so that the pytest benchmarks, the reporting module and the
examples can all consume them. EXPERIMENTS.md records the observed outputs
next to the paper's numbers; running ``python -m repro.bench.experiments``
regenerates it from :func:`phase_timings` (the per-algorithm, per-phase
timing baseline plus the traffic-model calibration),
:func:`gather_refinement`, :func:`batching_throughput` (the batched
multi-source serving sweep, which is this repository's own experiment
rather than a paper artifact), :func:`shard_scaling` (the sharded
multi-device feasibility sweep, likewise beyond the paper) and
:func:`dynamic_updates` (the dynamic-graph repair and cross-query reuse
sweep - EXPERIMENTS.md §10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import ALGORITHMS
from repro.analysis import registry as extra_keys
from repro.bench.harness import (
    BenchmarkContext,
    TABLE4_ALGORITHMS,
    default_sources,
    make_algorithm,
    run_simdx,
)
from repro.core.engine import SIMDXEngine
from repro.core import metrics as core_metrics
from repro.core.direction import DEFAULT_TRAFFIC_MODEL, Direction
from repro.core.engine import EngineConfig
from repro.core.filters import FilterMode
from repro.core.fusion import FusionPlan, FusionStrategy, REGISTERS_TABLE
from repro.core.metrics import RunResult, geometric_mean_speedup
from repro.gpu.device import GPUDevice, KNOWN_DEVICES, get_device_spec
from repro.graph.datasets import DATASETS
from repro.graph.properties import summarize


# ----------------------------------------------------------------------
# Figure 5: ACC (atomic-free combine) versus atomic updates
# ----------------------------------------------------------------------
def figure5(ctx: BenchmarkContext, algorithms: Sequence[str] = ("bfs", "sssp")) -> Dict:
    """Speedup of the ACC combine over Gunrock-style atomic updates.

    The paper materializes the *vote* operation with BFS and *aggregation*
    with SSSP and reports ~12% / ~9% average speedup (Figure 5). Here the two
    configurations differ only in how Combine is priced (``atomic_combine``),
    so the measured ratio isolates exactly that design decision.
    """
    rows = []
    for algorithm_name in algorithms:
        kind = "vote" if algorithm_name == "bfs" else "aggregation"
        for abbrev in ctx.datasets:
            acc = ctx.run(
                "simdx", abbrev, algorithm_name,
                config=EngineConfig(atomic_combine=False),
            )
            atomic = ctx.run(
                "simdx", abbrev, algorithm_name,
                config=EngineConfig(atomic_combine=True),
            )
            speedup = atomic.elapsed_us / acc.elapsed_us if acc.elapsed_us else float("nan")
            rows.append(
                {
                    "graph": abbrev,
                    "algorithm": algorithm_name,
                    "operation": kind,
                    "acc_ms": acc.elapsed_ms,
                    "atomic_ms": atomic.elapsed_ms,
                    "speedup": speedup,
                }
            )
    by_kind = {}
    for kind in ("vote", "aggregation"):
        vals = [r["speedup"] for r in rows if r["operation"] == kind]
        by_kind[kind] = geometric_mean_speedup(vals)
    return {"rows": rows, "average_speedup": by_kind}


# ----------------------------------------------------------------------
# Figure 8: JIT filter activation patterns
# ----------------------------------------------------------------------
def figure8(
    ctx: BenchmarkContext, algorithms: Sequence[str] = ("bfs", "kcore", "sssp")
) -> Dict:
    """Which filter (online / ballot) each iteration used, per graph."""
    rows = []
    for algorithm_name in algorithms:
        for abbrev in ctx.datasets:
            result = ctx.run("simdx", abbrev, algorithm_name)
            trace = result.filter_trace
            ballot_iters = [i + 1 for i, f in enumerate(trace) if f == "ballot"]
            rows.append(
                {
                    "algorithm": algorithm_name,
                    "graph": abbrev,
                    "iterations": result.iterations,
                    "ballot_iterations": ballot_iters,
                    "online_iterations": result.iterations - len(ballot_iters),
                    "pattern": _segments(trace),
                    "uses_ballot": bool(ballot_iters),
                }
            )
    return {"rows": rows}


def _segments(trace: List[str]) -> str:
    if not trace:
        return ""
    parts = []
    current, count = trace[0], 0
    for name in trace:
        if name == current:
            count += 1
        else:
            parts.append(f"{current}*{count}")
            current, count = name, 1
    parts.append(f"{current}*{count}")
    return ", ".join(parts)


# ----------------------------------------------------------------------
# Figure 9(a): overflow-threshold sweep, (b): shadow-online overhead
# ----------------------------------------------------------------------
def figure9a(
    ctx: BenchmarkContext,
    thresholds: Sequence[int] = (1, 4, 16, 64, 256, 1024, 4096, 16384),
    algorithm_name: str = "bfs",
) -> Dict:
    """Relative JIT performance versus the online-filter overflow threshold."""
    per_threshold: Dict[int, List[float]] = {t: [] for t in thresholds}
    for abbrev in ctx.datasets:
        times = {}
        for threshold in thresholds:
            result = ctx.run(
                "simdx", abbrev, algorithm_name,
                config=EngineConfig(overflow_threshold=threshold),
            )
            times[threshold] = result.elapsed_us
        best = min(times.values())
        for threshold in thresholds:
            per_threshold[threshold].append(best / times[threshold] if times[threshold] else 0.0)
    rows = [
        {
            "threshold": threshold,
            "relative_performance": float(np.mean(values)) if values else float("nan"),
        }
        for threshold, values in per_threshold.items()
    ]
    best_row = max(rows, key=lambda r: r["relative_performance"])
    return {"rows": rows, "best_threshold": best_row["threshold"]}


def figure9b(ctx: BenchmarkContext, algorithm_name: str = "sssp") -> Dict:
    """Overhead of keeping the online filter running in ballot mode."""
    rows = []
    for abbrev in ctx.datasets:
        with_shadow = ctx.run(
            "simdx", abbrev, algorithm_name,
            config=EngineConfig(shadow_online=True),
        )
        without_shadow = ctx.run(
            "simdx", abbrev, algorithm_name,
            config=EngineConfig(shadow_online=False),
        )
        if without_shadow.elapsed_us:
            overhead = (with_shadow.elapsed_us - without_shadow.elapsed_us) / without_shadow.elapsed_us
        else:
            overhead = 0.0
        rows.append(
            {
                "graph": abbrev,
                "with_shadow_ms": with_shadow.elapsed_ms,
                "without_shadow_ms": without_shadow.elapsed_ms,
                "overhead_percent": 100.0 * overhead,
            }
        )
    avg = float(np.mean([r["overhead_percent"] for r in rows])) if rows else 0.0
    worst = max(rows, key=lambda r: r["overhead_percent"]) if rows else None
    return {"rows": rows, "average_overhead_percent": avg, "max_row": worst}


# ----------------------------------------------------------------------
# Table 2: register consumption and kernel-launch counts
# ----------------------------------------------------------------------
def table2(
    ctx: Optional[BenchmarkContext] = None,
    *,
    reference_graph: str = "LJ",
    algorithm_name: str = "bfs",
) -> Dict:
    """Register footprints per kernel and launch counts per fusion strategy."""
    registers = {
        "push_no_fusion": {
            k.replace("push_", ""): v for k, v in REGISTERS_TABLE.items()
            if k.startswith("push_")
        },
        "pull_no_fusion": {
            k.replace("pull_", ""): v for k, v in REGISTERS_TABLE.items()
            if k.startswith("pull_")
        },
        "selective_fusion": {
            "push": REGISTERS_TABLE["fused_push"],
            "pull": REGISTERS_TABLE["fused_pull"],
        },
        "all_fusion": REGISTERS_TABLE["fused_all"],
    }

    launches = {}
    if ctx is not None:
        for strategy in FusionStrategy:
            result = ctx.run(
                "simdx", reference_graph, algorithm_name,
                config=EngineConfig(fusion=strategy),
            )
            launches[strategy.value] = {
                "kernel_launches": result.kernel_launches,
                "iterations": result.iterations,
                "direction_switches": result.extra.get(extra_keys.DIRECTION_SWITCHES, 0),
            }
    return {"registers": registers, "launches": launches}


# ----------------------------------------------------------------------
# Table 3: dataset inventory
# ----------------------------------------------------------------------
def table3(ctx: BenchmarkContext) -> Dict:
    """Paper graph sizes next to the analogue actually generated."""
    rows = []
    for abbrev in ctx.datasets:
        spec = DATASETS[abbrev]
        graph = ctx.graph(abbrev)
        stats = summarize(graph)
        rows.append(
            {
                "abbrev": abbrev,
                "paper_name": spec.paper_name,
                "category": spec.category,
                "paper_vertices": spec.paper_vertices,
                "paper_edges": spec.paper_edges,
                "analogue_vertices": graph.num_vertices,
                "analogue_edges": graph.num_edges,
                "diameter_class": spec.diameter_class,
                "analogue_diameter_lb": stats["diameter_lb"],
                "max_degree": stats["max_degree"],
                "degree_gini": stats["degree_gini"],
            }
        )
    return {"rows": rows}


# ----------------------------------------------------------------------
# Table 4: runtime of every system on every graph
# ----------------------------------------------------------------------
def table4(
    ctx: BenchmarkContext,
    algorithms: Sequence[str] = TABLE4_ALGORITHMS,
    systems: Sequence[str] = ("simdx", "cusha", "gunrock", "galois", "ligra"),
) -> Dict:
    """The headline comparison: SIMD-X versus CuSha / Gunrock / Galois / Ligra."""
    cells: List[Dict] = []
    for algorithm_name in algorithms:
        # The paper compares k-Core only against Ligra (other systems do not
        # implement it); mirror that restriction.
        algo_systems = ("simdx", "ligra") if algorithm_name == "kcore" else systems
        for system in algo_systems:
            for abbrev in ctx.datasets:
                result = ctx.run(system, abbrev, algorithm_name)
                cells.append(
                    {
                        "algorithm": algorithm_name,
                        "system": result.system,
                        "system_key": system,
                        "graph": abbrev,
                        "ms": None if result.failed else result.elapsed_ms,
                        "failed": result.failed,
                        "failure_reason": result.failure_reason,
                        "iterations": result.iterations,
                    }
                )

    speedups: Dict[str, Dict[str, float]] = {}
    for algorithm_name in algorithms:
        speedups[algorithm_name] = {}
        simdx = {
            c["graph"]: c for c in cells
            if c["algorithm"] == algorithm_name and c["system_key"] == "simdx"
        }
        for system in systems:
            if system == "simdx":
                continue
            ratios = []
            for c in cells:
                if c["algorithm"] != algorithm_name or c["system_key"] != system:
                    continue
                base = simdx.get(c["graph"])
                if base is None or not base["ms"] or c["ms"] is None:
                    continue
                ratios.append(c["ms"] / base["ms"])
            if ratios:
                speedups[algorithm_name][system] = geometric_mean_speedup(ratios)
    return {"cells": cells, "simdx_speedup_over": speedups}


# ----------------------------------------------------------------------
# Figure 12: JIT task management versus ballot-only and online-only
# ----------------------------------------------------------------------
def figure12(
    ctx: BenchmarkContext, algorithms: Sequence[str] = ("bfs", "kcore", "sssp")
) -> Dict:
    """Speedup of each filter configuration, normalized to the ballot filter."""
    rows = []
    for algorithm_name in algorithms:
        for abbrev in ctx.datasets:
            ballot = ctx.run(
                "simdx", abbrev, algorithm_name,
                config=EngineConfig(filter_mode=FilterMode.BALLOT),
            )
            online = ctx.run(
                "simdx", abbrev, algorithm_name,
                config=EngineConfig(filter_mode=FilterMode.ONLINE),
            )
            jit = ctx.run(
                "simdx", abbrev, algorithm_name,
                config=EngineConfig(filter_mode=FilterMode.JIT),
            )
            rows.append(
                {
                    "algorithm": algorithm_name,
                    "graph": abbrev,
                    "ballot_ms": None if ballot.failed else ballot.elapsed_ms,
                    "online_ms": None if online.failed else online.elapsed_ms,
                    "online_failed": online.failed,
                    "jit_ms": None if jit.failed else jit.elapsed_ms,
                    "online_speedup_vs_ballot": _ratio(ballot, online),
                    "jit_speedup_vs_ballot": _ratio(ballot, jit),
                    # Executed directions of the JIT run (the gather
                    # iterations never overflow the online bins - each
                    # worker records its own destination once - so the
                    # filter choice correlates with the direction phase).
                    "jit_pull_iterations": jit.direction_trace.count("pull"),
                }
            )
    averages = {}
    for algorithm_name in algorithms:
        vals = [
            r["jit_speedup_vs_ballot"]
            for r in rows
            if r["algorithm"] == algorithm_name and r["jit_speedup_vs_ballot"] is not None
        ]
        averages[algorithm_name] = geometric_mean_speedup(vals)
    return {"rows": rows, "jit_speedup_over_ballot": averages}


def _ratio(denominator: RunResult, numerator: RunResult) -> Optional[float]:
    """Speedup of ``numerator`` over ``denominator`` (None if either failed)."""
    if numerator.failed or denominator.failed or numerator.elapsed_us == 0:
        return None
    return denominator.elapsed_us / numerator.elapsed_us


# ----------------------------------------------------------------------
# Figure 13: push-pull fusion versus non-fusion and all-fusion
# ----------------------------------------------------------------------
def figure13(
    ctx: BenchmarkContext,
    algorithms: Sequence[str] = ("bfs", "bp", "kcore", "pagerank", "sssp"),
) -> Dict:
    """Speedup of each fusion strategy, normalized to no fusion."""
    rows = []
    for algorithm_name in algorithms:
        for abbrev in ctx.datasets:
            runs = {}
            for strategy in FusionStrategy:
                runs[strategy] = ctx.run(
                    "simdx", abbrev, algorithm_name,
                    config=EngineConfig(fusion=strategy),
                )
            base = runs[FusionStrategy.NONE]
            push_pull = runs[FusionStrategy.PUSH_PULL]
            switches = push_pull.extra.get(extra_keys.DIRECTION_SWITCHES, 0)
            rows.append(
                {
                    "algorithm": algorithm_name,
                    "graph": abbrev,
                    "non_fusion_ms": base.elapsed_ms,
                    "all_fusion_ms": runs[FusionStrategy.ALL].elapsed_ms,
                    "push_pull_ms": push_pull.elapsed_ms,
                    "all_fusion_speedup": _ratio(base, runs[FusionStrategy.ALL]),
                    "push_pull_speedup": _ratio(base, push_pull),
                    "iterations": base.iterations,
                    # Direction fidelity of the selectively-fused run: the
                    # executed gather iterations, the phase switches, and the
                    # launches those switches forced (Table 2's launch rule:
                    # one per direction phase).
                    "pull_iterations": push_pull.direction_trace.count("pull"),
                    "direction_switches": switches,
                    "push_pull_launches": push_pull.kernel_launches,
                }
            )
    averages = {}
    for algorithm_name in algorithms:
        push_pull = [
            r["push_pull_speedup"] for r in rows
            if r["algorithm"] == algorithm_name and r["push_pull_speedup"]
        ]
        all_fusion = [
            r["all_fusion_speedup"] for r in rows
            if r["algorithm"] == algorithm_name and r["all_fusion_speedup"]
        ]
        averages[algorithm_name] = {
            "push_pull_vs_none": geometric_mean_speedup(push_pull),
            "all_vs_none": geometric_mean_speedup(all_fusion),
        }
    return {"rows": rows, "average_speedups": averages}


# ----------------------------------------------------------------------
# Section 7.3: scaling across GPU generations
# ----------------------------------------------------------------------
def section7_3(
    ctx: BenchmarkContext,
    devices: Sequence[str] = ("K20", "K40", "P100"),
    algorithm_name: str = "bfs",
    systems: Sequence[str] = ("simdx", "gunrock", "cusha"),
) -> Dict:
    """Performance of each system across GPU models, normalized to K20."""
    rows = []
    for system in systems:
        per_device = {}
        for device in devices:
            times = []
            for abbrev in ctx.datasets:
                result = ctx.run(
                    system, abbrev, algorithm_name,
                    device_spec=get_device_spec(device),
                )
                if not result.failed:
                    times.append(result.elapsed_us)
            per_device[device] = float(np.mean(times)) if times else float("nan")
        base = per_device.get(devices[0], float("nan"))
        rows.append(
            {
                "system": system,
                "mean_ms": {d: per_device[d] / 1000.0 for d in devices},
                "speedup_vs_first": {
                    d: (base / per_device[d]) if per_device[d] else float("nan")
                    for d in devices
                },
            }
        )

    # Configurable thread count of SIMD-X's fused kernel per device - the
    # mechanism the paper credits for the better scaling.
    plan = FusionPlan(FusionStrategy.PUSH_PULL)
    thread_counts = {
        d: plan.configurable_threads(get_device_spec(d)) for d in devices
    }
    return {"rows": rows, "simdx_configurable_threads": thread_counts}


# ----------------------------------------------------------------------
# Section 4: worklist-separator stability
# ----------------------------------------------------------------------
def worklist_separators(
    ctx: BenchmarkContext,
    small_medium: Sequence[int] = (4, 16, 32, 64, 128, 512),
    medium_large: Sequence[int] = (128, 256, 512, 2048, 4096),
    algorithm_name: str = "bfs",
    graphs: Optional[Sequence[str]] = None,
) -> Dict:
    """Sensitivity of performance to the small/medium/large separators."""
    graphs = list(graphs) if graphs is not None else list(ctx.datasets)[:4]
    sm_rows = []
    for sep in small_medium:
        times = []
        for abbrev in graphs:
            result = ctx.run(
                "simdx", abbrev, algorithm_name,
                config=EngineConfig(
                    small_medium_separator=sep,
                    medium_large_separator=max(2048, sep),
                ),
            )
            times.append(result.elapsed_us)
        sm_rows.append({"separator": sep, "mean_ms": float(np.mean(times)) / 1000.0})
    ml_rows = []
    for sep in medium_large:
        times = []
        for abbrev in graphs:
            result = ctx.run(
                "simdx", abbrev, algorithm_name,
                config=EngineConfig(
                    small_medium_separator=32, medium_large_separator=sep
                ),
            )
            times.append(result.elapsed_us)
        ml_rows.append({"separator": sep, "mean_ms": float(np.mean(times)) / 1000.0})
    return {"small_medium": sm_rows, "medium_large": ml_rows}


# ----------------------------------------------------------------------
# EXPERIMENTS.md baseline: per-phase timings + traffic-model calibration
# ----------------------------------------------------------------------
ALL_ALGORITHMS = ("bfs", "sssp", "pagerank", "wcc", "kcore", "spmv", "bp")

_FORCED_PUSH = EngineConfig(direction_auto=False, forced_direction=Direction.PUSH)
_FORCED_PULL = EngineConfig(direction_auto=False, forced_direction=Direction.PULL)


def phase_timings(
    ctx: BenchmarkContext,
    algorithms: Sequence[str] = ALL_ALGORITHMS,
    graphs: Optional[Sequence[str]] = None,
) -> Dict:
    """Per-algorithm, per-phase timing baselines + traffic-model calibration.

    For each (algorithm, graph) cell this runs the default auto-direction
    configuration and folds its iteration trace into consecutive push/pull
    phases (``repro.core.metrics.phase_timings``), then runs forced-push and
    forced-pull configurations and fits the pull traffic-model constants
    back out of the measured timings
    (``repro.core.metrics.calibrate_pull_constants``). The fitted ratio
    ``pull_scan_over_push_edge`` is directly comparable to the shipped
    ``TrafficModel.pull_scan_ops / push_edge_ops``; for voting combines the
    gather terminates early, so their fitted scan cost also reflects
    ``voting_pull_scan_fraction``.
    """
    graphs = list(graphs) if graphs is not None else list(ctx.datasets)
    phase_rows: List[Dict] = []
    trace_rows: List[Dict] = []
    per_algorithm_fit: Dict[str, Dict[str, float]] = {}
    pooled_records: Dict[str, Dict[str, List]] = {
        "aggregation": {"push": [], "pull": []},
        "voting": {"push": [], "pull": []},
    }

    for algorithm_name in algorithms:
        push_records: List = []
        pull_records: List = []
        for abbrev in graphs:
            auto = ctx.run("simdx", abbrev, algorithm_name)
            if auto.failed:
                continue
            for index, phase in enumerate(
                core_metrics.phase_timings(auto.iteration_records)
            ):
                phase_rows.append(
                    {
                        "algorithm": algorithm_name,
                        "graph": abbrev,
                        "phase": index,
                        "direction": phase.direction,
                        "iterations": phase.iterations,
                        "edges": phase.frontier_edges,
                        "active_edges": phase.active_edges,
                        "compute_us": phase.compute_us,
                        "filter_us": phase.filter_us,
                        "total_us": phase.total_us,
                        "us_per_edge": phase.compute_us_per_edge,
                    }
                )
            trace_rows.append(_direction_filter_row(auto, algorithm_name, abbrev))

            push = ctx.run("simdx", abbrev, algorithm_name, config=_FORCED_PUSH)
            pull = ctx.run("simdx", abbrev, algorithm_name, config=_FORCED_PULL)
            if not push.failed:
                push_records.extend(push.iteration_records)
            if not pull.failed:
                pull_records.extend(pull.iteration_records)

        if push_records and pull_records:
            fit = core_metrics.calibrate_pull_constants(push_records, pull_records)
            per_algorithm_fit[algorithm_name] = fit
            kind = ALGORITHMS[algorithm_name].combine_kind.value
            pooled_records[kind]["push"].extend(push_records)
            pooled_records[kind]["pull"].extend(pull_records)

    pooled_fit = {
        kind: core_metrics.calibrate_pull_constants(pool["push"], pool["pull"])
        for kind, pool in pooled_records.items()
        if pool["push"] and pool["pull"]
    }
    model = DEFAULT_TRAFFIC_MODEL
    return {
        "phase_rows": phase_rows,
        "trace_rows": trace_rows,
        "calibration": {
            "per_algorithm": per_algorithm_fit,
            "pooled": pooled_fit,
            "shipped": {
                "push_edge_ops": model.push_edge_ops,
                "pull_scan_ops": model.pull_scan_ops,
                "pull_active_edge_ops": model.pull_active_edge_ops,
                "vertex_ops": model.vertex_ops,
                "voting_pull_scan_fraction": model.voting_pull_scan_fraction,
                "pull_scan_over_push_edge": model.pull_scan_ops / model.push_edge_ops,
            },
        },
    }


def _direction_filter_row(result: RunResult, algorithm_name: str, abbrev: str) -> Dict:
    """Direction-aware JIT fidelity of one run (Figure 8 with directions)."""
    pairs = list(zip(result.direction_trace, result.filter_trace))
    pre_armed = len(result.extra.get(extra_keys.JIT_PRE_ARMED_ITERATIONS, []))
    return {
        "algorithm": algorithm_name,
        "graph": abbrev,
        "iterations": result.iterations,
        "pull_iterations": result.direction_trace.count("pull"),
        "pull_ballot_iterations": sum(
            1 for d, f in pairs if d == "pull" and f == "ballot"
        ),
        "pre_armed_ballots": pre_armed,
        "pattern": _segments(result.filter_trace),
        "direction_pattern": _segments(result.direction_trace),
    }


def gather_refinement(
    ctx: BenchmarkContext,
    graphs: Optional[Sequence[str]] = None,
) -> Dict:
    """Effect of frontier-dependent gather-candidate pruning (SSSP / WCC).

    Runs each algorithm forced-pull twice - once as shipped, once with the
    frontier-dependent bound disabled - and compares the total scanned
    in-edges. Values must be bit-identical; the scanned-edge shrink is the
    benefit of pruning settled vertices from the gather worklist.
    """
    from repro.algorithms.sssp import SSSP
    from repro.algorithms.wcc import WCC

    class _UnprunedSSSP(SSSP):
        def gather_mask(self, metadata, graph, frontier=None):
            return super().gather_mask(metadata, graph, None)

    class _UnprunedWCC(WCC):
        def gather_mask(self, metadata, graph, frontier=None):
            return super().gather_mask(metadata, graph, None)

    from repro.bench.harness import default_source

    graphs = list(graphs) if graphs is not None else list(ctx.datasets)
    rows = []
    for algorithm_name, pruned_cls, unpruned_cls in (
        ("sssp", SSSP, _UnprunedSSSP),
        ("wcc", WCC, _UnprunedWCC),
    ):
        for abbrev in graphs:
            graph = ctx.graph(abbrev)
            kwargs = (
                {"source": default_source(graph)} if algorithm_name == "sssp" else {}
            )
            pruned = run_simdx(graph, pruned_cls(**kwargs), config=_FORCED_PULL)
            unpruned = run_simdx(graph, unpruned_cls(**kwargs), config=_FORCED_PULL)
            if pruned.failed or unpruned.failed:
                continue
            identical = bool(np.array_equal(pruned.values, unpruned.values))
            scanned_pruned = sum(r.frontier_edges for r in pruned.iteration_records)
            scanned_unpruned = sum(
                r.frontier_edges for r in unpruned.iteration_records
            )
            rows.append(
                {
                    "algorithm": algorithm_name,
                    "graph": abbrev,
                    "scanned_edges_pruned": scanned_pruned,
                    "scanned_edges_unpruned": scanned_unpruned,
                    "shrink_percent": (
                        100.0 * (1.0 - scanned_pruned / scanned_unpruned)
                        if scanned_unpruned else 0.0
                    ),
                    "elapsed_ms_pruned": pruned.elapsed_ms,
                    "elapsed_ms_unpruned": unpruned.elapsed_ms,
                    "values_identical": identical,
                }
            )
    return {"rows": rows}


# ----------------------------------------------------------------------
# Batched multi-source throughput (the serving story, docs/batching.md)
# ----------------------------------------------------------------------
#: Lane counts the batching experiment sweeps (K concurrent queries).
BATCH_LANE_COUNTS = (1, 4, 16, 64)


def batching_throughput(
    ctx: BenchmarkContext,
    lane_counts: Sequence[int] = BATCH_LANE_COUNTS,
    algorithms: Sequence[str] = ("bfs", "sssp"),
    graphs: Optional[Sequence[str]] = None,
) -> Dict:
    """Queries/sec of ``run_batch`` versus a serial loop over the same K.

    For each (algorithm, graph, K) cell this answers the K highest-degree
    sources once through the batched engine and once as K independent
    ``run`` calls, verifies the batched per-lane values are bit-identical
    to the independent runs, and reports simulated throughput plus the
    amortization bookkeeping (union edges walked vs (edge, lane) pairs
    evaluated - the serial loop walks every pair as a full edge).

    A batch that does not fit the device appears as a failed row (Table-4
    style): the K metadata arrays are the dominant batching memory cost,
    so paper-scale graphs whose single run fits the modeled K40 can OOM at
    higher lane counts.
    """
    graphs = list(graphs) if graphs is not None else list(ctx.datasets)
    rows: List[Dict] = []
    for algorithm_name in algorithms:
        for abbrev in graphs:
            graph = ctx.graph(abbrev)
            counts = sorted(k for k in lane_counts if k <= graph.num_vertices)
            if not counts:
                continue
            # The source sets are nested prefixes (top-K by degree), so one
            # serial sweep serves every lane count - grown lazily, because
            # the baselines of an OOM'd batch cell would never be read.
            all_sources = default_sources(graph, max(counts))
            singles: List[RunResult] = []
            for k in counts:
                sources = all_sources[:k]
                engine = SIMDXEngine(graph, device=GPUDevice(ctx.device_spec))
                batch = engine.run_batch(
                    make_algorithm(algorithm_name, graph), sources
                )
                if batch.failed:
                    rows.append(
                        {
                            "algorithm": algorithm_name,
                            "graph": abbrev,
                            "lanes": k,
                            "failed": True,
                            "failure_reason": batch.failure_reason,
                        }
                    )
                    continue
                while len(singles) < k:
                    singles.append(
                        run_simdx(
                            graph,
                            make_algorithm(
                                algorithm_name, graph,
                                source=all_sources[len(singles)],
                            ),
                            device_spec=ctx.device_spec,
                        )
                    )
                serial_us = sum(s.elapsed_us for s in singles[:k])
                identical = all(
                    np.array_equal(batch.values[lane], singles[lane].values)
                    for lane in range(k)
                )
                rows.append(
                    {
                        "algorithm": algorithm_name,
                        "graph": abbrev,
                        "lanes": k,
                        "failed": False,
                        "batch_ms": batch.elapsed_ms,
                        "serial_ms": serial_us / 1000.0,
                        "batch_qps": batch.queries_per_second,
                        "serial_qps": (
                            k / (serial_us / 1e6) if serial_us else float("nan")
                        ),
                        "speedup": (
                            serial_us / batch.elapsed_us
                            if batch.elapsed_us else float("nan")
                        ),
                        "iterations": batch.iterations,
                        "union_edges": batch.extra[extra_keys.UNION_EDGES_WALKED],
                        "lane_edge_pairs": batch.extra[extra_keys.LANE_EDGE_PAIRS],
                        "values_identical": identical,
                    }
                )
    return {"rows": rows}


# ----------------------------------------------------------------------
# Lane-aware direction selection: split benefit vs decide-once batching
# ----------------------------------------------------------------------
#: Graph shapes where union and lane direction interests diverge: the road
#: analogues (high diameter, frontiers that never individually cross the
#: pull threshold) and the RMAT-family synthetics (skewed but with long
#: barely-pruned SSSP gather tails).
SPLIT_BENEFIT_SHAPES = ("ER", "RC", "KR", "RM")


def split_benefit(
    ctx: BenchmarkContext,
    lane_counts: Sequence[int] = (4, 16),
    algorithms: Sequence[str] = ("sssp", "bfs"),
    graphs: Optional[Sequence[str]] = None,
) -> Dict:
    """Lane-aware direction selection vs decide-once (union) batching.

    For each (algorithm, graph, K) cell this answers the same K queries
    twice - once with ``EngineConfig.lane_aware_split`` (the default) and
    once with the PR-3 decide-once union approximation - verifies the two
    are bit-identical, and compares the scanned-in-edge totals
    (``extra["pull_edges_scanned"]``), the overall walked edges and the
    simulated time. The scanned-edge gap is the cost the union
    approximation pays when it crosses the pull threshold before any
    single lane would (road shapes, barely-pruned SSSP gathers); the
    split/agreed per-lane decisions close it. The time column shows the
    other side of the trade: each extra sub-batch pays its own launches,
    barriers and task-management pass, and on voting combines (BFS) the
    union's shared gather scan is cheap per edge - which is exactly what
    ``EngineConfig.split_margin`` arbitrates.
    """
    if graphs is None:
        graphs = [g for g in ctx.datasets if g in SPLIT_BENEFIT_SHAPES]
        if not graphs:
            graphs = list(ctx.datasets)
    rows: List[Dict] = []
    for algorithm_name in algorithms:
        for abbrev in graphs:
            graph = ctx.graph(abbrev)
            for k in lane_counts:
                if k > graph.num_vertices:
                    continue
                sources = default_sources(graph, k)
                results = {}
                for mode, config in (
                    ("lane_aware", EngineConfig()),
                    ("decide_once", EngineConfig(lane_aware_split=False)),
                ):
                    engine = SIMDXEngine(
                        graph, device=GPUDevice(ctx.device_spec), config=config
                    )
                    results[mode] = engine.run_batch(
                        make_algorithm(algorithm_name, graph), sources
                    )
                on, off = results["lane_aware"], results["decide_once"]
                if on.failed or off.failed:
                    rows.append(
                        {
                            "algorithm": algorithm_name,
                            "graph": abbrev,
                            "lanes": k,
                            "failed": True,
                            "failure_reason": (
                                on.failure_reason or off.failure_reason
                            ),
                        }
                    )
                    continue
                rows.append(
                    {
                        "algorithm": algorithm_name,
                        "graph": abbrev,
                        "lanes": k,
                        "failed": False,
                        "scanned_lane_aware": on.extra[extra_keys.PULL_EDGES_SCANNED],
                        "scanned_decide_once": off.extra[extra_keys.PULL_EDGES_SCANNED],
                        "walked_lane_aware": on.extra[extra_keys.UNION_EDGES_WALKED],
                        "walked_decide_once": off.extra[extra_keys.UNION_EDGES_WALKED],
                        "ms_lane_aware": on.elapsed_ms,
                        "ms_decide_once": off.elapsed_ms,
                        "split_iterations": on.extra[extra_keys.LANE_SPLITS],
                        "values_identical": bool(
                            np.array_equal(on.values, off.values)
                        ),
                    }
                )
    return {"rows": rows}


# ----------------------------------------------------------------------
# Sharded multi-device execution: scaling past one device's memory
# ----------------------------------------------------------------------
#: Graph shapes whose K=16 batch OOMs one modeled K40 (the §5 blank
#: cells): TW's lane metadata lands on top of a near-capacity CSR, ER's
#: 50.9M modeled vertices make the lane arrays alone exceed the device.
SHARD_SCALING_SHAPES = ("TW", "ER")

#: The shard-count sweep: single device (the feasibility baseline the
#: other counts are compared against), then 2 and 4 simulated devices.
SHARD_COUNTS_SWEEP = (1, 2, 4)


def shard_scaling(
    ctx: BenchmarkContext,
    lane_counts: Sequence[int] = (4, 16),
    algorithms: Sequence[str] = ("bfs", "sssp"),
    graphs: Optional[Sequence[str]] = None,
    shard_counts: Sequence[int] = SHARD_COUNTS_SWEEP,
) -> Dict:
    """Batched feasibility and cost versus ``EngineConfig.num_shards``.

    For each (algorithm, graph, K) cell this answers the same K
    highest-degree sources once per shard count. The headline rows are
    the ones where the single-device batch OOMs (its K lane-metadata
    arrays do not fit the modeled K40) but the same batch completes on
    2 and 4 shards, every per-shard peak under the single-device
    budget - the multi-device analogue of Table 4's blank cells. Every
    completed sharded batch is verified bit-identical per lane against
    independent single-source runs, and the boundary-update count
    records the exchange traffic the partition paid for the capacity.
    """
    if graphs is None:
        graphs = [g for g in ctx.datasets if g in SHARD_SCALING_SHAPES]
        if not graphs:
            graphs = list(ctx.datasets)
    rows: List[Dict] = []
    for algorithm_name in algorithms:
        for abbrev in graphs:
            graph = ctx.graph(abbrev)
            for k in lane_counts:
                if k > graph.num_vertices:
                    continue
                sources = default_sources(graph, k)
                reference: Optional[List[np.ndarray]] = None
                for num_shards in shard_counts:
                    engine = SIMDXEngine(
                        graph,
                        device=GPUDevice(ctx.device_spec),
                        config=EngineConfig(num_shards=num_shards),
                    )
                    batch = engine.run_batch(
                        make_algorithm(algorithm_name, graph), sources
                    )
                    if batch.failed:
                        rows.append(
                            {
                                "algorithm": algorithm_name,
                                "graph": abbrev,
                                "lanes": k,
                                "shards": num_shards,
                                "failed": True,
                                "failure_reason": batch.failure_reason,
                                "device": batch.device,
                            }
                        )
                        continue
                    # The oracle is K independent single-source runs
                    # (which always fit: single-run metadata is two
                    # arrays, not 2K) - grown once per cell, lazily,
                    # because an all-OOM cell never reads it.
                    if reference is None:
                        reference = [
                            run_simdx(
                                graph,
                                make_algorithm(
                                    algorithm_name, graph, source=source
                                ),
                                device_spec=ctx.device_spec,
                            ).values
                            for source in sources
                        ]
                    identical = all(
                        np.array_equal(batch.values[lane], reference[lane])
                        for lane in range(k)
                    )
                    if num_shards > 1:
                        peak = max(batch.extra[extra_keys.SHARD_PEAK_BYTES])
                        boundary = batch.extra[
                            extra_keys.SHARD_BOUNDARY_UPDATES
                        ]
                    else:
                        peak = engine.device.profiler.peak_allocated_bytes
                        boundary = 0
                    rows.append(
                        {
                            "algorithm": algorithm_name,
                            "graph": abbrev,
                            "lanes": k,
                            "shards": num_shards,
                            "failed": False,
                            "batch_ms": batch.elapsed_ms,
                            "device": batch.device,
                            "boundary_updates": boundary,
                            "max_peak_bytes": peak,
                            "values_identical": identical,
                        }
                    )
    return {"rows": rows}


# ----------------------------------------------------------------------
# Serving latency under load (src/repro/serve/, docs/serving.md)
# ----------------------------------------------------------------------
#: ``max_wait_ms`` settings the serving sweep compares (the latency /
#: throughput knob of the admission policy).
SERVING_WAIT_SWEEP_MS = (0.5, 2.0, 8.0)

#: Offered load as multiples of the base single-query service rate
#: (1e6 / single-run simulated µs): under-loaded, saturating, over-loaded.
SERVING_LOAD_SWEEP = (0.5, 2.0, 8.0)


def serving_latency(
    ctx: BenchmarkContext,
    *,
    algorithm_name: str = "bfs",
    dataset: Optional[str] = None,
    num_queries: int = 96,
    source_pool: int = 24,
    max_batch: int = 8,
    max_queue: int = 32,
    wait_sweep_ms: Sequence[float] = SERVING_WAIT_SWEEP_MS,
    load_sweep: Sequence[float] = SERVING_LOAD_SWEEP,
    seed: int = 7,
) -> Dict:
    """Simulated serving latency vs offered load per ``max_wait_ms``.

    A deterministic discrete-event simulation of the serving layer
    (``src/repro/serve/``): Poisson arrivals (seeded, precomputed once,
    shared by every cell so the cells differ only in policy and load)
    stream single queries into the *real*
    :class:`~repro.serve.policy.AdmissionPolicy` /
    :class:`~repro.serve.batcher.BatchFormer`, batches dispatch exactly
    when the live server would dispatch them (at ``max_batch``, at the
    oldest query's ``max_wait_ms`` deadline, or when the engine frees up
    with a due batch waiting), and each dispatched composition is priced
    by actually running it through **one reused**
    :class:`SIMDXEngine.run_batch` - the serving contract - with results
    cached per composition. Latency is admission to batch completion in
    simulated time.

    The sweep shows the admission policy's trade: a small ``max_wait_ms``
    keeps p50 low when the system is under-loaded but forfeits batch fill
    (each dispatch amortizes fewer lanes), while a large one buys fill -
    and therefore survivable p99 - at saturation. The over-loaded column
    also exercises shedding: arrivals that find ``max_queue`` live
    queries are dropped and counted, not queued.
    """
    from repro.serve.batcher import BatchFormer, PendingQuery
    from repro.serve.policy import AdmissionPolicy, ServerOverloaded

    abbrev = dataset if dataset is not None else ctx.datasets[0]
    graph = ctx.graph(abbrev)
    pool = default_sources(graph, min(source_pool, graph.num_vertices))

    engine = SIMDXEngine(graph, device=GPUDevice(ctx.device_spec))
    service_cache: Dict[Tuple[int, ...], float] = {}

    def service_us(sources: Tuple[int, ...]) -> float:
        if sources not in service_cache:
            batch = engine.run_batch(
                make_algorithm(algorithm_name, graph, source=sources[0]),
                list(sources),
            )
            if batch.failed:
                raise RuntimeError(
                    f"serving simulation batch failed: {batch.failure_reason}"
                )
            service_cache[sources] = float(batch.elapsed_us)
        return service_cache[sources]

    single_us = service_us((pool[0],))
    base_qps = 1e6 / single_us
    # One arrival pattern for every cell: exponential(1) gaps, scaled by
    # the offered rate per cell. Seeded - repro-lint forbids unseeded RNG.
    gaps = np.random.default_rng(seed).exponential(1.0, size=num_queries)

    rows: List[Dict] = []
    for wait_ms in wait_sweep_ms:
        for load in load_sweep:
            policy = AdmissionPolicy(
                max_batch=max_batch, max_wait_ms=wait_ms, max_queue=max_queue
            )
            former = BatchFormer(policy)
            offered_qps = base_qps * load
            arrivals = np.cumsum(gaps) / offered_qps  # seconds
            pending_at: List[float] = []  # admission times, FIFO
            next_arrival = 0
            engine_free = 0.0
            shed = 0
            latencies: List[float] = []
            fills: List[float] = []
            batches = 0
            while next_arrival < num_queries or pending_at:
                if not pending_at:
                    at = float(arrivals[next_arrival])
                    query = PendingQuery(
                        algorithm=algorithm_name,
                        source=pool[next_arrival % len(pool)],
                        enqueued_at=at,
                    )
                    former.add(query)
                    pending_at.append(at)
                    next_arrival += 1
                    continue
                # When would the live server dispatch the current queue?
                # At the instant it filled to max_batch, at the oldest
                # query's deadline, or when the engine frees up -
                # whichever is latest-but-due.
                if len(pending_at) >= policy.max_batch:
                    due_at = pending_at[policy.max_batch - 1]
                else:
                    due_at = former.next_deadline()
                dispatch_at = max(due_at, engine_free)
                if (
                    next_arrival < num_queries
                    and arrivals[next_arrival] <= dispatch_at
                ):
                    # An arrival lands before the dispatch: admit (or
                    # shed) it first - it may fill the batch earlier.
                    at = float(arrivals[next_arrival])
                    query = PendingQuery(
                        algorithm=algorithm_name,
                        source=pool[next_arrival % len(pool)],
                        enqueued_at=at,
                    )
                    try:
                        former.add(query)
                        pending_at.append(at)
                    except ServerOverloaded:
                        shed += 1
                    next_arrival += 1
                    continue
                batch = former.next_batch(dispatch_at)
                if batch is None:
                    # Float rounding: the deadline (oldest + max_wait_s)
                    # can land an ulp before should_dispatch's re-derived
                    # `now - enqueued_at >= max_wait_s`. A picosecond
                    # nudge is far below every reported statistic.
                    dispatch_at += 1e-12
                    batch = former.next_batch(dispatch_at)
                assert batch is not None  # due_at guarantees dispatchability
                del pending_at[: len(batch)]
                composition = tuple(q.source for q in batch)
                done_at = dispatch_at + service_us(composition) / 1e6
                engine_free = done_at
                batches += 1
                fills.append(len(batch) / policy.max_batch)
                latencies.extend(done_at - q.enqueued_at for q in batch)
            lat_ms = 1e3 * np.asarray(latencies)
            rows.append(
                {
                    "max_wait_ms": wait_ms,
                    "load_multiplier": load,
                    "offered_qps": offered_qps,
                    "served": len(latencies),
                    "shed": shed,
                    "batches": batches,
                    "p50_ms": float(np.percentile(lat_ms, 50)),
                    "p99_ms": float(np.percentile(lat_ms, 99)),
                    "mean_fill": float(np.mean(fills)) if fills else 0.0,
                }
            )
    return {
        "rows": rows,
        "dataset": abbrev,
        "algorithm": algorithm_name,
        "num_queries": num_queries,
        "source_pool": len(pool),
        "max_batch": max_batch,
        "max_queue": max_queue,
        "base_qps": base_qps,
        "single_query_ms": single_us / 1000.0,
        "distinct_compositions": len(service_cache),
    }


# ----------------------------------------------------------------------
# Kernel-backend wall-clock comparison (BENCH_0009.json, docs/kernels.md)
# ----------------------------------------------------------------------
def kernel_backend_wallclock(bench_path: Optional[str] = "BENCH_0009.json") -> Dict:
    """The wall-clock backend comparison rendered as EXPERIMENTS.md §8.

    Wall-clock seconds are host-dependent, so regenerating EXPERIMENTS.md
    must not re-measure them (the document is diffed against the committed
    baseline). When ``bench_path`` exists this loads the committed
    BENCH_*.json record - the same file the CI ``bench-regression`` job
    gates on; only when it is absent does it fall back to measuring via
    :func:`repro.bench.harness.run_wallclock_benchmark`.
    """
    import json
    import os

    from repro.bench.harness import run_wallclock_benchmark

    if bench_path is not None and os.path.exists(bench_path):
        with open(bench_path, "r", encoding="utf-8") as handle:
            return {"record": json.load(handle), "source": bench_path}
    return {"record": run_wallclock_benchmark(), "source": "measured"}


# ----------------------------------------------------------------------
# Dynamic updates and cross-query reuse (beyond the paper)
# ----------------------------------------------------------------------
def dynamic_updates(
    ctx: BenchmarkContext,
    *,
    algorithm_name: str = "bfs",
    dataset: Optional[str] = None,
    update_rates: Sequence[int] = (4, 16, 64),
    rounds: int = 4,
    zipf_exponents: Sequence[float] = (0.0, 0.8, 1.6),
    queries_per_round: int = 12,
    update_rounds: int = 3,
    source_pool: int = 16,
    seed: int = 11,
) -> Dict:
    """Update-rate × query-rate sweep over the dynamic-graph subsystem.

    Two sub-experiments against the same base graph (docs/dynamic.md,
    docs/caching.md):

    * **Repair speedup.** For each update-batch size, seeded random
      insert+delete batches are applied and the previous fixed point is
      repaired incrementally (``IncrementalRecompute``) as well as re-run
      from scratch on the new snapshot; both are bit-identical by
      contract (asserted here), and the simulated-time ratio shows how
      repair cost scales with the touched frontier rather than the graph.
    * **Cache hit-rate vs source skew.** A query stream whose sources are
      drawn from a Zipf distribution over the top-degree source pool runs
      through :class:`~repro.cache.reuse.CachedQueryEngine`, interleaved
      with update batches; the hit/repair/miss split shows how reuse pays
      off as the workload skews toward repeated sources.

    Everything is seeded; the returned rows are deterministic for a fixed
    configuration and rendered as EXPERIMENTS.md §10.
    """
    from repro.cache import CachedQueryEngine
    from repro.dyn import DynamicGraph, EdgeUpdateBatch, IncrementalRecompute

    abbrev = dataset if dataset is not None else ctx.datasets[0]
    graph = ctx.graph(abbrev)
    pool = default_sources(graph, min(source_pool, graph.num_vertices))
    source = pool[0]

    def random_batch(dyn: DynamicGraph, rng, size: int) -> EdgeUpdateBatch:
        n = dyn.num_vertices
        ins = rng.integers(0, n, size=(size, 2))
        ins = ins[ins[:, 0] != ins[:, 1]]
        weights = rng.uniform(0.5, 3.0, size=len(ins))
        edges = dyn.snapshot().to_edge_array()
        picks = rng.choice(
            len(edges), size=min(size, len(edges)), replace=False
        )
        return EdgeUpdateBatch.of(
            inserts=ins, insert_weights=weights, deletes=edges[picks]
        )

    repair_rows: List[Dict] = []
    for batch_size in update_rates:
        rng = np.random.default_rng(seed * 31 + batch_size)
        dyn = DynamicGraph(graph)
        recompute = IncrementalRecompute()
        warm = (
            SIMDXEngine(dyn.snapshot())
            .run(make_algorithm(algorithm_name, graph, source=source))
            .values
        )
        repair_us: List[float] = []
        scratch_us: List[float] = []
        resets: List[int] = []
        seeds: List[int] = []
        for _ in range(rounds):
            receipt = dyn.apply(random_batch(dyn, rng, batch_size))
            repaired = recompute.run(
                receipt,
                make_algorithm(algorithm_name, graph, source=source),
                warm,
            )
            scratch = SIMDXEngine(receipt.new_graph).run(
                make_algorithm(algorithm_name, graph, source=source)
            )
            if repaired.failed or scratch.failed:
                raise RuntimeError("dynamic-updates benchmark run failed")
            if not np.array_equal(repaired.values, scratch.values):
                raise RuntimeError(
                    "incremental repair diverged from scratch - the "
                    "exactness contract is broken"
                )
            repair_us.append(float(repaired.elapsed_us))
            scratch_us.append(float(scratch.elapsed_us))
            resets.append(
                int(repaired.extra[extra_keys.DYN_REPAIR_RESET_VERTICES])
            )
            seeds.append(
                int(repaired.extra[extra_keys.DYN_REPAIR_SEED_VERTICES])
            )
            warm = repaired.values
        mean_repair = sum(repair_us) / len(repair_us)
        mean_scratch = sum(scratch_us) / len(scratch_us)
        repair_rows.append(
            {
                "updates_per_batch": batch_size,
                "rounds": rounds,
                "mean_repair_us": mean_repair,
                "mean_scratch_us": mean_scratch,
                "speedup": (
                    mean_scratch / mean_repair if mean_repair > 0 else None
                ),
                "mean_reset_vertices": sum(resets) / len(resets),
                "mean_seed_vertices": sum(seeds) / len(seeds),
                "values_identical": True,
            }
        )

    cache_rows: List[Dict] = []
    for exponent in zipf_exponents:
        rng = np.random.default_rng(seed * 97 + int(exponent * 10))
        ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
        probs = ranks ** -exponent
        probs /= probs.sum()
        qe = CachedQueryEngine(graph)
        for _ in range(update_rounds):
            for _ in range(queries_per_round):
                picked = int(rng.choice(len(pool), p=probs))
                qe.query(algorithm_name, pool[picked])
            update = random_batch(qe.dyn, rng, 4)
            qe.update(
                inserts=update.inserts,
                insert_weights=update.insert_weights,
                deletes=update.deletes,
                refresh_landmarks=True,
            )
        stats = qe.stats
        queries = update_rounds * queries_per_round
        hits = int(stats["hits"])
        repairs = int(stats["stale_hits"])
        cache_rows.append(
            {
                "zipf_exponent": exponent,
                "queries": queries,
                "updates": update_rounds,
                "hits": hits,
                "repairs": repairs,
                "misses": int(stats["misses"]),
                "hit_rate": hits / queries,
                "reuse_rate": (hits + repairs) / queries,
                "landmarks_refreshed": int(stats["landmarks_refreshed"]),
            }
        )

    return {
        "dataset": abbrev,
        "algorithm": algorithm_name,
        "source_pool": len(pool),
        "queries_per_round": queries_per_round,
        "update_rounds": update_rounds,
        "repair_rows": repair_rows,
        "cache_rows": cache_rows,
    }


def generate_experiments_md(
    path: str = "EXPERIMENTS.md",
    *,
    scale: float = 0.5,
    datasets: Sequence[str] = ("LJ", "TW", "ER", "RC"),
) -> str:
    """Run the baseline experiments and write EXPERIMENTS.md.

    The default configuration keeps the run small (two skewed + two
    high-diameter graphs at half scale) so regeneration stays cheap; the
    committed file is the baseline future PRs diff against.
    """
    from repro.bench.reporting import render_experiments_md

    ctx = BenchmarkContext(scale=scale, datasets=tuple(datasets))
    timings = phase_timings(ctx)
    refinement = gather_refinement(ctx)
    batching = batching_throughput(ctx)
    split = split_benefit(ctx)
    shard = shard_scaling(ctx)
    kernel = kernel_backend_wallclock()
    serving = serving_latency(ctx)
    dynamic = dynamic_updates(ctx)
    text = render_experiments_md(
        timings, refinement, batching=batching, split=split, shard=shard,
        kernel=kernel, serving=serving, dynamic=dynamic,
        scale=scale, datasets=datasets,
    )
    with open(path, "w") as handle:
        handle.write(text)
    return text


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    import sys

    target = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    generate_experiments_md(target)
    print(f"wrote {target}")
