"""Render experiment results as text tables shaped like the paper's.

The functions here take the dictionaries produced by
:mod:`repro.bench.experiments` and return printable strings; the pytest
benchmark files and ``examples/reproduce_paper.py`` use them so that running
a bench shows the same rows/series the paper reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def _fmt(value, width: int = 9, decimals: int = 2) -> str:
    if value is None:
        return " " * (width - 1) + "-"
    if isinstance(value, float):
        return f"{value:>{width}.{decimals}f}"
    return f"{value:>{width}}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence], *, title: str = "") -> str:
    """Simple fixed-width table renderer."""
    rows = [list(r) for r in rows]
    widths = [len(str(h)) for h in headers]
    formatted_rows = []
    for row in rows:
        formatted = [
            f"{cell:.3f}" if isinstance(cell, float) else ("-" if cell is None else str(cell))
            for cell in row
        ]
        formatted_rows.append(formatted)
        widths = [max(w, len(c)) for w, c in zip(widths, formatted)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for formatted in formatted_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(formatted, widths)))
    return "\n".join(lines)


def render_figure5(result: Dict) -> str:
    rows = [
        (r["graph"], r["operation"], round(r["acc_ms"], 3), round(r["atomic_ms"], 3),
         round(r["speedup"], 3))
        for r in result["rows"]
    ]
    avg = result["average_speedup"]
    footer = (
        f"\nAverage speedup -- vote: {avg.get('vote', float('nan')):.3f}x, "
        f"aggregation: {avg.get('aggregation', float('nan')):.3f}x "
        "(paper: ~1.12x / ~1.09x)"
    )
    return render_table(
        ["graph", "operation", "ACC ms", "atomic ms", "speedup"],
        rows,
        title="Figure 5: ACC combine vs atomic updates",
    ) + footer


def render_figure8(result: Dict) -> str:
    rows = [
        (r["algorithm"], r["graph"], r["iterations"],
         len(r["ballot_iterations"]), r["pattern"])
        for r in result["rows"]
    ]
    return render_table(
        ["algorithm", "graph", "iterations", "ballot iters", "pattern"],
        rows,
        title="Figure 8: ballot-filter activation patterns",
    )


def render_figure9(result_a: Dict, result_b: Dict) -> str:
    rows_a = [
        (r["threshold"], round(r["relative_performance"], 3)) for r in result_a["rows"]
    ]
    part_a = render_table(
        ["overflow threshold", "relative performance"],
        rows_a,
        title="Figure 9(a): JIT performance vs online-filter overflow threshold",
    ) + f"\nBest threshold: {result_a['best_threshold']} (paper selects 64)"
    rows_b = [
        (r["graph"], round(r["overhead_percent"], 3)) for r in result_b["rows"]
    ]
    part_b = render_table(
        ["graph", "shadow-online overhead %"],
        rows_b,
        title="Figure 9(b): overhead of the always-on online filter (SSSP)",
    ) + (
        f"\nAverage overhead: {result_b['average_overhead_percent']:.3f}% "
        "(paper: ~0.02%, max 2.1%)"
    )
    return part_a + "\n\n" + part_b


def render_table2(result: Dict) -> str:
    lines = ["Table 2: register consumption and kernel launches"]
    regs = result["registers"]
    for group in ("push_no_fusion", "pull_no_fusion"):
        entries = ", ".join(f"{k}={v}" for k, v in regs[group].items())
        lines.append(f"  {group}: {entries}")
    sel = regs["selective_fusion"]
    lines.append(f"  selective_fusion: push={sel['push']}, pull={sel['pull']}")
    lines.append(f"  all_fusion: {regs['all_fusion']}")
    if result["launches"]:
        lines.append("  kernel launches (measured):")
        for strategy, info in result["launches"].items():
            lines.append(
                f"    {strategy:>10}: {info['kernel_launches']} launches over "
                f"{info['iterations']} iterations "
                f"({info['direction_switches']} direction switches)"
            )
    return "\n".join(lines)


def render_table3(result: Dict) -> str:
    rows = [
        (r["abbrev"], r["paper_name"], r["category"], r["paper_vertices"],
         r["paper_edges"], r["analogue_vertices"], r["analogue_edges"],
         r["diameter_class"], r["analogue_diameter_lb"])
        for r in result["rows"]
    ]
    return render_table(
        ["abbrev", "paper graph", "class", "paper |V|", "paper |E|",
         "analogue |V|", "analogue |E|", "diam class", "analogue diam>="],
        rows,
        title="Table 3: graph datasets (paper originals vs generated analogues)",
    )


def render_table4(result: Dict) -> str:
    cells = result["cells"]
    algorithms = sorted({c["algorithm"] for c in cells})
    graphs: List[str] = []
    for c in cells:
        if c["graph"] not in graphs:
            graphs.append(c["graph"])
    blocks = []
    for algorithm in algorithms:
        systems: List[str] = []
        for c in cells:
            if c["algorithm"] == algorithm and c["system"] not in systems:
                systems.append(c["system"])
        rows = []
        for system in systems:
            row = [system]
            for graph in graphs:
                cell = next(
                    (c for c in cells
                     if c["algorithm"] == algorithm and c["system"] == system
                     and c["graph"] == graph),
                    None,
                )
                if cell is None or cell["ms"] is None:
                    row.append(None)
                else:
                    row.append(round(cell["ms"], 2))
            rows.append(row)
        blocks.append(
            render_table(
                ["system"] + graphs, rows,
                title=f"Table 4 [{algorithm}]: runtime (simulated ms; '-' = failed/OOM)",
            )
        )
    speedups = result["simdx_speedup_over"]
    lines = ["", "SIMD-X geometric-mean speedup over each system:"]
    for algorithm, per_system in speedups.items():
        entries = ", ".join(f"{s}: {v:.2f}x" for s, v in per_system.items())
        lines.append(f"  {algorithm}: {entries}")
    return "\n\n".join(blocks) + "\n" + "\n".join(lines)


def render_figure12(result: Dict) -> str:
    rows = [
        (r["algorithm"], r["graph"],
         round(r["ballot_ms"], 3) if r["ballot_ms"] is not None else None,
         "FAIL" if r["online_failed"] else (
             round(r["online_ms"], 3) if r["online_ms"] is not None else None),
         round(r["jit_ms"], 3) if r["jit_ms"] is not None else None,
         round(r["jit_speedup_vs_ballot"], 2)
         if r["jit_speedup_vs_ballot"] is not None else None)
        for r in result["rows"]
    ]
    footer_parts = [
        f"{alg}: {v:.1f}x" for alg, v in result["jit_speedup_over_ballot"].items()
    ]
    return render_table(
        ["algorithm", "graph", "ballot ms", "online ms", "JIT ms", "JIT/ballot"],
        rows,
        title="Figure 12: benefit of JIT task management (normalized to ballot)",
    ) + "\nAverage JIT speedup over ballot -- " + ", ".join(footer_parts)


def render_figure13(result: Dict) -> str:
    rows = [
        (r["algorithm"], r["graph"], round(r["non_fusion_ms"], 3),
         round(r["all_fusion_ms"], 3), round(r["push_pull_ms"], 3),
         round(r["push_pull_speedup"], 2) if r["push_pull_speedup"] else None)
        for r in result["rows"]
    ]
    lines = []
    for alg, avg in result["average_speedups"].items():
        lines.append(
            f"  {alg}: push-pull {avg['push_pull_vs_none']:.2f}x, "
            f"all-fusion {avg['all_vs_none']:.2f}x (vs no fusion)"
        )
    return render_table(
        ["algorithm", "graph", "no fusion ms", "all fusion ms", "push-pull ms",
         "push-pull speedup"],
        rows,
        title="Figure 13: benefit of push-pull based kernel fusion",
    ) + "\nAverage speedups:\n" + "\n".join(lines)


def render_section7_3(result: Dict) -> str:
    rows = []
    for r in result["rows"]:
        devices = list(r["mean_ms"].keys())
        rows.append(
            [r["system"]]
            + [round(r["mean_ms"][d], 3) for d in devices]
            + [round(r["speedup_vs_first"][d], 2) for d in devices]
        )
    devices = list(result["rows"][0]["mean_ms"].keys()) if result["rows"] else []
    headers = (
        ["system"] + [f"{d} ms" for d in devices] + [f"{d} speedup" for d in devices]
    )
    threads = ", ".join(
        f"{d}: {v}" for d, v in result["simdx_configurable_threads"].items()
    )
    return render_table(
        headers, rows, title="Section 7.3: scaling across GPU generations (BFS mean)"
    ) + f"\nSIMD-X fused-kernel configurable threads -- {threads}"


def _md_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        cells = [
            f"{c:g}" if isinstance(c, float) else ("-" if c is None else str(c))
            for c in row
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_experiments_md(
    timings: Dict,
    refinement: Dict,
    *,
    batching: Optional[Dict] = None,
    split: Optional[Dict] = None,
    shard: Optional[Dict] = None,
    kernel: Optional[Dict] = None,
    serving: Optional[Dict] = None,
    dynamic: Optional[Dict] = None,
    scale: float,
    datasets: Sequence[str],
) -> str:
    """Render the EXPERIMENTS.md baseline document.

    ``timings`` is :func:`repro.bench.experiments.phase_timings` output,
    ``refinement`` is :func:`repro.bench.experiments.gather_refinement`
    output, ``batching`` (optional) is
    :func:`repro.bench.experiments.batching_throughput` output,
    ``split`` (optional) is :func:`repro.bench.experiments.split_benefit`
    output, ``shard`` (optional) is
    :func:`repro.bench.experiments.shard_scaling` output and ``kernel``
    (optional) is :func:`repro.bench.experiments.kernel_backend_wallclock`
    output (the committed BENCH_*.json record) and ``serving``
    (optional) is :func:`repro.bench.experiments.serving_latency` output
    (the discrete-event serving sweep) and ``dynamic`` (optional) is
    :func:`repro.bench.experiments.dynamic_updates` output (the dynamic
    update-rate × query-rate sweep). The document is
    deterministic for a fixed (scale, datasets)
    configuration - §8's wall-clock columns come from the committed
    benchmark record, not a fresh measurement, and §9's arrivals are
    seeded - so future PRs can diff their regenerated copy against the
    committed baseline.
    """
    parts: List[str] = []
    parts.append("# EXPERIMENTS — measured baselines")
    parts.append(
        "\nGenerated by `PYTHONPATH=src python -m repro.bench.experiments` "
        f"with `scale={scale}`, `datasets={','.join(datasets)}` on the "
        "simulated K40. All times are simulated microseconds/milliseconds "
        "from the device cost model; the document is deterministic for a "
        "fixed configuration, so regenerate and diff it when touching the "
        "engine's cost accounting, the direction machinery, the JIT "
        "controller or the batched multi-source path.\n"
    )

    parts.append("## 1. Per-algorithm, per-phase timing baseline\n")
    parts.append(
        "Auto-direction runs folded into consecutive same-direction phases "
        "(Section 5 clustering). `edges` counts the walked worklist edges "
        "(out-edges in push, scanned in-edges in pull); `active` is the "
        "frontier-sourced share that pays full per-edge work in pull mode.\n"
    )
    parts.append(
        _md_table(
            ["algorithm", "graph", "phase", "dir", "iters", "edges",
             "active", "compute µs", "filter µs", "total µs"],
            [
                (r["algorithm"], r["graph"], r["phase"], r["direction"],
                 r["iterations"], r["edges"], r["active_edges"],
                 round(r["compute_us"], 1), round(r["filter_us"], 1),
                 round(r["total_us"], 1))
                for r in timings["phase_rows"]
            ],
        )
    )

    parts.append("\n## 2. Direction-aware JIT filter traces\n")
    parts.append(
        "Per run: executed filter pattern, pull iterations (all must be "
        "online — a gather worker records at most one destination, so its "
        "bin cannot overflow), and pre-armed ballots (ballot fired on the "
        "first push iteration after a pull phase because the handed-over "
        "frontier's max out-degree, scaled by the expected offer success "
        "rate, exceeded the overflow threshold).\n"
    )
    parts.append(
        _md_table(
            ["algorithm", "graph", "iters", "pull iters",
             "pull ballots", "pre-armed", "filter pattern"],
            [
                (r["algorithm"], r["graph"], r["iterations"],
                 r["pull_iterations"], r["pull_ballot_iterations"],
                 r["pre_armed_ballots"], f"`{r['pattern']}`" if r["pattern"] else "-")
                for r in timings["trace_rows"]
            ],
        )
    )

    calibration = timings["calibration"]
    shipped = calibration["shipped"]
    parts.append("\n## 3. Calibrated traffic-model constants\n")
    parts.append(
        "The engine charges push compute at `push_edge_ops` per expanded "
        "edge and pull compute at `pull_scan_ops` per scanned in-edge plus "
        "`pull_active_edge_ops` per frontier-sourced in-edge "
        "(`repro.core.direction.TrafficModel`). The fit below recovers both "
        "constants by least squares over the measured forced-pull "
        "iterations (`compute_us ~ c_scan * scanned + c_active * active`), "
        "with the forced-push runs pinning the reference per-edge cost. The "
        "ratios compare against the shipped "
        f"`pull_scan_ops / push_edge_ops = "
        f"{shipped['pull_scan_over_push_edge']:.2f}` and "
        "`pull_active_edge_ops / push_edge_ops = 1` - up to the "
        "memory-traffic share of iteration time the ops constants do not "
        "cover. `fit rank` 1 flags (near-)collinear regressors - every "
        "pull iteration gathered (almost) all in-edges, e.g. SpMV/BP "
        "exactly and WCC-style runs within the condition-number bound "
        "(`fit cond`, capped at "
        "`repro.core.metrics.COLLINEARITY_LIMIT`): there the scan column "
        "holds the combined per-scanned-edge cost. Voting combines "
        "terminate gathers early, so their measured scan cost also folds in "
        f"`voting_pull_scan_fraction = {shipped['voting_pull_scan_fraction']}`.\n"
    )
    parts.append(
        _md_table(
            ["algorithm", "push µs/edge", "pull µs/scanned edge",
             "active fraction", "fitted scan µs", "fitted active µs",
             "scan/push", "active/push", "fit rank", "fit cond"],
            [
                (name,
                 round(fit["push_us_per_edge"], 6),
                 round(fit["pull_us_per_scanned_edge"], 6),
                 round(fit["pull_active_edge_fraction"], 3),
                 round(fit["fitted_scan_us_per_edge"], 6),
                 round(fit["fitted_active_us_per_edge"], 6),
                 round(fit["pull_scan_over_push_edge"], 3),
                 round(fit["pull_active_over_push_edge"], 3),
                 int(fit["fit_rank"]),
                 round(fit["fit_condition"], 1))
                for name, fit in calibration["per_algorithm"].items()
            ],
        )
    )
    parts.append("\nPooled by combine kind:\n")
    parts.append(
        _md_table(
            ["combine kind", "push µs/edge", "fitted scan µs",
             "fitted active µs", "scan/push", "active/push"],
            [
                (kind,
                 round(fit["push_us_per_edge"], 6),
                 round(fit["fitted_scan_us_per_edge"], 6),
                 round(fit["fitted_active_us_per_edge"], 6),
                 round(fit["pull_scan_over_push_edge"], 3),
                 round(fit["pull_active_over_push_edge"], 3))
                for kind, fit in calibration["pooled"].items()
            ],
        )
    )
    parts.append("\nShipped constants (`DEFAULT_TRAFFIC_MODEL`):\n")
    parts.append(
        _md_table(
            ["constant", "value"],
            [(k, v) for k, v in shipped.items()],
        )
    )

    parts.append("\n## 4. Gather-candidate refinement (SSSP / WCC)\n")
    parts.append(
        "Forced-pull runs with and without the frontier-dependent "
        "settled-vertex bound in `gather_mask`. Values are bit-identical by "
        "construction; the scanned-edge shrink is the worklist reduction "
        "from pruning settled vertices. Simulated time does not always "
        "follow the shrink: on uniform-degree road graphs the pruned "
        "worklist is less degree-homogeneous, so the thread-kernel "
        "divergence penalty can outweigh the saved traffic — the paper's "
        "motivation for pruning is the skewed graphs, where both move "
        "together.\n"
    )
    parts.append(
        _md_table(
            ["algorithm", "graph", "scanned edges (pruned)",
             "scanned edges (unpruned)", "shrink %", "pruned ms",
             "unpruned ms", "values identical"],
            [
                (r["algorithm"], r["graph"], r["scanned_edges_pruned"],
                 r["scanned_edges_unpruned"], round(r["shrink_percent"], 1),
                 round(r["elapsed_ms_pruned"], 3),
                 round(r["elapsed_ms_unpruned"], 3),
                 "yes" if r["values_identical"] else "NO")
                for r in refinement["rows"]
            ],
        )
    )

    if batching is not None and batching["rows"]:
        parts.append("\n## 5. Batched multi-source throughput\n")
        parts.append(
            "`SIMDXEngine.run_batch` answers K queries (the K highest-"
            "degree sources) in one execution: every iteration walks the "
            "CSR once over the union of the K lane frontiers and expands "
            "each union edge only into the lanes whose frontier contains "
            "its source, against a serial baseline that loops `run` over "
            "the same sources. Per-lane results are verified bit-identical "
            "to the independent runs in every cell. `union edges` vs "
            "`lane pairs` is the amortization: the serial loop walks every "
            "pair as a full edge, the batch pays the CSR walk once per "
            "union edge. On high-diameter graphs the union frontier can "
            "cross the pull threshold earlier than any single lane would, "
            "so the batch may scan more in-edges than it answers pairs - "
            "the speedup there comes from amortizing the per-iteration "
            "fixed costs (launches, barriers, task management) instead. "
            "`OOM` cells are Table-4-style memory failures: batching keeps "
            "K metadata arrays resident, so a paper-scale graph whose "
            "single query fits the modeled device can stop fitting at "
            "higher lane counts. See docs/batching.md for the lane model "
            "and when batching wins.\n"
        )
        parts.append(
            _md_table(
                ["algorithm", "graph", "K", "batch ms", "serial ms",
                 "batch q/s", "serial q/s", "speedup", "union edges",
                 "lane pairs", "identical"],
                [
                    (
                        (r["algorithm"], r["graph"], r["lanes"], "OOM",
                         None, None, None, None, None, None, None)
                        if r["failed"] else
                        (r["algorithm"], r["graph"], r["lanes"],
                         round(r["batch_ms"], 3), round(r["serial_ms"], 3),
                         round(r["batch_qps"], 0), round(r["serial_qps"], 0),
                         round(r["speedup"], 2), r["union_edges"],
                         r["lane_edge_pairs"],
                         "yes" if r["values_identical"] else "NO")
                    )
                    for r in batching["rows"]
                ],
            )
        )

    if split is not None and split["rows"]:
        parts.append("\n## 6. Lane-aware direction selection: split benefit\n")
        parts.append(
            "The same K queries answered with lane-aware direction "
            "selection (`EngineConfig.lane_aware_split`, the default - "
            "every lane's own frontier is scored with the traffic model "
            "and the batch splits into push-leaning and pull-leaning "
            "sub-batches when lane interests diverge past `split_margin`) "
            "versus the decide-once union approximation of PR 3. Values "
            "are bit-identical in every cell. `scanned` counts gather "
            "(in-CSR) edges - the quantity the union approximation "
            "over-pays when it crosses the pull threshold before any "
            "single lane would. The `ms` columns show the other side of "
            "the trade: per-sub-batch fixed costs, and the cheap shared "
            "scan of voting gathers, can make the decide-once batch "
            "faster in simulated time even while it scans more - "
            "`split_margin` is the knob that arbitrates (see "
            "docs/batching.md, \"When splitting wins\").\n"
        )
        parts.append(
            _md_table(
                ["algorithm", "graph", "K", "scanned (lane-aware)",
                 "scanned (decide-once)", "walked (lane-aware)",
                 "walked (decide-once)", "lane-aware ms", "decide-once ms",
                 "splits", "identical"],
                [
                    (
                        (r["algorithm"], r["graph"], r["lanes"], "OOM",
                         None, None, None, None, None, None, None)
                        if r["failed"] else
                        (r["algorithm"], r["graph"], r["lanes"],
                         r["scanned_lane_aware"], r["scanned_decide_once"],
                         r["walked_lane_aware"], r["walked_decide_once"],
                         round(r["ms_lane_aware"], 3),
                         round(r["ms_decide_once"], 3),
                         r["split_iterations"],
                         "yes" if r["values_identical"] else "NO")
                    )
                    for r in split["rows"]
                ],
            )
        )

    if shard is not None and shard["rows"]:
        parts.append("\n## 7. Sharded multi-device scaling\n")
        parts.append(
            "The same K queries answered at `EngineConfig(num_shards=N)` "
            "for N in {1, 2, 4}: the graph is partitioned into contiguous "
            "vertex ranges balanced by out-edges, each range owning its "
            "metadata (and lane-metadata) slice on its own simulated "
            "device (see docs/sharding.md). `OOM` rows at N=1 are the §5 "
            "blank cells - the K lane-metadata arrays exceed one K40 - "
            "and the same batch completing at N=2/4 with `peak` (the "
            "largest per-shard simulated high-water mark) under the "
            "12 GiB single-device budget is the capacity claim. "
            "`boundary` counts valid updates that crossed a shard "
            "boundary - the exchange traffic the partition pays. Every "
            "completed cell is verified bit-identical per lane against "
            "K independent single-source runs.\n"
        )
        parts.append(
            _md_table(
                ["algorithm", "graph", "K", "shards", "device", "batch ms",
                 "boundary", "peak GB", "identical"],
                [
                    (
                        (r["algorithm"], r["graph"], r["lanes"],
                         r["shards"], r["device"], "OOM", None, None, None)
                        if r["failed"] else
                        (r["algorithm"], r["graph"], r["lanes"],
                         r["shards"], r["device"],
                         round(r["batch_ms"], 3), r["boundary_updates"],
                         round(r["max_peak_bytes"] / 1024 ** 3, 2),
                         "yes" if r["values_identical"] else "NO")
                    )
                    for r in shard["rows"]
                ],
            )
        )
    if kernel is not None and kernel["record"]["benchmarks"]:
        record = kernel["record"]
        host = record.get("host", {})
        config = record.get("config", {})
        parts.append("\n## 8. Kernel-backend wall-clock comparison\n")
        parts.append(
            "The engine's CSR-walk primitives run on a selectable backend "
            "(`EngineConfig.kernel_backend`): `numpy`, the vectorized "
            "default, and `python`, a pure-loop reference. The two are "
            "bit-identical on values, simulated time and every accounting "
            "counter (the fuzz matrix and `tests/test_kernel_backend.py` "
            "enforce it); what differs is real wall-clock, measured here. "
            f"Numbers are from the committed `{kernel['source']}` "
            f"(scale={config.get('scale')}, min of "
            f"{config.get('repeats')} interleaved timeit-style samples, "
            f"measured on {host.get('platform', 'unknown')} / "
            f"python {host.get('python', '?')} / "
            f"numpy {host.get('numpy', '?')}). Raw seconds are "
            "host-specific; the CI `bench-regression` job gates only on "
            "the numpy-over-python speedup ratio (15% tolerance) and on "
            "the deterministic columns, which must match exactly. See "
            "docs/kernels.md.\n"
        )
        parts.append(
            _md_table(
                ["dataset", "algorithm", "iters", "simulated ms",
                 "kernel edges walked", "python s", "numpy s", "speedup"],
                [
                    (b["dataset"], b["algorithm"], b["iterations"],
                     round(b["simulated_us"] / 1000.0, 3),
                     b["kernel_edges_walked"],
                     round(b["backends"]["python"]["wall_clock_s"], 4),
                     round(b["backends"]["numpy"]["wall_clock_s"], 4),
                     f"{b['speedup_numpy_over_python']:.2f}x")
                    for b in record["benchmarks"]
                ],
            )
        )
    if serving is not None and serving["rows"]:
        parts.append("\n## 9. Serving latency under load\n")
        parts.append(
            "A deterministic discrete-event simulation of the serving "
            "layer (`src/repro/serve/`, docs/serving.md): seeded Poisson "
            f"arrivals ({serving['num_queries']} single "
            f"`{serving['algorithm']}` queries over the "
            f"{serving['source_pool']} highest-degree sources of "
            f"{serving['dataset']}) stream into the real "
            "`AdmissionPolicy`/`BatchFormer` "
            f"(`max_batch={serving['max_batch']}`, "
            f"`max_queue={serving['max_queue']}`), and every dispatched "
            "composition is priced by running it through one reused "
            "`SIMDXEngine.run_batch` - the serving contract. Latency is "
            "admission to batch completion in simulated time; offered "
            "load is a multiple of the base single-query rate "
            f"({serving['base_qps']:.0f} q/s, one query = "
            f"{serving['single_query_ms']:.2f} simulated ms). The sweep "
            "shows the admission trade: small `max_wait_ms` minimizes "
            "p50 while under-loaded but dispatches under-full batches; "
            "large `max_wait_ms` buys fill - and survivable p99 at "
            "saturation - by taxing every lonely query. Over-loaded "
            "cells shed arrivals that find `max_queue` queries queued "
            "(`shed`), the serving layer's explicit backpressure.\n"
        )
        parts.append(
            _md_table(
                ["max_wait ms", "load ×base", "offered q/s", "served",
                 "shed", "batches", "mean fill", "p50 ms", "p99 ms"],
                [
                    (r["max_wait_ms"], r["load_multiplier"],
                     round(r["offered_qps"], 0), r["served"], r["shed"],
                     r["batches"], round(r["mean_fill"], 2),
                     round(r["p50_ms"], 2), round(r["p99_ms"], 2))
                    for r in serving["rows"]
                ],
            )
        )
    if dynamic is not None and dynamic["repair_rows"]:
        parts.append("\n## 10. Dynamic updates and cross-query reuse\n")
        parts.append(
            "The dynamic-graph subsystem (`src/repro/dyn/`, "
            "`src/repro/cache/`; docs/dynamic.md, docs/caching.md) under "
            "a seeded update-rate × query-rate sweep on "
            f"{dynamic['dataset']}. **Repair speedup:** each row applies "
            f"`{dynamic['repair_rows'][0]['rounds']}` random "
            "insert+delete batches of the given size and repairs the "
            f"previous `{dynamic['algorithm']}` fixed point "
            "incrementally (`IncrementalRecompute`) as well as re-running "
            "it from scratch on the new snapshot; the two are "
            "bit-identical by the exactness contract (`identical`, "
            "asserted at generation time), and the simulated-time ratio "
            "shows repair cost tracking the touched frontier (`seed` / "
            "`reset` vertices), not the graph size.\n"
        )
        parts.append(
            _md_table(
                ["updates/batch", "repair µs", "scratch µs", "speedup",
                 "reset", "seed", "identical"],
                [
                    (r["updates_per_batch"],
                     round(r["mean_repair_us"], 2),
                     round(r["mean_scratch_us"], 2),
                     f"{r['speedup']:.2f}x" if r["speedup"] else None,
                     round(r["mean_reset_vertices"], 1),
                     round(r["mean_seed_vertices"], 1),
                     "yes" if r["values_identical"] else "NO")
                    for r in dynamic["repair_rows"]
                ],
            )
        )
        parts.append(
            "\n**Cache hit-rate vs source skew:** a "
            f"`{dynamic['algorithm']}` query stream "
            f"({dynamic['update_rounds']} rounds × "
            f"{dynamic['queries_per_round']} queries, one 4-edge update "
            "batch between rounds) whose sources are Zipf-drawn from the "
            f"{dynamic['source_pool']} highest-degree vertices, served "
            "through `CachedQueryEngine`. `hits` are exact-version cache "
            "answers, `repairs` are stale entries repaired forward "
            "through the retained update receipts, `misses` fall back to "
            "a from-scratch run - every path returning identical bits. "
            "Skewed sources (larger Zipf exponent) turn reuse on.\n"
        )
        parts.append(
            _md_table(
                ["zipf s", "queries", "updates", "hits", "repairs",
                 "misses", "hit rate", "reuse rate", "landmarks"],
                [
                    (r["zipf_exponent"], r["queries"], r["updates"],
                     r["hits"], r["repairs"], r["misses"],
                     round(r["hit_rate"], 2), round(r["reuse_rate"], 2),
                     r["landmarks_refreshed"])
                    for r in dynamic["cache_rows"]
                ],
            )
        )
    parts.append("")
    return "\n".join(parts)


def render_worklist_separators(result: Dict) -> str:
    part_a = render_table(
        ["small/medium separator", "mean ms"],
        [(r["separator"], round(r["mean_ms"], 3)) for r in result["small_medium"]],
        title="Worklist separators: small/medium sweep",
    )
    part_b = render_table(
        ["medium/large separator", "mean ms"],
        [(r["separator"], round(r["mean_ms"], 3)) for r in result["medium_large"]],
        title="Worklist separators: medium/large sweep",
    )
    return part_a + "\n\n" + part_b
