"""Per-device profiling: launches, timing breakdowns, memory high-water mark.

The profiler is what the benchmark harness reads to produce the rows of
Table 2 (kernel launch counts) and the per-phase breakdowns quoted in the
text (e.g. "99.23% of time spent scanning metadata in the ballot filter on
ER"). It is intentionally append-only and cheap: recording a launch is a
couple of attribute updates plus a list append.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.kernel import KernelLaunch, LaunchResult


@dataclass
class LaunchRecord:
    """One recorded kernel phase."""

    kernel_name: str
    total_us: float
    launch_overhead_us: float
    memory_us: float
    compute_us: float
    atomic_us: float
    fused: bool


@dataclass
class DeviceProfiler:
    """Accumulates statistics for every launch on one simulated device."""

    device_name: str = ""
    records: List[LaunchRecord] = field(default_factory=list)
    peak_allocated_bytes: int = 0
    allocation_log: List[tuple] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_launch(self, launch: "KernelLaunch", result: "LaunchResult") -> None:
        self.records.append(
            LaunchRecord(
                kernel_name=result.kernel_name,
                total_us=result.total_us,
                launch_overhead_us=result.launch_overhead_us,
                memory_us=result.memory_us,
                compute_us=result.compute_us,
                atomic_us=result.atomic_us,
                fused=launch.fused_continuation,
            )
        )

    def record_allocation(self, label: str, nbytes: int, total_allocated: int) -> None:
        self.allocation_log.append((label, nbytes))
        if total_allocated > self.peak_allocated_bytes:
            self.peak_allocated_bytes = total_allocated

    def reset(self) -> None:
        self.records.clear()
        self.allocation_log.clear()
        self.peak_allocated_bytes = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_us(self) -> float:
        return sum(r.total_us for r in self.records)

    @property
    def total_launch_overhead_us(self) -> float:
        return sum(r.launch_overhead_us for r in self.records)

    def launch_count(self, *, include_fused: bool = False) -> int:
        """Number of real kernel launches (fused phases excluded by default)."""
        if include_fused:
            return len(self.records)
        return sum(1 for r in self.records if not r.fused)

    def phase_count(self) -> int:
        """Number of kernel phases executed, fused or not."""
        return len(self.records)

    def time_by_kernel(self) -> Dict[str, float]:
        out: Dict[str, float] = defaultdict(float)
        for r in self.records:
            out[r.kernel_name] += r.total_us
        return dict(out)

    def launches_by_kernel(self) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for r in self.records:
            if not r.fused:
                out[r.kernel_name] += 1
        return dict(out)

    def breakdown(self) -> Dict[str, float]:
        """Total time split by cost component."""
        return {
            "launch_overhead_us": sum(r.launch_overhead_us for r in self.records),
            "memory_us": sum(r.memory_us for r in self.records),
            "compute_us": sum(r.compute_us for r in self.records),
            "atomic_us": sum(r.atomic_us for r in self.records),
        }

    def fraction_in(self, kernel_name_prefix: str) -> float:
        """Fraction of total simulated time spent in matching kernels."""
        total = self.total_us
        if total == 0:
            return 0.0
        matched = sum(
            r.total_us for r in self.records if r.kernel_name.startswith(kernel_name_prefix)
        )
        return matched / total

    def summary(self) -> Dict[str, object]:
        return {
            "device": self.device_name,
            "total_us": round(self.total_us, 3),
            "launches": self.launch_count(),
            "phases": self.phase_count(),
            "launch_overhead_us": round(self.total_launch_overhead_us, 3),
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "time_by_kernel": {k: round(v, 3) for k, v in self.time_by_kernel().items()},
        }
