"""Register pressure, occupancy, and the deadlock-free CTA count (Eq. 1).

Section 5 of the paper derives the number of CTAs that can be *resident
simultaneously* on the device from the register budget:

    #CTA = floor(registersPerSMX / (registersPerThread * threadsPerCTA)) * #SMX

Launching exactly this many CTAs for a persistent (fused) kernel guarantees
every CTA - including the barrier's monitor CTA - owns hardware resources at
all times, which is the paper's deadlock-freedom argument. The same quantity
drives occupancy: a kernel that burns 110 registers per thread (all-fusion in
Table 2) can keep only about half the threads resident compared to one using
50 registers (push-pull fusion), and that occupancy loss is why aggressive
fusion loses on compute-heavy algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpu.device import GPUSpec


@dataclass(frozen=True)
class OccupancyInfo:
    """Occupancy achieved by a kernel configuration on one device."""

    ctas_per_smx: int
    resident_ctas: int
    resident_threads: int
    occupancy: float          # resident threads / max resident threads
    limited_by: str           # "registers", "threads", "cta_slots" or "launch"

    @property
    def resident_warps(self) -> int:
        return self.resident_threads // 32


def compute_cta_count(
    spec: "GPUSpec",
    *,
    registers_per_thread: int,
    threads_per_cta: int,
) -> int:
    """Deadlock-free CTA count for a persistent kernel (paper Eq. 1)."""
    if registers_per_thread <= 0 or threads_per_cta <= 0:
        raise ValueError("register and thread counts must be positive")
    per_smx = spec.registers_per_smx // (registers_per_thread * threads_per_cta)
    per_smx = min(per_smx, spec.max_ctas_per_smx,
                  spec.max_threads_per_smx // threads_per_cta)
    return max(per_smx, 0) * spec.num_smx


def compute_occupancy(
    spec: "GPUSpec",
    *,
    registers_per_thread: int,
    threads_per_cta: int,
    num_ctas: Optional[int] = None,
) -> OccupancyInfo:
    """Occupancy for a kernel configuration.

    ``num_ctas`` limits residency further when the launch grid is smaller
    than what the hardware could host (e.g. a tiny frontier); ``None`` means
    the grid is large enough to saturate the device.
    """
    if registers_per_thread <= 0 or threads_per_cta <= 0:
        raise ValueError("register and thread counts must be positive")

    by_registers = spec.registers_per_smx // (registers_per_thread * threads_per_cta)
    by_threads = spec.max_threads_per_smx // threads_per_cta
    by_slots = spec.max_ctas_per_smx

    ctas_per_smx = min(by_registers, by_threads, by_slots)
    if ctas_per_smx <= 0:
        # The kernel cannot run even one CTA per SMX at this register cost;
        # clamp to one and let occupancy be tiny rather than erroring, which
        # mirrors the compiler spilling registers to local memory.
        ctas_per_smx = 1
        limited_by = "registers"
    elif ctas_per_smx == by_registers and by_registers < min(by_threads, by_slots):
        limited_by = "registers"
    elif ctas_per_smx == by_threads and by_threads < min(by_registers, by_slots):
        limited_by = "threads"
    else:
        limited_by = "cta_slots"

    resident_ctas = ctas_per_smx * spec.num_smx
    if num_ctas is not None and num_ctas < resident_ctas:
        resident_ctas = max(0, num_ctas)
        limited_by = "launch"

    resident_threads = resident_ctas * threads_per_cta
    occupancy = resident_threads / spec.max_resident_threads if spec.max_resident_threads else 0.0
    return OccupancyInfo(
        ctas_per_smx=ctas_per_smx,
        resident_ctas=resident_ctas,
        resident_threads=resident_threads,
        occupancy=min(1.0, occupancy),
        limited_by=limited_by,
    )


def configurable_thread_count(
    spec: "GPUSpec",
    *,
    registers_per_thread: int,
    threads_per_cta: int,
) -> int:
    """Total threads a persistent kernel can keep resident on the device.

    This is the quantity the paper reports increasing by ~50% when moving
    from all-fusion (110 registers) to push-pull fusion (~50 registers), and
    by 1.2x / 5.1x moving a fused BFS kernel from K20 to K40 / P100.
    """
    return compute_cta_count(
        spec,
        registers_per_thread=registers_per_thread,
        threads_per_cta=threads_per_cta,
    ) * threads_per_cta
