"""Memory-access modelling helpers.

The systems in this repository execute functionally with NumPy, then describe
what a CUDA kernel would have read and written so the device cost model can
charge for it. These helpers centralize the translation from "algorithmic
events" (expand these frontier vertices' neighbour lists, scatter updates to
these destinations, scan this metadata array) into the two quantities the
cost model cares about: coalesced bytes and scattered 32-byte transactions.

Why this matters for reproduction: the ballot filter's advantage is that its
worklist is *sorted*, so the next iteration's metadata reads coalesce; the
batch filter's worklist is unsorted and redundant, so its reads scatter.
:func:`worklist_sortedness` quantifies that difference from the actual
worklist contents produced by the functional execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Bytes per memory transaction on the simulated devices (L2 sector size).
TRANSACTION_BYTES = 32

#: Sizes of the data types the systems move around.
VERTEX_ID_BYTES = 4
OFFSET_BYTES = 8
WEIGHT_BYTES = 4
METADATA_BYTES = 4


def sequential_bytes(num_elements: int, element_bytes: int) -> float:
    """Traffic for a fully coalesced sequential read/write."""
    if num_elements < 0:
        raise ValueError("num_elements must be non-negative")
    return float(num_elements * element_bytes)


def scattered_accesses(num_elements: int) -> float:
    """Transaction count for fully random single-element accesses."""
    if num_elements < 0:
        raise ValueError("num_elements must be non-negative")
    return float(num_elements)


def adjacency_read_bytes(total_edges: int, *, weighted: bool = True) -> float:
    """Coalesced bytes to read neighbour id (+ weight) lists from CSR.

    Neighbour lists of a vertex are contiguous, so expanding a frontier reads
    them coalesced regardless of worklist order; only the *per-vertex offsets*
    and destination metadata scatter.
    """
    per_edge = VERTEX_ID_BYTES + (WEIGHT_BYTES if weighted else 0)
    return sequential_bytes(total_edges, per_edge)


def offset_read_transactions(num_vertices: int, sortedness: float) -> float:
    """Transactions to read CSR offsets for a worklist.

    A perfectly sorted worklist reads offsets almost sequentially (one
    transaction per 8 offsets of 8 bytes each); a random worklist needs one
    transaction per vertex.
    """
    sortedness = float(np.clip(sortedness, 0.0, 1.0))
    sequential_txn = num_vertices * OFFSET_BYTES / TRANSACTION_BYTES
    random_txn = float(num_vertices)
    return sortedness * sequential_txn + (1.0 - sortedness) * random_txn


def metadata_scatter_transactions(num_accesses: int, locality: float = 0.0) -> float:
    """Transactions for reading/writing per-destination metadata.

    Destinations of expanded edges are essentially random in a skewed graph,
    so the default is one transaction each; ``locality`` in [0, 1] discounts
    for destination reuse within a warp (e.g. pull-mode accumulation where
    one warp owns one destination).
    """
    locality = float(np.clip(locality, 0.0, 1.0))
    return scattered_accesses(num_accesses) * (1.0 - locality)


def metadata_scan_bytes(num_vertices: int) -> float:
    """Coalesced bytes for a full metadata-array scan (the ballot filter)."""
    # The ballot filter reads both current and previous metadata values.
    return sequential_bytes(num_vertices, 2 * METADATA_BYTES)


def worklist_sortedness(worklist: np.ndarray) -> float:
    """Fraction of adjacent worklist pairs that are non-decreasing.

    1.0 for a sorted worklist (ballot filter output), ~0.5 for a random one
    (batch/online filter output). Used to scale offset-read coalescing for
    the *next* iteration.
    """
    if worklist.size <= 1:
        return 1.0
    arr = np.asarray(worklist)
    nondecreasing = np.count_nonzero(arr[1:] >= arr[:-1])
    return float(nondecreasing / (arr.size - 1))


def redundancy_factor(worklist: np.ndarray) -> float:
    """worklist length divided by number of unique entries (>= 1).

    The batch filter and online filter may enqueue the same destination
    several times; every duplicate costs a full recomputation next iteration.
    """
    if worklist.size == 0:
        return 1.0
    unique = np.unique(np.asarray(worklist)).size
    return float(worklist.size / unique)


@dataclass(frozen=True)
class FrontierTraffic:
    """Memory traffic of expanding one frontier, split by coalescing."""

    coalesced_bytes: float
    scattered_transactions: float

    def __add__(self, other: "FrontierTraffic") -> "FrontierTraffic":
        return FrontierTraffic(
            self.coalesced_bytes + other.coalesced_bytes,
            self.scattered_transactions + other.scattered_transactions,
        )


def frontier_expansion_traffic(
    num_active_vertices: int,
    total_edges_expanded: int,
    *,
    sortedness: float = 1.0,
    weighted: bool = True,
    destination_locality: float = 0.0,
) -> FrontierTraffic:
    """Traffic of a push-style expansion of ``num_active_vertices``.

    Reads the worklist (coalesced), the CSR offsets (coalescing depends on
    worklist sortedness), the neighbour/weight arrays (coalesced), and the
    destination metadata (scattered).
    """
    coalesced = (
        sequential_bytes(num_active_vertices, VERTEX_ID_BYTES)
        + adjacency_read_bytes(total_edges_expanded, weighted=weighted)
    )
    scattered = (
        offset_read_transactions(num_active_vertices, sortedness)
        + metadata_scatter_transactions(total_edges_expanded, destination_locality)
    )
    return FrontierTraffic(coalesced, scattered)


def pull_expansion_traffic(
    num_destination_vertices: int,
    total_edges_expanded: int,
    *,
    weighted: bool = True,
    active_edges: Optional[int] = None,
) -> FrontierTraffic:
    """Traffic of a pull-style pass over destination vertices.

    Pull mode walks destinations sequentially (their in-neighbour lists are
    contiguous) but reads the *source* metadata of each in-edge, which
    scatters. The gather consults the frontier bitmap per in-edge first and
    skips the expensive scattered source read when the source is inactive,
    so only ``active_edges`` (in-edges whose source is in the frontier;
    defaults to all of them) pay the scattered transaction.
    """
    if active_edges is None:
        active_edges = total_edges_expanded
    coalesced = (
        sequential_bytes(num_destination_vertices, OFFSET_BYTES + METADATA_BYTES)
        + adjacency_read_bytes(total_edges_expanded, weighted=weighted)
    )
    scattered = metadata_scatter_transactions(active_edges)
    return FrontierTraffic(coalesced, scattered)
