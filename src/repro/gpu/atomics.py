"""Atomic-operation cost model.

The AFC / edge-centric baselines (Gunrock, CuSha in Table 1) apply edge
updates with ``atomicMin`` / ``atomicAdd`` on the destination vertex. On a
GPU those serialize whenever several threads touch the same address in the
same window, and on skewed graphs the high-degree destinations receive a
large share of all updates, so contention is far from uniform.

The helpers here compute, from the actual destination array of a functional
execution, how many atomics were issued and how contended they were - the
two numbers the device cost model charges for. ACC avoids issuing them at
all, which is where the Figure 5 speedup comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AtomicProfile:
    """Summary of one batch of atomic updates."""

    num_ops: int
    contention: float       # average concurrent ops per distinct address (>= 1)
    max_contention: int     # updates hitting the single hottest address

    def scaled(self, factor: float) -> "AtomicProfile":
        """Scale the op count (e.g. when only a fraction issues atomics).

        Rounds to nearest rather than truncating, and never scales a
        non-empty profile down to zero ops: any positive fraction of a
        non-empty batch still issues at least one atomic.
        """
        num_ops = int(round(self.num_ops * factor))
        if num_ops == 0 and self.num_ops > 0 and factor > 0:
            num_ops = 1
        return AtomicProfile(
            num_ops=num_ops,
            contention=self.contention,
            max_contention=self.max_contention,
        )


def profile_atomic_updates(destinations: np.ndarray) -> AtomicProfile:
    """Profile atomics from the destination vertex of every update.

    ``contention`` is the expected queue depth seen by an update: the
    average, weighted by updates, of the number of updates sharing its
    destination. For a uniform spread it is ~1; for a star graph where every
    update targets the hub it equals the update count.
    """
    destinations = np.asarray(destinations)
    n = int(destinations.size)
    if n == 0:
        return AtomicProfile(num_ops=0, contention=1.0, max_contention=0)
    _, counts = np.unique(destinations, return_counts=True)
    # Each update to an address shared by c updates waits behind ~c ops.
    weighted = float((counts.astype(np.float64) ** 2).sum() / n)
    return AtomicProfile(
        num_ops=n,
        contention=max(1.0, weighted),
        max_contention=int(counts.max()),
    )


def combined_profile(profiles: list[AtomicProfile]) -> AtomicProfile:
    """Merge per-iteration profiles into one (update-weighted contention)."""
    total_ops = sum(p.num_ops for p in profiles)
    if total_ops == 0:
        return AtomicProfile(num_ops=0, contention=1.0, max_contention=0)
    contention = sum(p.num_ops * p.contention for p in profiles) / total_ops
    return AtomicProfile(
        num_ops=total_ops,
        contention=max(1.0, contention),
        max_contention=max(p.max_contention for p in profiles),
    )
