"""SIMT GPU cost-model simulator.

The paper runs on NVIDIA K20 / K40 / P100 GPUs; this environment has no GPU,
so the substrate is a deterministic simulator. Kernels execute *functionally*
in NumPy inside the graph systems, and every launch reports a
:class:`~repro.gpu.kernel.WorkEstimate` describing what a real CUDA kernel
would have done (coalesced and scattered memory traffic, arithmetic
operations, atomics and their contention, warp votes). The simulator turns
that estimate into simulated time using the device's occupancy, bandwidth and
launch-overhead parameters.

Everything the paper's evaluation depends on is modelled explicitly:

* register pressure -> occupancy -> effective throughput (Section 5, Eq. 1);
* kernel launch overhead, so fusing kernels matters (Table 2, Figure 13);
* atomic serialization, so the atomic-free ACC combine matters (Figure 5);
* coalesced versus scattered memory transactions, so sorted worklists from
  the ballot filter matter (Section 4);
* device memory capacity, so edge lists / batch filters can go OOM (Table 4);
* a software global barrier whose deadlock-freedom condition depends on the
  resident CTA count (Section 5).
"""

from repro.gpu.device import (
    GPUSpec,
    GPUDevice,
    DeviceOutOfMemory,
    K20,
    K40,
    P100,
    get_device_spec,
    KNOWN_DEVICES,
)
from repro.gpu.kernel import Kernel, KernelLaunch, LaunchResult, WorkEstimate
from repro.gpu.registers import OccupancyInfo, compute_cta_count, compute_occupancy
from repro.gpu.barrier import SoftwareGlobalBarrier, BarrierDeadlockError
from repro.gpu.profiler import DeviceProfiler

__all__ = [
    "GPUSpec",
    "GPUDevice",
    "DeviceOutOfMemory",
    "K20",
    "K40",
    "P100",
    "get_device_spec",
    "KNOWN_DEVICES",
    "Kernel",
    "KernelLaunch",
    "LaunchResult",
    "WorkEstimate",
    "OccupancyInfo",
    "compute_cta_count",
    "compute_occupancy",
    "SoftwareGlobalBarrier",
    "BarrierDeadlockError",
    "DeviceProfiler",
]
