"""GPU device model: hardware parameters, memory capacity and launch costs.

The three devices the paper evaluates (K20, K40, P100) are described by a
:class:`GPUSpec`. Parameters are taken from NVIDIA's published specifications
where the paper cites them (e.g. 65,536 registers per SMX on K40, 32,768 on
K20 as stated in Section 5) and from the architecture whitepapers otherwise.
Absolute bandwidth numbers matter only in that their *ratios* across devices
determine the Section 7.3 scaling experiment.

Device memory capacities are scaled down by ``memory_scale`` in
:class:`GPUDevice` so the laptop-sized dataset analogues reproduce the OOM
behaviour the paper observes with the full-size graphs on 5-16 GB boards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gpu.kernel import Kernel, KernelLaunch, LaunchResult, WorkEstimate
from repro.gpu.registers import compute_cta_count, compute_occupancy
from repro.gpu.profiler import DeviceProfiler


class DeviceOutOfMemory(MemoryError):
    """Raised when a device allocation exceeds the remaining global memory."""


@dataclass(frozen=True)
class GPUSpec:
    """Static hardware description of one GPU model."""

    name: str
    num_smx: int
    cuda_cores_per_smx: int
    registers_per_smx: int
    max_threads_per_smx: int
    max_ctas_per_smx: int
    warp_size: int
    shared_mem_per_smx: int          # bytes
    global_memory_bytes: int
    memory_bandwidth_gbps: float     # GB/s
    core_clock_ghz: float
    kernel_launch_overhead_us: float
    atomic_cost_ops: float           # simple-op equivalents per atomic update
    global_latency_us: float         # latency component per kernel phase

    @property
    def total_cuda_cores(self) -> int:
        return self.num_smx * self.cuda_cores_per_smx

    @property
    def peak_gips(self) -> float:
        """Peak simple-integer-op throughput in giga-ops per second."""
        return self.total_cuda_cores * self.core_clock_ghz

    @property
    def max_resident_threads(self) -> int:
        return self.num_smx * self.max_threads_per_smx


# Published / whitepaper-derived parameters. Launch overhead and atomic
# latency are calibration constants chosen so the relative results in the
# paper's figures (fusion benefit, atomic-free benefit) fall in the reported
# ranges; see EXPERIMENTS.md.
K20 = GPUSpec(
    name="K20",
    num_smx=13,
    cuda_cores_per_smx=192,
    registers_per_smx=32_768,
    max_threads_per_smx=2048,
    max_ctas_per_smx=16,
    warp_size=32,
    shared_mem_per_smx=48 * 1024,
    global_memory_bytes=5 * 1024**3,
    memory_bandwidth_gbps=208.0,
    core_clock_ghz=0.706,
    kernel_launch_overhead_us=9.0,
    atomic_cost_ops=72.0,
    global_latency_us=0.8,
)

K40 = GPUSpec(
    name="K40",
    num_smx=15,
    cuda_cores_per_smx=192,
    registers_per_smx=65_536,
    max_threads_per_smx=2048,
    max_ctas_per_smx=16,
    warp_size=32,
    shared_mem_per_smx=48 * 1024,
    global_memory_bytes=12 * 1024**3,
    memory_bandwidth_gbps=288.0,
    core_clock_ghz=0.745,
    kernel_launch_overhead_us=8.0,
    atomic_cost_ops=56.0,
    global_latency_us=0.6,
)

P100 = GPUSpec(
    name="P100",
    num_smx=56,
    cuda_cores_per_smx=64,
    registers_per_smx=65_536,
    max_threads_per_smx=2048,
    max_ctas_per_smx=32,
    warp_size=32,
    shared_mem_per_smx=64 * 1024,
    global_memory_bytes=16 * 1024**3,
    memory_bandwidth_gbps=732.0,
    core_clock_ghz=1.328,
    kernel_launch_overhead_us=6.0,
    atomic_cost_ops=32.0,
    global_latency_us=0.4,
)

KNOWN_DEVICES: Dict[str, GPUSpec] = {"K20": K20, "K40": K40, "P100": P100}


def get_device_spec(name: str) -> GPUSpec:
    """Look up a device spec by name (case-insensitive)."""
    key = name.upper()
    if key not in KNOWN_DEVICES:
        raise KeyError(f"unknown device {name!r}; known: {sorted(KNOWN_DEVICES)}")
    return KNOWN_DEVICES[key]


@dataclass
class Allocation:
    """A live device-memory allocation."""

    label: str
    nbytes: int
    freed: bool = False


class GPUDevice:
    """A simulated GPU: memory allocator plus kernel-launch cost model.

    Parameters
    ----------
    spec:
        Hardware description (defaults to the paper's primary K40 device).
    memory_scale:
        Multiplier applied to ``spec.global_memory_bytes``. The systems size
        their allocations against the *modeled* (paper-scale) graph sizes
        (see :meth:`repro.graph.csr.CSRGraph.modeled_csr_bytes`), so the
        default is the device's real capacity; shrink it to study OOM
        behaviour on graphs without paper-size annotations.
    """

    DEFAULT_MEMORY_SCALE = 1.0

    def __init__(self, spec: GPUSpec = K40, *, memory_scale: float = DEFAULT_MEMORY_SCALE):
        if memory_scale <= 0:
            raise ValueError("memory_scale must be positive")
        self.spec = spec
        #: Kept so sharded execution can build per-shard devices with the
        #: same (possibly shrunken) budget as the device it replaces.
        self.memory_scale = memory_scale
        self.memory_capacity = int(spec.global_memory_bytes * memory_scale)
        self._allocated = 0
        self._allocations: List[Allocation] = []
        self.profiler = DeviceProfiler(device_name=spec.name)

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    @property
    def free_bytes(self) -> int:
        return self.memory_capacity - self._allocated

    def malloc(self, nbytes: int, label: str = "") -> Allocation:
        """Reserve device memory or raise :class:`DeviceOutOfMemory`."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self._allocated + nbytes > self.memory_capacity:
            raise DeviceOutOfMemory(
                f"{self.spec.name}: cannot allocate {nbytes} bytes for "
                f"{label or 'buffer'}; {self.free_bytes} of "
                f"{self.memory_capacity} bytes free"
            )
        alloc = Allocation(label=label, nbytes=nbytes)
        self._allocations.append(alloc)
        self._allocated += nbytes
        self.profiler.record_allocation(label, nbytes, self._allocated)
        return alloc

    def free(self, alloc: Allocation) -> None:
        """Release a previous allocation (idempotent)."""
        if alloc.freed:
            return
        alloc.freed = True
        self._allocated -= alloc.nbytes

    def reset_memory(self) -> None:
        """Release every allocation (device reset between experiments)."""
        for alloc in self._allocations:
            alloc.freed = True
        self._allocations.clear()
        self._allocated = 0

    # ------------------------------------------------------------------
    # Kernel execution cost model
    # ------------------------------------------------------------------
    def launch(self, launch: KernelLaunch) -> LaunchResult:
        """Account the cost of one kernel launch and return its timing."""
        result = self.estimate(launch)
        self.profiler.record_launch(launch, result)
        return result

    def estimate(self, launch: KernelLaunch) -> LaunchResult:
        """Compute simulated time for a launch without recording it."""
        spec = self.spec
        kernel = launch.kernel
        work = launch.work

        occupancy = compute_occupancy(
            spec,
            registers_per_thread=kernel.registers_per_thread,
            threads_per_cta=kernel.threads_per_cta,
            num_ctas=launch.num_ctas,
        )

        # Memory time: coalesced traffic moves at peak bandwidth; scattered
        # accesses each occupy a 32-byte transaction of which only
        # `useful_bytes` are useful, so their effective bandwidth drops by
        # the ratio. Low occupancy cannot cover memory latency, modelled as a
        # linear derating below 50% occupancy (the classic rule of thumb).
        coalesced_bytes = work.coalesced_bytes
        scattered_bytes = work.scattered_transactions * 32
        total_bytes = coalesced_bytes + scattered_bytes
        latency_cover = min(1.0, occupancy.occupancy / 0.5) if total_bytes else 1.0
        effective_bw = spec.memory_bandwidth_gbps * max(latency_cover, 0.05)
        memory_us = (total_bytes / (effective_bw * 1e3)) if total_bytes else 0.0

        # Compute time: simple ops at peak integer throughput, derated by
        # occupancy (fewer resident warps -> fewer issue slots covered) and
        # by warp divergence (divergent branches serialize lanes).
        compute_throughput = spec.peak_gips * 1e3 * max(occupancy.occupancy, 0.05)
        divergence_penalty = 1.0 + work.divergence_fraction
        compute_us = (
            work.compute_ops * divergence_penalty / compute_throughput
            if work.compute_ops
            else 0.0
        )

        # Atomic time: an uncontended atomic costs roughly
        # ``atomic_cost_ops`` simple-op equivalents (read-modify-write at L2);
        # contention serializes updates to the same address, softened with a
        # square root because the hardware aggregates same-address updates
        # within a warp and spreads traffic across memory partitions.
        atomic_us = 0.0
        if work.atomic_ops:
            contention = max(1.0, min(work.atomic_contention, 64.0))
            cost_ops = spec.atomic_cost_ops * (contention ** 0.5)
            atomic_us = work.atomic_ops * cost_ops / compute_throughput

        # Warp-vote / scan primitives are cheap but not free.
        primitive_us = work.warp_primitive_ops * 0.5 / (spec.peak_gips * 1e3)

        # Fixed latency per kernel phase (pipeline drain, barrier at end).
        latency_us = spec.global_latency_us if work.nonzero() else 0.0

        launch_us = 0.0 if launch.fused_continuation else spec.kernel_launch_overhead_us

        busy_us = memory_us + compute_us + atomic_us + primitive_us + latency_us
        total_us = launch_us + busy_us

        return LaunchResult(
            kernel_name=kernel.name,
            total_us=total_us,
            launch_overhead_us=launch_us,
            memory_us=memory_us,
            compute_us=compute_us,
            atomic_us=atomic_us,
            primitive_us=primitive_us,
            latency_us=latency_us,
            occupancy=occupancy,
        )

    # ------------------------------------------------------------------
    # Helpers used by fusion / barrier logic
    # ------------------------------------------------------------------
    def cta_count_for(self, kernel: Kernel) -> int:
        """Deadlock-free CTA count for a persistent kernel (Eq. 1)."""
        return compute_cta_count(
            self.spec,
            registers_per_thread=kernel.registers_per_thread,
            threads_per_cta=kernel.threads_per_cta,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GPUDevice({self.spec.name}, mem={self.memory_capacity} B, "
            f"allocated={self._allocated} B)"
        )
