"""Kernel abstraction and per-launch work description.

A :class:`Kernel` captures the static properties a CUDA compiler would
report (``-Xptxas -v`` in the paper): the register footprint per thread and
the CTA geometry. A :class:`KernelLaunch` pairs a kernel with a
:class:`WorkEstimate` describing the dynamic work of one invocation; the
device cost model (:meth:`repro.gpu.device.GPUDevice.launch`) converts that
into simulated time.

Register footprints for the SIMD-X kernels come directly from Table 2 of the
paper and are defined in :mod:`repro.core.fusion`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

DEFAULT_THREADS_PER_CTA = 128


@dataclass(frozen=True)
class Kernel:
    """Static description of a GPU kernel."""

    name: str
    registers_per_thread: int
    threads_per_cta: int = DEFAULT_THREADS_PER_CTA
    shared_mem_per_cta: int = 0

    def __post_init__(self) -> None:
        if self.registers_per_thread <= 0:
            raise ValueError("registers_per_thread must be positive")
        if self.threads_per_cta <= 0 or self.threads_per_cta % 32:
            raise ValueError("threads_per_cta must be a positive multiple of 32")
        if self.shared_mem_per_cta < 0:
            raise ValueError("shared_mem_per_cta must be non-negative")

    def with_registers(self, registers_per_thread: int) -> "Kernel":
        """Copy of this kernel with a different register footprint."""
        return Kernel(
            name=self.name,
            registers_per_thread=registers_per_thread,
            threads_per_cta=self.threads_per_cta,
            shared_mem_per_cta=self.shared_mem_per_cta,
        )


@dataclass
class WorkEstimate:
    """Dynamic work performed by one kernel invocation.

    Attributes
    ----------
    coalesced_bytes:
        Bytes moved through fully coalesced transactions (sequential CSR
        neighbour lists, sorted worklists, metadata scans).
    scattered_transactions:
        Number of isolated 32-byte transactions caused by random access
        (metadata lookups of scattered destinations, unsorted worklists).
    compute_ops:
        Simple arithmetic/compare operations executed across all threads.
    atomic_ops:
        Atomic read-modify-write operations issued.
    atomic_contention:
        Average number of atomics contending for the same address
        (1.0 = uncontended). Contention serializes atomics.
    warp_primitive_ops:
        Warp-level votes / shuffles / scan steps (ballot, prefix sums).
    divergence_fraction:
        Fraction of extra serialized work due to intra-warp branch
        divergence, in [0, 1]; 0 means perfectly converged warps.
    """

    coalesced_bytes: float = 0.0
    scattered_transactions: float = 0.0
    compute_ops: float = 0.0
    atomic_ops: float = 0.0
    atomic_contention: float = 1.0
    warp_primitive_ops: float = 0.0
    divergence_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.divergence_fraction < 0 or self.divergence_fraction > 1:
            raise ValueError("divergence_fraction must be within [0, 1]")
        for name in ("coalesced_bytes", "scattered_transactions", "compute_ops",
                     "atomic_ops", "warp_primitive_ops"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.atomic_contention < 1.0:
            raise ValueError("atomic_contention must be >= 1.0")

    def nonzero(self) -> bool:
        return bool(
            self.coalesced_bytes
            or self.scattered_transactions
            or self.compute_ops
            or self.atomic_ops
            or self.warp_primitive_ops
        )

    def merged_with(self, other: "WorkEstimate") -> "WorkEstimate":
        """Combine two estimates (used when kernels are fused)."""
        total_atomics = self.atomic_ops + other.atomic_ops
        if total_atomics:
            contention = (
                self.atomic_ops * self.atomic_contention
                + other.atomic_ops * other.atomic_contention
            ) / total_atomics
        else:
            contention = 1.0
        weight = self.compute_ops + other.compute_ops
        if weight:
            divergence = (
                self.compute_ops * self.divergence_fraction
                + other.compute_ops * other.divergence_fraction
            ) / weight
        else:
            divergence = max(self.divergence_fraction, other.divergence_fraction)
        return WorkEstimate(
            coalesced_bytes=self.coalesced_bytes + other.coalesced_bytes,
            scattered_transactions=self.scattered_transactions + other.scattered_transactions,
            compute_ops=self.compute_ops + other.compute_ops,
            atomic_ops=total_atomics,
            atomic_contention=contention,
            warp_primitive_ops=self.warp_primitive_ops + other.warp_primitive_ops,
            divergence_fraction=min(1.0, divergence),
        )


@dataclass(frozen=True)
class KernelLaunch:
    """One invocation of a kernel.

    ``fused_continuation`` marks a phase that runs inside an already-resident
    (fused / persistent) kernel: it performs its work but pays no launch
    overhead, which is exactly the saving kernel fusion buys.
    """

    kernel: Kernel
    work: WorkEstimate
    num_ctas: Optional[int] = None
    fused_continuation: bool = False


@dataclass(frozen=True)
class LaunchResult:
    """Timing breakdown for one (possibly fused) kernel phase."""

    kernel_name: str
    total_us: float
    launch_overhead_us: float
    memory_us: float
    compute_us: float
    atomic_us: float
    primitive_us: float
    latency_us: float
    occupancy: "OccupancyInfo"

    @property
    def busy_us(self) -> float:
        return self.total_us - self.launch_overhead_us


# Imported at the bottom to avoid a circular import: registers.py does not
# depend on kernel.py, but type checkers want the symbol available here.
from repro.gpu.registers import OccupancyInfo  # noqa: E402  (intentional)
