"""Software global barrier with the deadlock-freedom check (Section 5).

GPUs have no device-wide barrier a kernel can call, so fusing kernels across
iterations requires a *software* global barrier: worker CTAs flip a flag in a
``lock`` array on arrival and spin until a monitor CTA flips every flag to
"depart". The paper's observation is that this deadlocks whenever more CTAs
are launched than can be simultaneously resident - non-resident CTAs can
never arrive because the resident (spinning) ones never release their SMX
resources.

SIMD-X sidesteps the problem by computing the resident-CTA bound from the
kernel's register footprint at compile time (Eq. 1, implemented in
:func:`repro.gpu.registers.compute_cta_count`) and launching exactly that
many CTAs. The :class:`SoftwareGlobalBarrier` here enforces the same
condition: constructing it for an over-subscribed launch raises
:class:`BarrierDeadlockError` unless deadlock checking is explicitly
disabled, in which case :meth:`synchronize` reports the deadlock the way a
hung kernel would - this is used by tests and by the fusion ablation to
demonstrate the failure mode the paper describes for prior work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.gpu.device import GPUSpec
from repro.gpu.kernel import Kernel
from repro.gpu.registers import compute_cta_count


class BarrierDeadlockError(RuntimeError):
    """Raised when a software global barrier would hang on real hardware."""


@dataclass
class BarrierStats:
    """Counters for one barrier instance."""

    synchronizations: int = 0
    total_cta_arrivals: int = 0


class SoftwareGlobalBarrier:
    """Lock-array style global barrier between CTAs of a persistent kernel.

    Parameters
    ----------
    spec:
        Device the fused kernel runs on.
    kernel:
        The fused kernel (its register footprint bounds residency).
    num_ctas:
        CTAs actually launched. Defaults to the deadlock-free count.
    check_deadlock:
        When True (default), constructing an over-subscribed barrier raises
        immediately - this is SIMD-X's compile-time guarantee. When False,
        the over-subscription is only detected at :meth:`synchronize`,
        modelling the runtime hang of prior-work barriers.
    """

    #: Simulated cost of one global synchronization: every CTA performs one
    #: global write (arrival) and polls until the monitor's release write
    #: becomes visible; on real hardware this is on the order of a few
    #: microseconds, far cheaper than a kernel relaunch.
    SYNC_COST_PER_CTA_US = 0.001
    SYNC_BASE_COST_US = 0.5

    def __init__(
        self,
        spec: GPUSpec,
        kernel: Kernel,
        *,
        num_ctas: int | None = None,
        check_deadlock: bool = True,
    ):
        self.spec = spec
        self.kernel = kernel
        self.max_resident_ctas = compute_cta_count(
            spec,
            registers_per_thread=kernel.registers_per_thread,
            threads_per_cta=kernel.threads_per_cta,
        )
        self.num_ctas = num_ctas if num_ctas is not None else self.max_resident_ctas
        if self.num_ctas <= 0:
            raise ValueError("a barrier needs at least one CTA")
        self._lock: List[int] = [0] * self.num_ctas
        self.stats = BarrierStats()

        if check_deadlock and not self.is_deadlock_free:
            raise BarrierDeadlockError(
                f"{kernel.name}: launching {self.num_ctas} CTAs but only "
                f"{self.max_resident_ctas} can be resident on {spec.name} "
                f"({kernel.registers_per_thread} regs/thread x "
                f"{kernel.threads_per_cta} threads/CTA); the software global "
                "barrier would deadlock"
            )

    @property
    def is_deadlock_free(self) -> bool:
        """True when every launched CTA can be simultaneously resident."""
        return self.num_ctas <= self.max_resident_ctas

    def synchronize(self) -> float:
        """Run one arrival/departure round; returns simulated cost in us.

        Raises :class:`BarrierDeadlockError` for an over-subscribed launch,
        because the non-resident CTAs can never reach their arrival write.
        """
        if not self.is_deadlock_free:
            raise BarrierDeadlockError(
                f"{self.kernel.name}: barrier hang - "
                f"{self.num_ctas - self.max_resident_ctas} CTAs can never arrive"
            )
        # Arrival: every worker CTA sets its slot; monitor observes them all.
        for cta in range(self.num_ctas):
            self._lock[cta] = 1
        self.stats.total_cta_arrivals += self.num_ctas
        # Departure: the monitor flips all slots back, releasing the workers.
        for cta in range(self.num_ctas):
            self._lock[cta] = 0
        self.stats.synchronizations += 1
        return self.SYNC_BASE_COST_US + self.SYNC_COST_PER_CTA_US * self.num_ctas

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "ok" if self.is_deadlock_free else "DEADLOCK"
        return (
            f"SoftwareGlobalBarrier({self.kernel.name}, ctas={self.num_ctas}/"
            f"{self.max_resident_ctas} resident, {state})"
        )
