"""Warp-level execution model: ballot votes, lane reductions, divergence.

The ACC engine's key claim (Section 3.3) is that a warp can cooperatively
compute and combine the updates of one vertex's neighbour list entirely in
registers / shared memory, with lane 0 writing the final value - no atomics.
The ballot filter (Section 4) relies on the CUDA ``__ballot()`` vote to turn
32 per-lane activity flags into one bitmask handled by a single lane.

These helpers give the systems functional equivalents of those primitives
(operating on NumPy arrays) together with cost figures (number of warp
primitive operations, divergence fractions) to feed the device cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

import numpy as np

WARP_SIZE = 32


def num_warps(num_threads: int, warp_size: int = WARP_SIZE) -> int:
    """Number of warps needed to host ``num_threads`` threads."""
    if num_threads < 0:
        raise ValueError("num_threads must be non-negative")
    return -(-num_threads // warp_size)


def ballot(flags: Sequence[bool] | np.ndarray) -> int:
    """Functional equivalent of ``__ballot_sync`` for one warp.

    Returns an integer bitmask whose bit ``i`` is the flag of lane ``i``.
    At most :data:`WARP_SIZE` flags are accepted.
    """
    flags = np.asarray(flags, dtype=bool)
    if flags.size > WARP_SIZE:
        raise ValueError(f"a warp has at most {WARP_SIZE} lanes")
    mask = 0
    for lane, flag in enumerate(flags):
        if flag:
            mask |= 1 << lane
    return mask


def ballot_array(flags: np.ndarray, warp_size: int = WARP_SIZE) -> np.ndarray:
    """Vectorized ballot over an arbitrary-length flag array.

    Returns one bitmask per warp-sized chunk, matching how the ballot filter
    scans the metadata array: consecutive lanes inspect consecutive vertices
    and lane 0 of each warp receives the combined vote.
    """
    flags = np.asarray(flags, dtype=bool)
    n = flags.size
    if n == 0:
        return np.zeros(0, dtype=np.uint64)
    padded = np.zeros(num_warps(n, warp_size) * warp_size, dtype=np.uint64)
    padded[:n] = flags.astype(np.uint64)
    chunks = padded.reshape(-1, warp_size)
    weights = (np.uint64(1) << np.arange(warp_size, dtype=np.uint64))
    return (chunks * weights).sum(axis=1, dtype=np.uint64)


def popcount(masks: np.ndarray) -> np.ndarray:
    """Per-mask population count (number of set lanes)."""
    masks = np.asarray(masks, dtype=np.uint64)
    counts = np.zeros(masks.shape, dtype=np.int64)
    work = masks.copy()
    for _ in range(64):
        counts += (work & np.uint64(1)).astype(np.int64)
        work >>= np.uint64(1)
        if not work.any():
            break
    return counts


def warp_reduce(values: np.ndarray, op: Callable[[np.ndarray], float]) -> float:
    """Reduce up to a warp's worth of per-lane values with ``op``.

    ``op`` receives the array and returns a scalar (``np.min``, ``np.sum``,
    ...). In hardware this is a log2(32) = 5 step shuffle reduction; the cost
    is accounted separately via :func:`reduction_primitive_ops`.
    """
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("cannot reduce an empty lane set")
    if values.size > WARP_SIZE:
        raise ValueError(f"a warp has at most {WARP_SIZE} lanes")
    return float(op(values))


def reduction_primitive_ops(num_values: int, warp_size: int = WARP_SIZE) -> float:
    """Warp-shuffle operations needed to reduce ``num_values`` values."""
    if num_values <= 0:
        return 0.0
    warps = num_warps(num_values, warp_size)
    # log2(warp_size) shuffle steps per warp plus a final cross-warp pass.
    per_warp = int(np.ceil(np.log2(warp_size)))
    cross = int(np.ceil(np.log2(max(warps, 1)))) if warps > 1 else 0
    return float(warps * per_warp + cross)


def divergence_fraction(per_lane_work: np.ndarray, warp_size: int = WARP_SIZE) -> float:
    """Estimate intra-warp divergence from per-thread work counts.

    A warp executes for as long as its busiest lane; the wasted fraction is
    ``1 - mean/max`` averaged over warps. Uniform work gives 0; one busy lane
    among 32 idle ones approaches 31/32. Thread-per-vertex scheduling of a
    skewed frontier produces exactly this pathology, which is why SIMD-X
    routes high-degree vertices to warp/CTA kernels instead.
    """
    work = np.asarray(per_lane_work, dtype=np.float64)
    if work.size == 0:
        return 0.0
    pad = num_warps(work.size, warp_size) * warp_size - work.size
    if pad:
        work = np.concatenate([work, np.zeros(pad)])
    chunks = work.reshape(-1, warp_size)
    maxes = chunks.max(axis=1)
    means = chunks.mean(axis=1)
    busy = maxes > 0
    if not busy.any():
        return 0.0
    waste = 1.0 - means[busy] / maxes[busy]
    return float(np.clip(waste.mean(), 0.0, 1.0))


@dataclass(frozen=True)
class WarpCombineResult:
    """Result of a warp-cooperative compute+combine over one vertex."""

    value: float
    primitive_ops: float


def warp_combine(
    updates: np.ndarray,
    combine: Callable[[np.ndarray], float],
    warp_size: int = WARP_SIZE,
) -> WarpCombineResult:
    """Combine a vertex's edge updates the way a warp kernel would.

    The neighbour list is processed in warp-sized strips; each strip is
    reduced with shuffles, then the per-strip partials are reduced again.
    This mirrors lines 1-8 of Figure 4(b) and is used by the Warp and CTA
    kernels of the engine.
    """
    updates = np.asarray(updates, dtype=np.float64)
    if updates.size == 0:
        raise ValueError("warp_combine requires at least one update")
    partials: List[float] = []
    ops = 0.0
    for start in range(0, updates.size, warp_size):
        strip = updates[start:start + warp_size]
        partials.append(warp_reduce(strip, combine))
        ops += reduction_primitive_ops(strip.size, warp_size)
    value = combine(np.asarray(partials))
    ops += reduction_primitive_ops(len(partials), warp_size)
    return WarpCombineResult(value=float(value), primitive_ops=ops)
