"""Device-wide primitives: prefix scan and stream compaction.

The JIT task management pipeline concatenates per-thread bins into the next
active list with a prefix scan (line 20 of Figure 4(b)), and the ballot
filter compacts the metadata-scan bitmasks into a sorted worklist. Both are
standard GPU primitives; here they are executed functionally with NumPy and
their cost is described with a :class:`~repro.gpu.kernel.WorkEstimate` so the
device can charge for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.gpu.kernel import WorkEstimate
from repro.gpu.memory import TRANSACTION_BYTES, VERTEX_ID_BYTES, sequential_bytes


@dataclass(frozen=True)
class PrimitiveResult:
    """A functional result paired with the work a GPU would have done."""

    values: np.ndarray
    work: WorkEstimate


def exclusive_scan(counts: np.ndarray) -> PrimitiveResult:
    """Exclusive prefix sum over per-thread (or per-bin) counts.

    Cost model: a work-efficient scan reads and writes each element once and
    performs ~2 ops per element across the up-sweep and down-sweep phases.
    """
    counts = np.asarray(counts, dtype=np.int64)
    offsets = np.zeros(counts.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    n = counts.size
    work = WorkEstimate(
        coalesced_bytes=sequential_bytes(2 * n, 8),
        compute_ops=float(2 * n),
        warp_primitive_ops=float(max(0, n) and int(np.ceil(np.log2(max(n, 2))))),
    )
    return PrimitiveResult(values=offsets, work=work)


def concatenate_bins(bins: Sequence[np.ndarray]) -> PrimitiveResult:
    """Concatenate per-thread bins into one worklist via scan + scatter.

    This is how both the online filter and the batch filter assemble their
    next active list without atomics: scan the bin sizes to get each thread's
    output offset, then copy each bin to its slice.
    """
    sizes = np.array([b.size for b in bins], dtype=np.int64)
    scan = exclusive_scan(sizes)
    total = int(scan.values[-1])
    out = np.empty(total, dtype=np.int64)
    for b, start in zip(bins, scan.values[:-1]):
        out[start:start + b.size] = b
    copy_bytes = sequential_bytes(total, VERTEX_ID_BYTES) * 2  # read + write
    work = scan.work.merged_with(
        WorkEstimate(coalesced_bytes=copy_bytes, compute_ops=float(total))
    )
    return PrimitiveResult(values=out, work=work)


def compact_flags(flags: np.ndarray) -> PrimitiveResult:
    """Stream compaction: indices of set flags, in order.

    Used by the ballot filter after the metadata scan: each warp's ballot
    mask is popcounted, a scan over warp counts gives output offsets and the
    set lanes write their vertex ids, producing a *sorted* worklist.
    """
    flags = np.asarray(flags, dtype=bool)
    indices = np.nonzero(flags)[0].astype(np.int64)
    n = flags.size
    num_warps = -(-n // 32) if n else 0
    work = WorkEstimate(
        # Read the flag array (packed as one byte per flag here; on device it
        # is derived from metadata already read by the caller, so we only
        # charge the bitmask handling and the output writes).
        coalesced_bytes=sequential_bytes(indices.size, VERTEX_ID_BYTES),
        compute_ops=float(n),
        warp_primitive_ops=float(num_warps),
    )
    return PrimitiveResult(values=indices, work=work)


def fill(value: float, count: int, element_bytes: int = 4) -> WorkEstimate:
    """Cost of a device-wide memset/fill of ``count`` elements."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return WorkEstimate(
        coalesced_bytes=sequential_bytes(count, element_bytes),
        compute_ops=float(count) * 0.25,
    )
