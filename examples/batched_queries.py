#!/usr/bin/env python3
"""Batched multi-source queries: K traversals, one CSR walk per iteration.

A serving workload asks the same graph many nearly-identical questions -
"distance from user A / B / C...", landmark distance sketches, multi-seed
reachability. Running them one at a time (`SIMDXEngine.run`) pays the full
per-edge cost per query; `SIMDXEngine.run_batch` gives each query a *lane*
and walks the union of the K frontiers once per iteration, expanding every
union edge only into the lanes whose frontier contains its source. Results
are bit-identical to the K independent runs; see docs/batching.md.

Run with:  PYTHONPATH=src python examples/batched_queries.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import BFS, SSSP
from repro.core.engine import SIMDXEngine
from repro.gpu.device import GPUDevice, K40
from repro.graph.datasets import load_dataset


def main() -> None:
    # A scaled-down LiveJournal analogue: skewed degrees, low diameter -
    # exactly the regime where K frontiers overlap and batching wins.
    graph = load_dataset("LJ", scale=0.5)
    print(f"Graph: {graph}")

    # The 16 highest-degree vertices play the role of 16 user queries.
    sources = [int(v) for v in np.argsort(graph.out_degrees())[::-1][:16]]

    # --- batched: one engine pass answers all 16 BFS queries ------------
    engine = SIMDXEngine(graph, device=GPUDevice(K40))
    batch = engine.run_batch(BFS(), sources)
    print(f"\nBatched BFS over K={batch.num_lanes} sources:")
    print(f"  iterations        = {batch.iterations} "
          f"(per lane: {batch.lane_iterations})")
    print(f"  simulated time    = {batch.elapsed_ms:.3f} ms "
          f"({batch.queries_per_second:,.0f} queries/s)")
    print(f"  direction trace   = {batch.direction_trace}")
    print(f"  union edges walked= {batch.extra['union_edges_walked']:,} "
          f"(serial would walk {batch.extra['lane_edge_pairs']:,})")

    # --- the serial baseline: the same 16 queries, one at a time --------
    serial_us = 0.0
    identical = True
    for lane, source in enumerate(sources):
        single = SIMDXEngine(graph, device=GPUDevice(K40)).run(BFS(source=source))
        serial_us += single.elapsed_us
        identical &= bool(np.array_equal(batch.values[lane], single.values))
    print(f"\nSerial loop over the same sources:")
    print(f"  simulated time    = {serial_us / 1000.0:.3f} ms "
          f"({len(sources) / (serial_us / 1e6):,.0f} queries/s)")
    print(f"  batch speedup     = {serial_us / batch.elapsed_us:.2f}x")
    print(f"  bit-identical     = {identical}")

    # --- weighted distances batch the same way --------------------------
    sssp = engine.run_batch(SSSP(), sources[:4])
    print(f"\nBatched SSSP over K={sssp.num_lanes} sources:")
    print(f"  iterations        = {sssp.iterations}")
    print(f"  simulated time    = {sssp.elapsed_ms:.3f} ms")
    for lane, source in enumerate(sssp.sources):
        reached = int(np.isfinite(sssp.values[lane]).sum())
        print(f"  lane {lane} (source {source:>6}): "
              f"reached {reached} / {graph.num_vertices} vertices")


if __name__ == "__main__":
    main()
