#!/usr/bin/env python3
"""Writing a new graph algorithm in the ACC model (tens of lines of code).

The paper's pitch is that a user expresses an algorithm with three small
data-parallel functions - Active, Compute and Combine - and SIMD-X handles
worklists, filters, push/pull direction and kernel fusion. This example
implements two algorithms that do not ship with the library:

* **Reachability with hop limit** - which vertices are within H hops of a
  set of seed vertices (a simple voting algorithm);
* **Widest path** (maximum-bottleneck path) - the largest minimum edge
  weight along any path from the source, a textbook aggregation with MAX
  combine that exercises a combine operator none of the built-ins use.

Run with:  python examples/custom_algorithm.py
"""

from __future__ import annotations

import numpy as np

from repro.core.acc import ACCAlgorithm, CombineKind, CombineOp, InitialState
from repro.core.engine import SIMDXEngine
from repro.graph.datasets import load_dataset
from repro.graph.csr import CSRGraph


class BoundedReachability(ACCAlgorithm):
    """Mark every vertex within ``max_hops`` of any seed vertex.

    Metadata is the hop distance (infinity = not yet reached). The combine is
    a vote: any single "you are reachable at hop h" message suffices.
    """

    name = "bounded_reachability"
    combine_kind = CombineKind.VOTING
    combine_op = CombineOp.MIN
    uses_weights = False

    def __init__(self, seeds, max_hops: int):
        self.seeds = list(seeds)
        self.max_hops = max_hops

    def init(self, graph: CSRGraph, **params) -> InitialState:
        metadata = np.full(graph.num_vertices, np.inf)
        metadata[self.seeds] = 0.0
        return InitialState(metadata=metadata,
                            frontier=np.asarray(self.seeds, dtype=np.int64))

    def active_mask(self, curr, prev):
        # Active while newly reached and still allowed to expand.
        return (curr != prev) & (curr < self.max_hops)

    def compute_edges(self, src_meta, weights, dst_meta, src_ids, dst_ids, graph):
        candidate = src_meta + 1.0
        return np.where(candidate < dst_meta, candidate, np.nan)

    def apply(self, old, combined, touched):
        return np.minimum(old, combined)

    def reachable(self, metadata):
        return np.isfinite(metadata) & (metadata <= self.max_hops)


class WidestPath(ACCAlgorithm):
    """Maximum-bottleneck path width from a single source.

    Metadata is the best bottleneck found so far (0 = unreached, infinity at
    the source). An edge offers ``min(width(src), w)`` to its destination and
    the destination keeps the maximum over all offers - a MAX aggregation.
    """

    name = "widest_path"
    combine_kind = CombineKind.AGGREGATION
    combine_op = CombineOp.MAX
    uses_weights = True

    def __init__(self, source: int):
        self.source = source

    def init(self, graph: CSRGraph, **params) -> InitialState:
        metadata = np.zeros(graph.num_vertices)
        metadata[self.source] = np.inf
        return InitialState(metadata=metadata,
                            frontier=np.array([self.source], dtype=np.int64))

    def active_mask(self, curr, prev):
        return curr != prev

    def compute_edges(self, src_meta, weights, dst_meta, src_ids, dst_ids, graph):
        candidate = np.minimum(src_meta, weights)
        return np.where(candidate > dst_meta, candidate, np.nan)

    def apply(self, old, combined, touched):
        return np.maximum(old, combined)


def widest_path_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """Dijkstra-like oracle for the widest path, used to verify the ACC run."""
    import heapq

    width = np.zeros(graph.num_vertices)
    width[source] = np.inf
    heap = [(-np.inf, source)]
    done = np.zeros(graph.num_vertices, dtype=bool)
    while heap:
        negative_width, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        for u, w in zip(graph.out_neighbors(v), graph.out_weights(v)):
            u = int(u)
            candidate = min(width[v], float(w))
            if candidate > width[u]:
                width[u] = candidate
                heapq.heappush(heap, (-candidate, u))
    return width


def main() -> None:
    graph = load_dataset("PK", scale=0.5)
    engine = SIMDXEngine(graph)
    hub = int(np.argmax(graph.out_degrees()))

    # --- bounded reachability -------------------------------------------
    seeds = [hub, (hub + 17) % graph.num_vertices]
    reach_algo = BoundedReachability(seeds=seeds, max_hops=3)
    result = engine.run(reach_algo)
    reached = reach_algo.reachable(result.values)
    print(f"Bounded reachability on {graph.name}: seeds={seeds}, H=3")
    print(f"  iterations      = {result.iterations}")
    print(f"  reachable       = {int(reached.sum())} / {graph.num_vertices}")
    print(f"  simulated time  = {result.elapsed_ms:.3f} ms")
    print(f"  filter trace    = {result.filter_trace}")

    # --- widest path ------------------------------------------------------
    widest_algo = WidestPath(source=hub)
    result = engine.run(widest_algo)
    expected = widest_path_reference(graph, hub)
    finite = np.isfinite(expected) & np.isfinite(result.values)
    matches = np.allclose(result.values[finite], expected[finite])
    print(f"\nWidest path from vertex {hub}:")
    print(f"  iterations      = {result.iterations}")
    print(f"  simulated time  = {result.elapsed_ms:.3f} ms")
    print(f"  matches oracle  = {matches}")
    print(f"  median width    = {np.median(result.values[result.values > 0]):.1f}")


if __name__ == "__main__":
    main()
