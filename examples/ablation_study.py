#!/usr/bin/env python3
"""Ablation study: how much each SIMD-X technique contributes.

The paper's Sections 7.1-7.3 quantify the contribution of the ACC combine,
JIT task management and push-pull kernel fusion. This example runs a compact
version of those ablations on two structurally opposite graphs - a skewed
social network (Orkut analogue) and a high-diameter road network (RoadCA
analogue) - and prints a side-by-side comparison, including the baseline
systems.

Run with:  python examples/ablation_study.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import BFS, SSSP
from repro.bench.harness import BenchmarkContext, make_algorithm
from repro.core.engine import EngineConfig
from repro.core.filters import FilterMode
from repro.core.fusion import FusionStrategy


def run_matrix(ctx: BenchmarkContext, abbrev: str, algorithm_name: str) -> None:
    print(f"\n=== {algorithm_name.upper()} on {abbrev} "
          f"({ctx.graph(abbrev).num_vertices} vertices, "
          f"{ctx.graph(abbrev).num_edges} edges) ===")

    configurations = {
        "SIMD-X (JIT + push-pull fusion)": EngineConfig(),
        "  ... ballot filter only": EngineConfig(filter_mode=FilterMode.BALLOT),
        "  ... online filter only": EngineConfig(filter_mode=FilterMode.ONLINE),
        "  ... batch filter (Gunrock-style)": EngineConfig(filter_mode=FilterMode.BATCH),
        "  ... no kernel fusion": EngineConfig(fusion=FusionStrategy.NONE),
        "  ... all-fusion": EngineConfig(fusion=FusionStrategy.ALL),
        "  ... atomic combine (no ACC)": EngineConfig(atomic_combine=True),
    }

    baseline = None
    for label, config in configurations.items():
        result = ctx.run("simdx", abbrev, algorithm_name, config=config)
        if result.failed:
            print(f"{label:40s}  FAILED ({result.failure_reason.split(':')[0]})")
            continue
        if baseline is None:
            baseline = result.elapsed_us
        relative = result.elapsed_us / baseline
        print(f"{label:40s}  {result.elapsed_ms:8.3f} ms   "
              f"({relative:4.2f}x of SIMD-X, {result.iterations} iterations, "
              f"{result.kernel_launches} launches)")

    for system in ("gunrock", "cusha", "galois", "ligra"):
        result = ctx.run(system, abbrev, algorithm_name)
        if result.failed:
            print(f"{result.system:40s}  FAILED ({result.failure_reason.split(':')[0]})")
        else:
            print(f"{result.system:40s}  {result.elapsed_ms:8.3f} ms   "
                  f"({result.elapsed_us / baseline:4.2f}x of SIMD-X)")


def main() -> None:
    ctx = BenchmarkContext(datasets=("OR", "RC"))
    for abbrev in ctx.datasets:
        for algorithm_name in ("bfs", "sssp"):
            run_matrix(ctx, abbrev, algorithm_name)

    print("\nNotes:")
    print(" * The online filter alone fails on the skewed social graph because")
    print("   its bounded per-thread bins overflow (the JIT controller exists")
    print("   precisely to fall back to the ballot filter at that point).")
    print(" * The ballot filter alone wastes a full metadata scan per iteration")
    print("   on the road network, where almost no vertex is active.")
    print(" * Disabling kernel fusion multiplies kernel launches by the")
    print("   iteration count; all-fusion halves occupancy via register pressure.")
    print(" * The atomic-combine variant prices Gunrock's update strategy inside")
    print("   the SIMD-X engine, isolating the benefit of the ACC model itself.")


if __name__ == "__main__":
    main()
