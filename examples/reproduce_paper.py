#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

This is the human-friendly driver around :mod:`repro.bench.experiments`
(the pytest benchmarks in ``benchmarks/`` wrap the same functions with shape
assertions). It prints each artifact in roughly the layout the paper uses.

Run with:      python examples/reproduce_paper.py
Quick subset:  python examples/reproduce_paper.py --datasets LJ,RC,TW --skip figure13
"""

from __future__ import annotations

import argparse
import time

from repro.bench import experiments, reporting
from repro.bench.harness import BenchmarkContext
from repro.graph.datasets import DATASET_ORDER

ARTIFACTS = [
    ("table3", "Table 3 - graph datasets",
     lambda ctx: reporting.render_table3(experiments.table3(ctx))),
    ("figure5", "Figure 5 - ACC combine vs atomic updates",
     lambda ctx: reporting.render_figure5(experiments.figure5(ctx))),
    ("figure8", "Figure 8 - filter activation patterns",
     lambda ctx: reporting.render_figure8(experiments.figure8(ctx))),
    ("figure9", "Figure 9 - JIT threshold sweep and overhead",
     lambda ctx: reporting.render_figure9(
         experiments.figure9a(ctx), experiments.figure9b(ctx))),
    ("table2", "Table 2 - registers and kernel launches",
     lambda ctx: reporting.render_table2(experiments.table2(ctx))),
    ("table4", "Table 4 - runtime vs CuSha/Gunrock/Galois/Ligra",
     lambda ctx: reporting.render_table4(experiments.table4(ctx))),
    ("figure12", "Figure 12 - JIT task management benefit",
     lambda ctx: reporting.render_figure12(experiments.figure12(ctx))),
    ("figure13", "Figure 13 - push-pull kernel fusion benefit",
     lambda ctx: reporting.render_figure13(experiments.figure13(ctx))),
    ("section7_3", "Section 7.3 - scaling across GPU generations",
     lambda ctx: reporting.render_section7_3(experiments.section7_3(ctx))),
    ("separators", "Section 4 - worklist separator sweep",
     lambda ctx: reporting.render_worklist_separators(
         experiments.worklist_separators(ctx))),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--datasets", default=",".join(DATASET_ORDER),
                        help="comma-separated dataset abbreviations")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset size multiplier")
    parser.add_argument("--device", default="K40", help="GPU model (K20/K40/P100)")
    parser.add_argument("--only", default="", help="run only these artifacts")
    parser.add_argument("--skip", default="", help="skip these artifacts")
    args = parser.parse_args()

    datasets = tuple(d.strip().upper() for d in args.datasets.split(",") if d.strip())
    ctx = BenchmarkContext(scale=args.scale, datasets=datasets, device=args.device)
    only = {a.strip() for a in args.only.split(",") if a.strip()}
    skip = {a.strip() for a in args.skip.split(",") if a.strip()}

    print(f"Reproducing SIMD-X experiments on datasets {datasets} "
          f"(scale={args.scale}, device={args.device})")

    for key, title, render in ARTIFACTS:
        if only and key not in only:
            continue
        if key in skip:
            continue
        start = time.time()
        print("\n" + "=" * 78)
        print(title)
        print("=" * 78)
        print(render(ctx))
        print(f"[{key} generated in {time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()
