#!/usr/bin/env python3
"""Quickstart: run a few ACC graph algorithms on SIMD-X.

This example builds a scaled-down LiveJournal-like social graph, runs BFS,
SSSP, PageRank and k-Core on the simulated K40 GPU, checks the results
against simple CPU oracles, and prints the per-run statistics SIMD-X exposes
(iterations, filter trace, direction trace, simulated kernel time).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import BFS, KCore, PageRank, SSSP
from repro.baselines import reference
from repro.core.engine import SIMDXEngine
from repro.gpu.device import GPUDevice, K40
from repro.graph.datasets import load_dataset


def main() -> None:
    # 1. Load a dataset analogue (Table 3's LiveJournal, scaled to laptop size).
    graph = load_dataset("LJ", scale=0.5)
    print(f"Graph: {graph}")
    print(f"  average degree = {graph.average_degree():.1f}, "
          f"max degree = {graph.max_degree()}")

    # 2. Create the engine: a simulated K40 with SIMD-X's default
    #    configuration (JIT task management + push-pull kernel fusion).
    engine = SIMDXEngine(graph, device=GPUDevice(K40))

    # 3. BFS from the highest-degree vertex.
    source = int(np.argmax(graph.out_degrees()))
    bfs = engine.run(BFS(source=source))
    expected_levels = reference.bfs_levels(graph, source)
    print(f"\nBFS from vertex {source}:")
    print(f"  iterations          = {bfs.iterations}")
    print(f"  simulated time      = {bfs.elapsed_ms:.3f} ms")
    print(f"  kernel launches     = {bfs.kernel_launches}")
    print(f"  filter per iteration= {bfs.filter_trace}")
    print(f"  direction trace     = {bfs.direction_trace}")
    print(f"  matches CPU oracle  = {np.array_equal(bfs.values, expected_levels)}")

    # 4. SSSP (weighted) from the same source.
    sssp = engine.run(SSSP(source=source))
    expected_dist = reference.sssp_distances(graph, source)
    reached = np.isfinite(sssp.values)
    print(f"\nSSSP from vertex {source}:")
    print(f"  iterations     = {sssp.iterations}")
    print(f"  simulated time = {sssp.elapsed_ms:.3f} ms")
    print(f"  reached        = {int(reached.sum())} / {graph.num_vertices} vertices")
    print(f"  matches oracle = {np.allclose(sssp.values[reached], expected_dist[reached])}")

    # 5. PageRank (delta-accumulative, pull then push).
    pagerank = engine.run(PageRank(tolerance=1e-5))
    top = np.argsort(pagerank.values)[::-1][:5]
    print(f"\nPageRank:")
    print(f"  iterations     = {pagerank.iterations}")
    print(f"  simulated time = {pagerank.elapsed_ms:.3f} ms")
    print(f"  top-5 vertices = {top.tolist()}")

    # 6. k-Core decomposition with the paper's default k = 16.
    kcore_algo = KCore(k=16)
    kcore = engine.run(kcore_algo)
    members = kcore_algo.core_membership(kcore.values)
    print(f"\nk-Core (k=16):")
    print(f"  iterations     = {kcore.iterations}")
    print(f"  simulated time = {kcore.elapsed_ms:.3f} ms")
    print(f"  core size      = {int(members.sum())} vertices")


if __name__ == "__main__":
    main()
