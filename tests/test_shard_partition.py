"""Property tests for the contiguous vertex-range shard partitioner.

:class:`repro.shard.partition.ShardPlan` underpins the sharded executor's
bit-identity argument: the ranges must exactly tile ``[0, N)`` (so every
vertex has exactly one owner), every out-edge must be classified local or
boundary exactly once (so the exchange accounting is conserved), and the
edge balance must stay within one max-degree row of perfect (the cut
search places boundaries between CSR rows, so one hub is the worst-case
overshoot). Degenerate shapes - empty graphs, more shards than vertices,
a single vertex - must produce valid (possibly empty) ranges rather than
corner-case crashes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.csr import CSRGraph
from repro.shard.partition import ShardPlan

#: Skewed and uniform shapes; rmat is the adversarial case for balance
#: (a few hub rows hold a large share of the edges).
GRAPHS = {
    "uniform": gen.random_uniform_graph(220, 1500, seed=3, name="uniform"),
    "rmat": gen.rmat_graph(9, 8, seed=5, name="rmat"),
    "road": gen.road_network_graph(16, 16, seed=7, name="road"),
}
SHARD_COUNTS = (1, 2, 3, 4, 7)


@pytest.mark.parametrize("name", sorted(GRAPHS))
@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
class TestPlanProperties:
    def test_ranges_tile_vertex_space(self, name, num_shards):
        graph = GRAPHS[name]
        plan = ShardPlan.build(graph, num_shards)
        assert plan.num_shards == num_shards
        assert plan.starts[0] == 0
        assert plan.stops[-1] == graph.num_vertices
        # Contiguous, non-overlapping, sorted: each shard starts where the
        # previous one stopped (empty ranges are allowed).
        assert np.array_equal(plan.starts[1:], plan.stops[:-1])
        assert (plan.stops >= plan.starts).all()
        assert plan.vertex_counts().sum() == graph.num_vertices

    def test_every_edge_classified_exactly_once(self, name, num_shards):
        graph = GRAPHS[name]
        plan = ShardPlan.build(graph, num_shards)
        assert plan.out_edge_counts.sum() == graph.num_edges
        assert (plan.local_edge_counts >= 0).all()
        assert (plan.boundary_edge_counts >= 0).all()
        assert np.array_equal(
            plan.local_edge_counts + plan.boundary_edge_counts,
            plan.out_edge_counts,
        )
        # Cross-check the vectorized classification against a brute-force
        # owner comparison per edge.
        owner = plan.owner_of(np.arange(graph.num_vertices))
        srcs = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64),
            graph.out_degrees(),
        )
        dsts = graph.out_csr.targets.astype(np.int64)
        local = np.bincount(
            owner[srcs][owner[srcs] == owner[dsts]], minlength=num_shards
        )
        assert np.array_equal(local, plan.local_edge_counts)

    def test_owner_lookup_matches_ranges(self, name, num_shards):
        graph = GRAPHS[name]
        plan = ShardPlan.build(graph, num_shards)
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        owner = plan.owner_of(vertices)
        for t in range(num_shards):
            members = vertices[owner == t]
            assert (members >= plan.starts[t]).all()
            assert (members < plan.stops[t]).all()

    def test_split_sorted_partitions_worklist(self, name, num_shards):
        graph = GRAPHS[name]
        plan = ShardPlan.build(graph, num_shards)
        rng = np.random.default_rng(13)
        worklist = np.unique(
            rng.integers(0, graph.num_vertices, size=graph.num_vertices // 2)
        )
        parts = plan.split_sorted(worklist)
        assert len(parts) == num_shards
        assert np.array_equal(np.concatenate(parts), worklist)
        for t, part in enumerate(parts):
            assert np.array_equal(plan.owner_of(part), np.full(part.size, t))

    def test_edge_balance_within_one_hub(self, name, num_shards):
        graph = GRAPHS[name]
        plan = ShardPlan.build(graph, num_shards)
        max_degree = int(graph.out_degrees().max())
        bound = graph.num_edges / num_shards + max_degree
        assert plan.out_edge_counts.max() <= bound, (
            f"{name}: worst shard holds {plan.out_edge_counts.max()} edges, "
            f"allowed {bound}"
        )

    def test_modeled_sizes_sum_to_graph_totals(self, name, num_shards):
        graph = GRAPHS[name]
        plan = ShardPlan.build(graph, num_shards)
        assert plan.modeled_vertices.sum() == graph.modeled_num_vertices
        assert plan.modeled_edges.sum() == graph.modeled_num_edges
        assert (plan.modeled_vertices >= 0).all()
        assert (plan.modeled_edges >= 0).all()


class TestDegenerateShapes:
    def test_empty_graph(self):
        graph = CSRGraph.empty(6, name="empty")
        plan = ShardPlan.build(graph, 4)
        assert plan.vertex_counts().sum() == 6
        assert plan.out_edge_counts.sum() == 0
        assert plan.modeled_edges.sum() == 0

    def test_more_shards_than_vertices(self):
        graph = gen.random_uniform_graph(3, 4, seed=1, name="tiny")
        plan = ShardPlan.build(graph, 8)
        assert plan.num_shards == 8
        assert plan.vertex_counts().sum() == 3
        assert plan.out_edge_counts.sum() == graph.num_edges
        # Every vertex still has exactly one owner.
        owner = plan.owner_of(np.arange(3))
        assert ((owner >= 0) & (owner < 8)).all()

    def test_single_vertex(self):
        graph = CSRGraph.empty(1, name="one")
        plan = ShardPlan.build(graph, 2)
        assert plan.vertex_counts().sum() == 1
        assert plan.out_edge_counts.sum() == 0

    def test_invalid_shard_count_rejected(self):
        graph = GRAPHS["uniform"]
        with pytest.raises(ValueError):
            ShardPlan.build(graph, 0)

    def test_modeled_sizes_follow_paper_annotation(self):
        # A paper-scale annotation distributes the modeled totals across
        # shards in proportion to the actual split, preserving the sum.
        graph = gen.rmat_graph(8, 8, seed=11, name="annotated")
        graph.meta["paper_vertices"] = 60_000_000
        graph.meta["paper_edges"] = 400_000_000
        plan = ShardPlan.build(graph, 4)
        assert plan.modeled_vertices.sum() == 60_000_000
        assert plan.modeled_edges.sum() == 400_000_000
