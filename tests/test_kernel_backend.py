"""Property and edge-case tests for the kernel-backend axis.

The differential fuzz harness crosses ``EngineConfig.kernel_backend`` with
the direction/batching/sharding matrix on random graphs; this module covers
what a random matrix can miss:

* primitive-level parity - every :mod:`repro.core.kernels` primitive on
  crafted inputs (empty worklists, zero-degree rows, 65-lane multi-word
  bitmasks, all three Combine operators);
* engine edge cases per backend - empty frontier, self-loop vertices,
  ``max_iterations=0``, forced per-iteration direction schedules;
* accounting parity - the *entire* ``RunResult.extra`` mapping must be
  equal across backends, with exact pins for the seed graphs of
  ``tests/test_extra_accounting.py`` (the new ``kernel_edges_walked``
  counter equals the pinned ``frontier_edges`` totals there).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP
from repro.core.acc import CombineOp
from repro.core.direction import Direction
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.frontier import BatchedFrontier
from repro.core.kernels import (
    BACKEND_NAMES,
    get_kernel_backend,
)
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph

NUMPY = get_kernel_backend("numpy")
PYTHON = get_kernel_backend("python")


@pytest.fixture(scope="module")
def rmat():
    return gen.rmat_graph(9, 8, seed=7, name="rmat9")


@pytest.fixture(scope="module")
def road():
    return gen.road_network_graph(24, 24, seed=11, name="road")


@pytest.fixture(scope="module")
def loop_graph():
    """Directed graph with a self-loop (2->2) and a zero-degree vertex (5)."""
    edges = [(0, 1), (1, 2), (2, 2), (2, 3), (3, 4), (4, 0)]
    return CSRGraph.from_edges(
        6, edges, directed=True, name="loops", weight_seed=3,
        allow_self_loops=True,
    )


def _assert_same_walk(a, b):
    slot_a, edge_a, total_a = a
    slot_b, edge_b, total_b = b
    assert total_a == total_b
    assert slot_a.dtype == slot_b.dtype == np.int64
    assert edge_a.dtype == edge_b.dtype == np.int64
    assert np.array_equal(slot_a, slot_b)
    assert np.array_equal(edge_a, edge_b)


# ----------------------------------------------------------------------
# Primitive-level parity
# ----------------------------------------------------------------------
class TestPrimitiveParity:
    def test_walk_edges_matches(self, rmat):
        rng = np.random.default_rng(11)
        csr = rmat.out_csr
        for size in (0, 1, 17, 200):
            worklist = np.sort(
                rng.choice(rmat.num_vertices, size=size, replace=False)
            ).astype(np.int64)
            _assert_same_walk(
                NUMPY.walk_edges(csr, worklist),
                PYTHON.walk_edges(csr, worklist),
            )

    def test_walk_edges_zero_degree_and_self_loop(self, loop_graph):
        csr = loop_graph.out_csr
        worklist = np.array([2, 5], dtype=np.int64)  # self-loop + isolated
        numpy_walk = NUMPY.walk_edges(csr, worklist)
        _assert_same_walk(numpy_walk, PYTHON.walk_edges(csr, worklist))
        slot, edge_idx, total = numpy_walk
        # Vertex 2 owns two out-edges (2->2, 2->3); vertex 5 owns none.
        assert total == 2
        assert np.array_equal(slot, [0, 0])
        assert np.array_equal(csr.targets[edge_idx], [2, 3])

    def test_walk_edges_empty_worklist(self, rmat):
        empty = np.zeros(0, dtype=np.int64)
        for backend in (NUMPY, PYTHON):
            slot, edge_idx, total = backend.walk_edges(rmat.out_csr, empty)
            assert total == 0
            assert slot.size == 0 and slot.dtype == np.int64
            assert edge_idx.size == 0 and edge_idx.dtype == np.int64

    def test_membership_and_rows(self):
        rng = np.random.default_rng(5)
        universe = np.unique(rng.integers(0, 500, size=120)).astype(np.int64)
        members = universe[:: 3]
        for vertices in (members, np.zeros(0, dtype=np.int64)):
            assert np.array_equal(
                NUMPY.membership_mask(vertices, 500),
                PYTHON.membership_mask(vertices, 500),
            )
        rows_np = NUMPY.rows_in_sorted(universe, members)
        rows_py = PYTHON.rows_in_sorted(universe, members)
        assert rows_np.dtype == rows_py.dtype == np.int64
        assert np.array_equal(rows_np, rows_py)
        assert np.array_equal(universe[rows_np], members)

    def test_sorted_unique_and_union(self):
        rng = np.random.default_rng(6)
        arrays = [
            rng.integers(0, 64, size=n).astype(np.int64)
            for n in (0, 1, 9, 40)
        ]
        for arr in arrays:
            assert np.array_equal(
                NUMPY.sorted_unique(arr), PYTHON.sorted_unique(arr)
            )
        union_np = NUMPY.union_sorted(arrays)
        union_py = PYTHON.union_sorted(arrays)
        assert union_np.dtype == union_py.dtype == np.int64
        assert np.array_equal(union_np, union_py)
        assert np.array_equal(
            NUMPY.union_sorted([np.zeros(0, dtype=np.int64)]),
            PYTHON.union_sorted([np.zeros(0, dtype=np.int64)]),
        )

    def test_lane_bits_65_lanes_multi_word(self):
        """K=65 forces two uint64 words; both backends build them equal."""
        rng = np.random.default_rng(7)
        lanes = [
            np.unique(rng.integers(0, 300, size=rng.integers(0, 12)))
            .astype(np.int64)
            for _ in range(65)
        ]
        vertices = NUMPY.union_sorted(lanes)
        bits_np = NUMPY.build_lane_bits(vertices, lanes, 65)
        bits_py = PYTHON.build_lane_bits(vertices, lanes, 65)
        assert bits_np.shape == bits_py.shape == (vertices.size, 2)
        assert np.array_equal(bits_np, bits_py)
        for lane in range(65):
            mask_np = NUMPY.lane_mask(bits_np, lane)
            mask_py = PYTHON.lane_mask(bits_np, lane)
            assert np.array_equal(mask_np, mask_py)
            assert np.array_equal(vertices[mask_np], lanes[lane])

    def test_batched_frontier_parity_and_sub_batch(self):
        rng = np.random.default_rng(8)
        lane_frontiers = [
            rng.integers(0, 100, size=rng.integers(0, 20)).astype(np.int64)
            for _ in range(65)
        ]
        via_np = BatchedFrontier.from_lanes(lane_frontiers, backend=NUMPY)
        via_py = BatchedFrontier.from_lanes(lane_frontiers, backend=PYTHON)
        assert np.array_equal(via_np.vertices, via_py.vertices)
        assert np.array_equal(via_np.lane_bits, via_py.lane_bits)
        for lane in (0, 31, 63, 64):
            assert np.array_equal(
                via_np.lane_mask(lane), via_py.lane_mask(lane)
            )
        sub_np = via_np.sub_batch([64, 3])
        sub_py = via_py.sub_batch([64, 3])
        assert np.array_equal(sub_np.vertices, sub_py.vertices)
        assert np.array_equal(sub_np.lane_bits, sub_py.lane_bits)
        assert sub_py.backend is PYTHON  # views keep their backend

    @pytest.mark.parametrize("op", list(CombineOp))
    def test_segment_reduce_parity(self, op):
        rng = np.random.default_rng(9)
        values = rng.normal(size=400)
        segment_ids = rng.integers(0, 37, size=400)
        plain = op.segment_reduce(values, segment_ids, 40)
        via_np = op.segment_reduce(values, segment_ids, 40, backend=NUMPY)
        via_py = op.segment_reduce(values, segment_ids, 40, backend=PYTHON)
        assert np.array_equal(plain, via_np)
        assert np.array_equal(plain, via_py)
        empty = op.segment_reduce(
            np.zeros(0), np.zeros(0, dtype=np.int64), 5, backend=PYTHON
        )
        assert np.array_equal(
            empty, np.full(5, op.identity, dtype=np.float64)
        )

    def test_sum_reduce_is_input_order_exact(self):
        """The SUM bit-identity argument: bincount == sequential += loop."""
        rng = np.random.default_rng(10)
        # Magnitudes spread over 12 orders so accumulation *order* matters.
        values = rng.normal(size=300) * 10.0 ** rng.integers(-6, 7, size=300)
        segment_ids = rng.integers(0, 3, size=300)
        assert np.array_equal(
            CombineOp.SUM.segment_reduce(values, segment_ids, 3),
            PYTHON.segment_reduce(CombineOp.SUM, values, segment_ids, 3),
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_kernel_backend("fortran")
        with pytest.raises(ValueError, match="kernel_backend"):
            EngineConfig(kernel_backend="fortran")
        assert set(BACKEND_NAMES) == {"python", "numpy"}


# ----------------------------------------------------------------------
# Engine edge cases, per backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKEND_NAMES)
class TestEngineEdgeCases:
    def test_empty_frontier_terminates(self, backend):
        """A source with no out-edges converges without walking anything."""
        graph = CSRGraph.from_edges(
            5, [(1, 2), (2, 3)], directed=True, name="iso", weight_seed=1
        )
        config = EngineConfig(kernel_backend=backend, sanitize=True)
        result = SIMDXEngine(graph, config=config).run(BFS(source=0))
        assert not result.failed
        assert result.values[0] == 0
        assert np.all(result.values[1:] == -1)
        assert result.extra["kernel_edges_walked"] == 0

    def test_self_loop_and_zero_degree(self, backend, loop_graph):
        config = EngineConfig(kernel_backend=backend, sanitize=True)
        result = SIMDXEngine(loop_graph, config=config).run(SSSP(source=0))
        assert not result.failed
        reference = SIMDXEngine(loop_graph).run(SSSP(source=0))
        assert np.array_equal(result.values, reference.values)
        assert np.isinf(result.values[5])  # isolated vertex unreached

    def test_max_iterations_zero(self, backend, rmat):
        source = int(np.argmax(rmat.out_degrees()))
        config = EngineConfig(kernel_backend=backend, max_iterations=0)
        result = SIMDXEngine(rmat, config=config).run(SSSP(source=source))
        assert not result.failed
        assert result.iterations == 0
        assert result.extra["kernel_edges_walked"] == 0

    def test_forced_direction_schedule(self, backend, rmat):
        source = int(np.argmax(rmat.out_degrees()))
        schedule = [
            Direction.PUSH, Direction.PULL, Direction.PULL, Direction.PUSH,
        ]
        config = EngineConfig(
            kernel_backend=backend, direction_auto=False,
            forced_direction_schedule=schedule, sanitize=True,
        )
        result = SIMDXEngine(rmat, config=config).run(SSSP(source=source))
        assert not result.failed
        reference = SIMDXEngine(rmat).run(SSSP(source=source))
        assert np.array_equal(result.values, reference.values)
        assert result.direction_trace[:4] == ["push", "pull", "pull", "push"]

    def test_k65_multi_word_batch(self, backend, rmat):
        """K=65 lanes exercise the two-word bitmask path end to end."""
        degrees = rmat.out_degrees()
        order = np.argsort(-degrees, kind="stable")
        sources = [int(v) for v in order[:65]]
        assert degrees[sources[-1]] > 0
        config = EngineConfig(kernel_backend=backend)
        batch = SIMDXEngine(rmat, config=config).run_batch(BFS(), sources)
        assert not batch.failed
        reference = SIMDXEngine(rmat).run_batch(BFS(), sources)
        assert np.array_equal(batch.values, reference.values)
        assert batch.extra["kernel_edges_walked"] == (
            reference.extra["kernel_edges_walked"]
        )


# ----------------------------------------------------------------------
# Accounting parity + exact pins (alongside tests/test_extra_accounting.py)
# ----------------------------------------------------------------------
def _comparable_extra(extra):
    """The extra mapping minus the backend-identity key itself."""
    return {k: v for k, v in extra.items() if k != "kernel_backend"}


class TestExtraParityPins:
    def test_single_run_extra_parity_and_pin(self, rmat):
        source = int(np.argmax(rmat.out_degrees()))
        results = {
            backend: SIMDXEngine(
                rmat, config=EngineConfig(kernel_backend=backend)
            ).run(SSSP(source=source))
            for backend in BACKEND_NAMES
        }
        for backend, result in results.items():
            assert result.extra["kernel_backend"] == backend
            # The pinned frontier_edges total of test_extra_accounting.
            assert result.extra["kernel_edges_walked"] == 15524
            assert result.extra["kernel_edges_walked"] == sum(
                r.frontier_edges for r in result.iteration_records
            )
        a, b = (results[backend] for backend in BACKEND_NAMES)
        assert _comparable_extra(a.extra) == _comparable_extra(b.extra)
        assert a.elapsed_us == b.elapsed_us  # simulated time is shared
        assert a.kernel_launches == b.kernel_launches
        assert a.direction_trace == b.direction_trace
        assert a.filter_trace == b.filter_trace

    def test_batch_extra_parity_and_pin(self, road):
        sources = [
            int(v) for v in np.argsort(-road.out_degrees(), kind="stable")[:8]
        ]
        results = {
            backend: SIMDXEngine(
                road, config=EngineConfig(kernel_backend=backend)
            ).run_batch(SSSP(), sources)
            for backend in BACKEND_NAMES
        }
        for backend, batch in results.items():
            assert batch.extra["kernel_backend"] == backend
            # kernel_edges_walked == union_edges_walked == the PR-4 pin.
            assert batch.extra["kernel_edges_walked"] == 49305
            assert batch.extra["kernel_edges_walked"] == (
                batch.extra["union_edges_walked"]
            )
        a, b = (results[backend] for backend in BACKEND_NAMES)
        assert _comparable_extra(a.extra) == _comparable_extra(b.extra)
        assert a.elapsed_us == b.elapsed_us
        assert a.lane_iterations == b.lane_iterations

    def test_sharded_extra_parity_and_pin(self, rmat):
        source = int(np.argmax(rmat.out_degrees()))
        results = {
            backend: SIMDXEngine(
                rmat,
                config=EngineConfig(kernel_backend=backend, num_shards=2),
            ).run(SSSP(source=source))
            for backend in BACKEND_NAMES
        }
        for backend, result in results.items():
            assert result.extra["kernel_backend"] == backend
            assert result.extra["shard_scanned_edges"] == [7722, 10431]
            assert result.extra["kernel_edges_walked"] == 7722 + 10431
        a, b = (results[backend] for backend in BACKEND_NAMES)
        assert _comparable_extra(a.extra) == _comparable_extra(b.extra)
        assert np.array_equal(a.values, b.values)
