"""Push/pull functional equivalence: the gather path must be bit-identical.

The engine promises that a pull (gather) iteration walks exactly the
frontier's out-edge set from the destination side, feeds ``compute`` the
same operands, and combines per destination in the same order as the push
(scatter) path - so forced-push, forced-pull and auto-direction runs return
bit-identical vertex values for every algorithm. These tests pin that
invariant, plus the trace fidelity that the recorded direction is the
expansion path that actually executed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS, SSSP
from repro.baselines import reference as ref
from repro.core.direction import Direction
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph

ALGORITHM_NAMES = ("bfs", "sssp", "pagerank", "wcc", "kcore", "spmv", "bp")


def _graphs():
    rng = np.random.default_rng(5)
    edges = np.stack(
        [rng.integers(0, 300, size=2400), rng.integers(0, 300, size=2400)],
        axis=1,
    )
    return {
        "rmat": gen.rmat_graph(9, 8, seed=7, name="rmat9"),
        "road": gen.road_network_graph(16, 16, seed=11, name="road"),
        "directed": CSRGraph.from_edges(300, edges, directed=True, name="directed"),
    }


GRAPHS = _graphs()


def _make(name: str, graph: CSRGraph):
    kwargs = {}
    if name in ("bfs", "sssp"):
        kwargs["source"] = int(np.argmax(graph.out_degrees()))
    if name == "kcore":
        kwargs["k"] = 8
    return ALGORITHMS[name](**kwargs)


def _run(graph, algorithm, **config_kwargs):
    result = SIMDXEngine(graph, config=EngineConfig(**config_kwargs)).run(algorithm)
    assert not result.failed, result.failure_reason
    return result


class TestBitIdenticalValues:
    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    @pytest.mark.parametrize("algorithm_name", ALGORITHM_NAMES)
    def test_forced_pull_matches_forced_push(self, graph_name, algorithm_name):
        graph = GRAPHS[graph_name]
        push = _run(
            graph, _make(algorithm_name, graph),
            direction_auto=False, forced_direction=Direction.PUSH,
        )
        pull = _run(
            graph, _make(algorithm_name, graph),
            direction_auto=False, forced_direction=Direction.PULL,
        )
        assert np.array_equal(push.values, pull.values)

    @pytest.mark.parametrize("graph_name", sorted(GRAPHS))
    @pytest.mark.parametrize("algorithm_name", ALGORITHM_NAMES)
    def test_auto_direction_matches_forced_runs(self, graph_name, algorithm_name):
        graph = GRAPHS[graph_name]
        auto = _run(graph, _make(algorithm_name, graph), direction_auto=True)
        for forced in (Direction.PUSH, Direction.PULL):
            forced_result = _run(
                graph, _make(algorithm_name, graph),
                direction_auto=False, forced_direction=forced,
            )
            assert np.array_equal(auto.values, forced_result.values)

    @pytest.mark.parametrize("delta", [8.0, 32.0])
    def test_delta_stepping_sssp_pull_equivalence(self, delta):
        graph = GRAPHS["rmat"]
        src = int(np.argmax(graph.out_degrees()))
        runs = {
            direction: _run(
                graph, SSSP(source=src, delta=delta),
                direction_auto=False, forced_direction=direction,
            )
            for direction in Direction
        }
        push_values = runs[Direction.PUSH].values
        assert np.array_equal(push_values, runs[Direction.PULL].values)
        expected = ref.sssp_distances(graph, src)
        both_inf = np.isinf(push_values) & np.isinf(expected)
        assert bool(np.all(both_inf | np.isclose(push_values, expected)))


class TestDirectionTraceFidelity:
    def test_forced_direction_is_what_ran(self):
        graph = GRAPHS["rmat"]
        for direction in Direction:
            result = _run(
                graph, _make("bfs", graph),
                direction_auto=False, forced_direction=direction,
            )
            assert set(result.direction_trace) == {direction.value}
            assert all(
                record.direction == direction.value
                for record in result.iteration_records
            )
            assert result.extra["direction_switches"] == 0

    def test_auto_bfs_runs_genuine_pull_phase(self):
        graph = GRAPHS["rmat"]
        result = _run(graph, _make("bfs", graph), direction_auto=True)
        assert "pull" in result.direction_trace
        assert result.direction_trace[0] == "push"

    def test_pull_iterations_size_worklists_by_in_degree(self):
        """On a directed graph, a pull iteration's edge total is an in-edge
        count of the gather worklist - it must match an in-degree sum, and
        (in general) differ from the frontier's out-edge count."""
        graph = GRAPHS["directed"]
        engine = SIMDXEngine(
            graph,
            config=EngineConfig(
                direction_auto=False, forced_direction=Direction.PULL
            ),
        )
        result = engine.run(_make("pagerank", graph))
        assert not result.failed
        in_total = int(graph.in_degrees().sum())
        first = result.iteration_records[0]
        # First iteration: every vertex is active and every vertex with
        # in-edges gathers, so the worklist covers all in-edges.
        assert first.frontier_edges == in_total
        assert engine.pull_classifier.direction is Direction.PULL
        assert np.array_equal(
            engine.pull_classifier.degrees_of(np.arange(graph.num_vertices)),
            graph.in_degrees(),
        )

    def test_pull_expansion_walks_in_csr(self):
        """The gather path really reads the transpose: it is built lazily
        only once a pull iteration runs."""
        graph = CSRGraph.from_edges(
            300,
            np.stack(
                [
                    np.random.default_rng(9).integers(0, 300, size=2000),
                    np.random.default_rng(10).integers(0, 300, size=2000),
                ],
                axis=1,
            ),
            directed=True,
            name="lazy",
        )
        assert not graph.in_csr_built
        push = _run(
            graph, _make("bfs", graph),
            direction_auto=False, forced_direction=Direction.PUSH,
        )
        assert not graph.in_csr_built  # pure push never pays the transpose
        pull = _run(
            graph, _make("bfs", graph),
            direction_auto=False, forced_direction=Direction.PULL,
        )
        assert graph.in_csr_built
        assert np.array_equal(push.values, pull.values)
