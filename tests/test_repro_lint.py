"""Tests for the repro-lint AST pass (``repro.analysis.lint``).

Each rule gets a seeded-defect snippet that must be flagged plus a
well-formed twin that must not; suppression comments and the src-only
scoping are exercised; and the shipped tree itself must lint clean (the
same invariant the CI ``static-analysis`` job enforces via
``tools/repro_lint.py``).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint import (
    ACC_DESCRIBE,
    COUNTER_DECREMENT,
    EXTRA_KEY,
    FLOAT_EQ_CONVERGED,
    UNSEEDED_RNG,
    lint_paths,
    lint_source,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _rules(source: str, *, src_scope: bool = True) -> list:
    return [f.rule for f in lint_source(source, src_scope=src_scope)]


# ----------------------------------------------------------------------
# REPRO001: extra keys must come from the registry
# ----------------------------------------------------------------------
def test_unregistered_extra_subscript_flagged():
    assert _rules("value = result.extra['bogus_key']\n") == [EXTRA_KEY]


def test_unregistered_extra_get_flagged():
    assert _rules("value = result.extra.get('bogus_key', 0)\n") == [EXTRA_KEY]


def test_unregistered_extra_membership_flagged():
    assert _rules("ok = 'bogus_key' in result.extra\n") == [EXTRA_KEY]


def test_unregistered_extra_literal_dict_flagged():
    source = "result = RunResult(extra={'bogus_key': 1})\n"
    assert _rules(source) == [EXTRA_KEY]


def test_registered_extra_key_clean():
    source = (
        "value = result.extra['union_edges_walked']\n"
        "other = result.extra.get('fusion')\n"
        "ok = 'sanitizer' in result.extra\n"
    )
    assert _rules(source) == []


def test_non_extra_dict_access_not_flagged():
    assert _rules("value = config['bogus_key']\n") == []


# ----------------------------------------------------------------------
# REPRO002: no unseeded randomness in src/
# ----------------------------------------------------------------------
def test_legacy_numpy_random_flagged_in_src():
    source = "import numpy as np\nx = np.random.rand(4)\n"
    assert _rules(source) == [UNSEEDED_RNG]


def test_no_arg_default_rng_flagged_in_src():
    source = "import numpy as np\nrng = np.random.default_rng()\n"
    assert _rules(source) == [UNSEEDED_RNG]


def test_stdlib_random_import_flagged_in_src():
    assert _rules("import random\n") == [UNSEEDED_RNG]


def test_seeded_default_rng_clean():
    source = "import numpy as np\nrng = np.random.default_rng(42)\n"
    assert _rules(source) == []


def test_rng_rule_skipped_outside_src():
    source = "import numpy as np\nx = np.random.rand(4)\n"
    assert _rules(source, src_scope=False) == []


# ----------------------------------------------------------------------
# REPRO003: counters only ever increase
# ----------------------------------------------------------------------
def test_counter_decrement_flagged():
    assert _rules("self.launch_count -= 1\n") == [COUNTER_DECREMENT]


def test_counter_increment_clean():
    assert _rules("self.launch_count += 1\n") == []


def test_non_counter_decrement_clean():
    assert _rules("self.budget -= 1\n") == []


# ----------------------------------------------------------------------
# REPRO004: no float equality inside converged()
# ----------------------------------------------------------------------
def test_float_eq_in_converged_flagged():
    source = (
        "class A:\n"
        "    def converged(self, curr, prev, iteration):\n"
        "        return curr == 0.0\n"
    )
    assert _rules(source) == [FLOAT_EQ_CONVERGED]


def test_metadata_param_eq_in_converged_flagged():
    source = (
        "class A:\n"
        "    def converged(self, curr, prev, iteration):\n"
        "        return bool(curr == prev)\n"
    )
    assert _rules(source) == [FLOAT_EQ_CONVERGED]


def test_tolerance_compare_in_converged_clean():
    source = (
        "class A:\n"
        "    def converged(self, curr, prev, iteration):\n"
        "        return abs(curr - prev).max() < 1e-6\n"
    )
    assert _rules(source) == []


def test_float_eq_outside_converged_clean():
    source = "def check(x):\n    return x == 0.0\n"
    assert _rules(source) == []


# ----------------------------------------------------------------------
# REPRO005: ACC subclasses must implement describe()
# ----------------------------------------------------------------------
def test_acc_subclass_without_describe_flagged():
    source = (
        "from repro.core.acc import ACCAlgorithm\n"
        "class MyAlgo(ACCAlgorithm):\n"
        "    name = 'mine'\n"
    )
    assert _rules(source) == [ACC_DESCRIBE]


def test_acc_subclass_with_describe_clean():
    source = (
        "from repro.core.acc import ACCAlgorithm\n"
        "class MyAlgo(ACCAlgorithm):\n"
        "    def describe(self):\n"
        "        return {}\n"
    )
    assert _rules(source) == []


def test_describe_rule_skipped_outside_src():
    source = (
        "from repro.core.acc import ACCAlgorithm\n"
        "class TestFixtureAlgo(ACCAlgorithm):\n"
        "    pass\n"
    )
    assert _rules(source, src_scope=False) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_line_suppression():
    source = "x = result.extra['bogus_key']  # repro-lint: disable=REPRO001\n"
    assert _rules(source) == []


def test_file_suppression():
    source = (
        "# repro-lint: disable-file=REPRO001\n"
        "x = result.extra['bogus_key']\n"
        "y = result.extra['another_bogus']\n"
    )
    assert _rules(source) == []


def test_suppression_is_rule_specific():
    source = "x = result.extra['bogus_key']  # repro-lint: disable=REPRO002\n"
    assert _rules(source) == [EXTRA_KEY]


def test_syntax_error_reported_not_raised():
    findings = lint_source("def broken(:\n")
    assert [f.rule for f in findings] == ["SYNTAX"]


def test_finding_str_contains_location_and_rule():
    (finding,) = lint_source("x = result.extra['bogus_key']\n", path="demo.py")
    rendered = str(finding)
    assert rendered.startswith("demo.py:1:")
    assert "REPRO001" in rendered
    assert "extra-key" in rendered


# ----------------------------------------------------------------------
# The shipped tree lints clean (same gate as CI)
# ----------------------------------------------------------------------
def test_shipped_tree_lints_clean():
    paths = [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    findings = lint_paths(paths)
    assert findings == [], "\n".join(str(f) for f in findings)
