"""Engine-reuse regression: call N on one engine == call 1 on a fresh one.

The serving layer (``src/repro/serve/``) answers every dispatched batch
with **one** long-lived :class:`SIMDXEngine`, so any state leaking from
one ``run``/``run_batch`` into the next silently corrupts served answers.
``SIMDXEngine._begin_run`` documents the contract: the only state an
engine may carry across calls is graph-derived and source-independent
(the pull classifier, cached in-degrees, the in-CSR transpose); profiler
counters, device memory accounting and the fusion plan reset per call.

These tests pin that contract the strong way: a mixed sequence of
``run`` and ``run_batch`` calls on one engine must produce results
bit-identical - values, traces and counters alike - to running each call
on a brand-new engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.gpu.device import GPUDevice, K40
from repro.graph import generators as gen

#: Result fields that must be bit-identical between a reused engine and a
#: fresh one. ``values``/``metadata`` are compared with array equality;
#: everything else with ``==``.
COMPARED_FIELDS = (
    "values",
    "iterations",
    "elapsed_us",
    "kernel_launches",
    "filter_trace",
    "direction_trace",
    "failed",
    "extra",
)


@pytest.fixture
def graph():
    return gen.rmat_graph(9, 8, seed=7, name="rmat9")


def fresh_engine(graph) -> SIMDXEngine:
    return SIMDXEngine(graph, device=GPUDevice(K40), config=EngineConfig())


def call_sequence(graph):
    """A mixed run/run_batch workload: what a serving engine sees."""
    hubs = np.argsort(-graph.out_degrees(), kind="stable")
    batch = [int(v) for v in hubs[:4]]
    return [
        ("run", BFS, dict(source=3), {}),
        ("run_batch", SSSP, dict(source=batch[0]), {"sources": batch}),
        ("run", SSSP, dict(source=3, delta=2.0), {}),
        ("run_batch", BFS, dict(source=batch[0]), {"sources": batch}),
        # Same query as call 1: the reused engine must reproduce its own
        # first answer exactly, after batches ran in between.
        ("run", BFS, dict(source=3), {}),
        (
            "run_batch",
            SSSP,
            dict(source=batch[0]),
            {
                "sources": batch,
                "lane_params": [{"delta": float(1 + k)} for k in range(4)],
            },
        ),
    ]


def execute(engine, call):
    kind, cls, init_kwargs, run_kwargs = call
    if kind == "run":
        return engine.run(cls(**init_kwargs))
    sources = run_kwargs["sources"]
    return engine.run_batch(
        cls(**init_kwargs),
        sources,
        lane_params=run_kwargs.get("lane_params"),
    )


def assert_results_identical(reused, fresh, label):
    for name in COMPARED_FIELDS:
        got, want = getattr(reused, name), getattr(fresh, name)
        if isinstance(want, np.ndarray) or isinstance(got, np.ndarray):
            assert np.array_equal(got, want), f"{label}: {name} diverged"
        else:
            assert got == want, (
                f"{label}: {name} diverged (reused={got!r}, fresh={want!r})"
            )
    if hasattr(fresh, "lane_iterations"):
        assert reused.lane_iterations == fresh.lane_iterations, (
            f"{label}: lane_iterations diverged"
        )
        assert np.array_equal(reused.metadata, fresh.metadata), (
            f"{label}: metadata diverged"
        )


def test_reused_engine_matches_fresh_engine_per_call(graph):
    """Call N on one engine is bit-identical to a fresh-engine call."""
    reused = fresh_engine(graph)
    for index, call in enumerate(call_sequence(graph)):
        got = execute(reused, call)
        want = execute(fresh_engine(graph), call)
        assert not want.failed
        assert_results_identical(got, want, f"call {index} ({call[0]})")


def test_repeated_identical_run_is_stable(graph):
    """The same query twice on one engine returns the same everything."""
    engine = fresh_engine(graph)
    first = engine.run(BFS(source=5))
    second = engine.run(BFS(source=5))
    assert_results_identical(second, first, "repeat run")


def test_repeated_identical_run_batch_is_stable(graph):
    engine = fresh_engine(graph)
    sources = [3, 5, 9, 11]
    first = engine.run_batch(BFS(source=3), sources)
    second = engine.run_batch(BFS(source=3), sources)
    assert_results_identical(second, first, "repeat run_batch")


def test_profiler_counters_reset_between_calls(graph):
    """Cross-run counters restart at zero: no accumulation across calls.

    ``kernel_launches`` and the ``kernel_edges_walked`` extra are summed
    by the profiler during a run; if ``_begin_run`` ever stopped
    resetting them, call 2 would report call 1's work on top of its own.
    """
    engine = fresh_engine(graph)
    first = engine.run(BFS(source=3))
    second = engine.run(BFS(source=3))
    assert second.kernel_launches == first.kernel_launches
    assert (
        second.extra["kernel_edges_walked"]
        == first.extra["kernel_edges_walked"]
    )
