"""Batched multi-source execution equals K independent runs, bit for bit.

``SIMDXEngine.run_batch`` answers K queries through one union-frontier CSR
walk per iteration (docs/batching.md); these tests pin its contract:

* per-lane values and metadata are bit-identical to the K single-source
  runs, for BFS and SSSP, under auto, forced-push and forced-pull
  direction selection;
* lanes evolve in lockstep with their independent runs (per-lane iteration
  counts match), including a lane that finishes early and K=1 - for
  delta-stepping SSSP, whose single-run trajectory is itself
  filter-dependent, only value equality is guaranteed and asserted;
* each iteration walks the CSR exactly once, over the union worklist -
  the amortization the batching exists for;
* the :class:`~repro.core.frontier.BatchedFrontier` lane bitmask
  round-trips per-lane frontiers through the union representation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, PageRank
from repro.core.direction import Direction
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.frontier import BatchedFrontier
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph

CONFIGS = {
    "auto": EngineConfig(),
    "forced_push": EngineConfig(
        direction_auto=False, forced_direction=Direction.PUSH
    ),
    "forced_pull": EngineConfig(
        direction_auto=False, forced_direction=Direction.PULL
    ),
}


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return gen.rmat_graph(9, 8, seed=7, name="rmat9")


@pytest.fixture(scope="module")
def sources(graph) -> list:
    degrees = graph.out_degrees()
    return [int(v) for v in np.argsort(degrees, kind="stable")[::-1][:16]]


def _single_runs(graph, algorithm_cls, sources, config):
    results = []
    for source in sources:
        engine = SIMDXEngine(graph, config=config)
        results.append(engine.run(algorithm_cls(source=source)))
    return results


class TestBatchedFrontier:
    def test_union_and_bitmask_roundtrip(self):
        lanes = [
            np.array([3, 1, 7], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([7, 7, 2], dtype=np.int64),
        ]
        bf = BatchedFrontier.from_lanes(lanes)
        assert np.array_equal(bf.vertices, [1, 2, 3, 7])
        assert np.array_equal(bf.lane_vertices(0), [1, 3, 7])
        assert bf.lane_vertices(1).size == 0
        assert np.array_equal(bf.lane_vertices(2), [2, 7])
        assert np.array_equal(bf.lane_sizes(), [3, 0, 2])
        assert bf.total_memberships() == 5
        assert not bf.is_empty

    def test_many_lanes_cross_word_boundary(self):
        # 70 lanes forces a second uint64 bitmask word.
        lanes = [np.array([lane % 5], dtype=np.int64) for lane in range(70)]
        bf = BatchedFrontier.from_lanes(lanes)
        assert bf.lane_bits.shape == (5, 2)
        for lane in range(70):
            assert np.array_equal(bf.lane_vertices(lane), [lane % 5])
        assert bf.total_memberships() == 70

    def test_empty_everywhere(self):
        bf = BatchedFrontier.from_lanes([np.zeros(0, dtype=np.int64)] * 3)
        assert bf.is_empty
        assert bf.vertices.size == 0

    def test_k65_crosses_the_word_width(self):
        # One lane past the 64-bit word width: every bitmask operation -
        # membership, sizes, memberships, sub-batch remapping - must use
        # multi-word masks, not a single uint64.
        lanes = [np.array([lane % 7], dtype=np.int64) for lane in range(65)]
        bf = BatchedFrontier.from_lanes(lanes)
        assert bf.lane_bits.shape == (7, 2)
        for lane in range(65):
            assert np.array_equal(bf.lane_vertices(lane), [lane % 7])
        assert bf.total_memberships() == 65
        assert np.array_equal(
            bf.lane_sizes(), np.ones(65, dtype=np.int64)
        )
        # A sub-batch that mixes lanes from both words: lane 64 (word 1)
        # and lane 0 (word 0) repack into a single-word two-lane view.
        sub = bf.sub_batch([64, 0])
        assert sub.lane_bits.shape[1] == 1
        assert np.array_equal(sub.lane_vertices(0), [64 % 7])
        assert np.array_equal(sub.lane_vertices(1), [0])
        assert sub.lane_ids == (64, 0)

    def test_k65_run_batch_matches_singles(self):
        # End-to-end K=65: the engine's bitmask walk, the lane-aware
        # policy's per-lane selectors and the memory model all index past
        # the first mask word.
        graph = gen.rmat_graph(8, 8, seed=3, name="rmat8")
        degrees = graph.out_degrees()
        sources = [
            int(v) for v in np.argsort(-degrees, kind="stable")[:65]
        ]
        batch = SIMDXEngine(graph).run_batch(BFS(), sources)
        assert not batch.failed, batch.failure_reason
        assert batch.num_lanes == 65
        for lane, source in enumerate(sources):
            single = SIMDXEngine(graph).run(BFS(source=source))
            assert np.array_equal(batch.values[lane], single.values), lane


class TestBitIdenticalEquivalence:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("algorithm_cls", [BFS, SSSP])
    def test_batch_matches_independent_runs(
        self, graph, sources, algorithm_cls, config_name
    ):
        config = CONFIGS[config_name]
        batch = SIMDXEngine(graph, config=config).run_batch(
            algorithm_cls(), sources
        )
        assert not batch.failed, batch.failure_reason
        assert batch.num_lanes == len(sources)
        singles = _single_runs(graph, algorithm_cls, sources, config)
        for lane, single in enumerate(singles):
            assert np.array_equal(batch.values[lane], single.values), (
                f"lane {lane} (source {sources[lane]}) diverged"
            )
            # Lanes evolve in lockstep with their independent runs.
            assert batch.lane_iterations[lane] == single.iterations
        assert batch.iterations == max(s.iterations for s in singles)

    def test_sssp_metadata_rows_are_bit_identical(self, graph, sources):
        # SSSP's vertex_value is the identity, so comparing the raw metadata
        # rows checks bit-level float equality of the accumulated sums.
        batch = SIMDXEngine(graph).run_batch(SSSP(), sources)
        for lane, source in enumerate(sources):
            single = SIMDXEngine(graph).run(SSSP(source=source))
            assert np.array_equal(batch.metadata[lane], single.values)

    def test_k_equals_one_matches_single_run(self, graph, sources):
        source = sources[0]
        batch = SIMDXEngine(graph).run_batch(BFS(), [source])
        single = SIMDXEngine(graph).run(BFS(source=source))
        assert np.array_equal(batch.values[0], single.values)
        assert batch.iterations == single.iterations
        # With one lane there is no lane-axis work beyond the union pass:
        # every (edge, lane) pair is one of the union's active edges (in
        # pull iterations the walk additionally scans non-frontier
        # in-edges, which produce no pairs).
        assert batch.extra["lane_edge_pairs"] == sum(
            r.active_edges for r in batch.iteration_records
        )

    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_delta_stepping_sssp_values_identical(
        self, graph, sources, config_name
    ):
        # Exercises the stateful per-lane hooks (pending set, bucket
        # advance, convergence re-seed) through per-lane algorithm copies.
        # Delta-stepping guarantees bit-identical *values*, not iteration
        # counts: even a single run's trajectory depends on which filter
        # the JIT picks (the ballot worklist re-admits vertices pending
        # from earlier buckets, the online worklist does not), so a batch
        # making one union filter decision may converge in a different
        # number of iterations (see BatchRunResult's docstring).
        config = CONFIGS[config_name]
        few = sources[:4]
        batch = SIMDXEngine(graph, config=config).run_batch(
            SSSP(delta=10.0), few
        )
        assert not batch.failed
        for lane, source in enumerate(few):
            single = SIMDXEngine(graph, config=config).run(
                SSSP(source=source, delta=10.0)
            )
            assert np.array_equal(batch.values[lane], single.values)


class TestEarlyFinishingLane:
    def _two_component_graph(self) -> CSRGraph:
        # A 12-vertex chain (long query) and a separate 2-vertex component
        # (the lane that finishes after its first expansions).
        edges = [(i, i + 1) for i in range(11)]
        edges.append((20, 21))
        return CSRGraph.from_edges(
            22, np.asarray(edges, dtype=np.int64), directed=True, name="chain+pair"
        )

    def test_early_lane_freezes_and_stays_identical(self):
        graph = self._two_component_graph()
        sources = [0, 20]
        batch = SIMDXEngine(graph).run_batch(BFS(), sources)
        chain = SIMDXEngine(graph).run(BFS(source=0))
        pair = SIMDXEngine(graph).run(BFS(source=20))
        assert np.array_equal(batch.values[0], chain.values)
        assert np.array_equal(batch.values[1], pair.values)
        assert batch.lane_iterations[0] == chain.iterations
        assert batch.lane_iterations[1] == pair.iterations
        assert batch.lane_iterations[1] < batch.lane_iterations[0]
        assert batch.iterations == chain.iterations


class TestUnionWalkAmortization:
    def test_one_csr_walk_per_iteration_over_the_union(
        self, graph, sources, monkeypatch
    ):
        calls = []
        original = SIMDXEngine._walk_edges

        def counting_walk(csr, worklist):
            result = original(csr, worklist)
            calls.append(result[2])
            return result

        monkeypatch.setattr(
            SIMDXEngine, "_walk_edges", staticmethod(counting_walk)
        )
        config = CONFIGS["forced_push"]
        batch = SIMDXEngine(graph, config=config).run_batch(BFS(), sources)
        # Exactly one CSR walk per iteration, each over the union worklist.
        assert len(calls) == batch.iterations
        assert sum(calls) == batch.extra["union_edges_walked"]
        # The union walk is the amortization: K overlapping frontiers
        # produce far more (edge, lane) pairs than union edges.
        assert batch.extra["lane_edge_pairs"] > batch.extra["union_edges_walked"]

    def test_union_walk_cheaper_than_serial_walks(self, graph, sources):
        config = CONFIGS["forced_push"]
        batch = SIMDXEngine(graph, config=config).run_batch(BFS(), sources)
        serial_edges = 0
        for source in sources:
            single = SIMDXEngine(graph, config=config).run(BFS(source=source))
            serial_edges += sum(
                r.frontier_edges for r in single.iteration_records
            )
        # The pairs the batch evaluates are exactly the edges the serial
        # loop would walk; the batch walks only the union of them.
        assert batch.extra["lane_edge_pairs"] == serial_edges
        assert batch.extra["union_edges_walked"] < serial_edges


class TestBatchAPI:
    def test_rejects_algorithms_without_multi_source(self, graph):
        with pytest.raises(ValueError, match="multi-source"):
            SIMDXEngine(graph).run_batch(PageRank(), [0, 1])

    def test_rejects_empty_source_list(self, graph):
        with pytest.raises(ValueError, match="at least one source"):
            SIMDXEngine(graph).run_batch(BFS(), [])

    def test_atomic_combine_ablation_is_priced(self, graph, sources):
        # The Figure-5 ablation must affect batched runs too: identical
        # values, higher simulated cost under atomic pricing.
        acc = SIMDXEngine(graph).run_batch(BFS(), sources)
        atomic = SIMDXEngine(
            graph, config=EngineConfig(atomic_combine=True)
        ).run_batch(BFS(), sources)
        assert np.array_equal(acc.values, atomic.values)
        assert atomic.elapsed_us > acc.elapsed_us

    def test_queries_per_second_reported(self, graph, sources):
        batch = SIMDXEngine(graph).run_batch(BFS(), sources)
        assert batch.queries_per_second > 0
        assert batch.elapsed_ms > 0
        assert len(batch.filter_trace) == batch.iterations
        assert len(batch.direction_trace) == batch.iterations
        for record in batch.iteration_records:
            assert record.active_lanes >= 1
            assert record.lane_edge_pairs >= record.active_edges
