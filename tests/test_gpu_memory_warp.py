"""Tests for the memory-traffic helpers, warp primitives, atomics profiling
and device-wide primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import memory as gmem
from repro.gpu import warp
from repro.gpu.atomics import combined_profile, profile_atomic_updates
from repro.gpu.primitives import compact_flags, concatenate_bins, exclusive_scan, fill


class TestMemoryHelpers:
    def test_sequential_bytes(self):
        assert gmem.sequential_bytes(100, 4) == 400.0
        with pytest.raises(ValueError):
            gmem.sequential_bytes(-1, 4)

    def test_scattered_accesses(self):
        assert gmem.scattered_accesses(17) == 17.0

    def test_adjacency_read_bytes_weighted_vs_not(self):
        assert gmem.adjacency_read_bytes(100, weighted=True) == 800.0
        assert gmem.adjacency_read_bytes(100, weighted=False) == 400.0

    def test_offset_read_sorted_vs_random(self):
        sorted_txn = gmem.offset_read_transactions(1000, sortedness=1.0)
        random_txn = gmem.offset_read_transactions(1000, sortedness=0.0)
        assert random_txn == 1000.0
        assert sorted_txn == pytest.approx(250.0)
        mid = gmem.offset_read_transactions(1000, sortedness=0.5)
        assert sorted_txn < mid < random_txn

    def test_metadata_scatter_locality_discount(self):
        assert gmem.metadata_scatter_transactions(100) == 100.0
        assert gmem.metadata_scatter_transactions(100, locality=0.5) == 50.0

    def test_metadata_scan_reads_both_arrays(self):
        assert gmem.metadata_scan_bytes(1000) == 8000.0

    def test_worklist_sortedness(self):
        assert gmem.worklist_sortedness(np.array([1, 2, 3, 4])) == 1.0
        assert gmem.worklist_sortedness(np.array([4, 3, 2, 1])) == 0.0
        assert gmem.worklist_sortedness(np.array([], dtype=np.int64)) == 1.0
        assert 0.0 < gmem.worklist_sortedness(np.array([1, 3, 2, 4])) < 1.0

    def test_redundancy_factor(self):
        assert gmem.redundancy_factor(np.array([1, 2, 3])) == 1.0
        assert gmem.redundancy_factor(np.array([1, 1, 2, 2])) == 2.0
        assert gmem.redundancy_factor(np.array([], dtype=np.int64)) == 1.0

    def test_frontier_expansion_traffic_components(self):
        t = gmem.frontier_expansion_traffic(10, 100, sortedness=1.0, weighted=True)
        assert t.coalesced_bytes == pytest.approx(10 * 4 + 100 * 8)
        assert t.scattered_transactions > 0
        unsorted = gmem.frontier_expansion_traffic(10, 100, sortedness=0.0)
        assert unsorted.scattered_transactions > t.scattered_transactions

    def test_pull_expansion_traffic(self):
        t = gmem.pull_expansion_traffic(10, 100)
        assert t.coalesced_bytes > 0
        assert t.scattered_transactions == 100.0

    def test_traffic_addition(self):
        a = gmem.FrontierTraffic(10.0, 5.0)
        b = gmem.FrontierTraffic(1.0, 2.0)
        c = a + b
        assert c.coalesced_bytes == 11.0 and c.scattered_transactions == 7.0


class TestWarpPrimitives:
    def test_num_warps(self):
        assert warp.num_warps(0) == 0
        assert warp.num_warps(1) == 1
        assert warp.num_warps(32) == 1
        assert warp.num_warps(33) == 2

    def test_ballot_bitmask(self):
        assert warp.ballot([True, False, True]) == 0b101
        assert warp.ballot([False] * 32) == 0
        assert warp.ballot([True] * 32) == (1 << 32) - 1

    def test_ballot_rejects_oversized_warp(self):
        with pytest.raises(ValueError):
            warp.ballot([True] * 33)

    def test_ballot_array_matches_scalar_ballot(self):
        rng = np.random.default_rng(3)
        flags = rng.random(100) < 0.3
        masks = warp.ballot_array(flags)
        assert masks.shape[0] == warp.num_warps(100)
        for w in range(masks.shape[0]):
            chunk = flags[w * 32:(w + 1) * 32]
            assert int(masks[w]) == warp.ballot(chunk)

    def test_popcount_matches_flag_count(self):
        rng = np.random.default_rng(4)
        flags = rng.random(256) < 0.5
        masks = warp.ballot_array(flags)
        assert int(warp.popcount(masks).sum()) == int(flags.sum())

    def test_warp_reduce(self):
        assert warp.warp_reduce(np.array([3.0, 1.0, 2.0]), np.min) == 1.0
        assert warp.warp_reduce(np.array([3.0, 1.0, 2.0]), np.sum) == 6.0
        with pytest.raises(ValueError):
            warp.warp_reduce(np.array([]), np.min)
        with pytest.raises(ValueError):
            warp.warp_reduce(np.zeros(40), np.min)

    def test_reduction_primitive_ops_scaling(self):
        assert warp.reduction_primitive_ops(0) == 0.0
        assert warp.reduction_primitive_ops(32) == 5.0
        assert warp.reduction_primitive_ops(64) > warp.reduction_primitive_ops(32)

    def test_divergence_uniform_work_is_zero(self):
        assert warp.divergence_fraction(np.full(64, 7.0)) == 0.0

    def test_divergence_single_busy_lane_high(self):
        work = np.zeros(32)
        work[0] = 100
        assert warp.divergence_fraction(work) > 0.9

    def test_divergence_empty_input(self):
        assert warp.divergence_fraction(np.array([])) == 0.0

    def test_divergence_skewed_greater_than_uniform(self):
        rng = np.random.default_rng(5)
        uniform = rng.integers(10, 12, size=256)
        skewed = rng.pareto(1.2, size=256) * 10
        assert warp.divergence_fraction(skewed) > warp.divergence_fraction(uniform)

    def test_warp_combine_matches_numpy_reduction(self):
        rng = np.random.default_rng(6)
        updates = rng.random(100)
        result = warp.warp_combine(updates, np.min)
        assert result.value == pytest.approx(updates.min())
        assert result.primitive_ops > 0
        result_sum = warp.warp_combine(updates, np.sum)
        assert result_sum.value == pytest.approx(updates.sum())

    def test_warp_combine_requires_updates(self):
        with pytest.raises(ValueError):
            warp.warp_combine(np.array([]), np.min)


class TestAtomicsProfiling:
    def test_empty_profile(self):
        p = profile_atomic_updates(np.array([], dtype=np.int64))
        assert p.num_ops == 0 and p.contention == 1.0 and p.max_contention == 0

    def test_uniform_destinations_low_contention(self):
        p = profile_atomic_updates(np.arange(1000))
        assert p.num_ops == 1000
        assert p.contention == pytest.approx(1.0)
        assert p.max_contention == 1

    def test_hub_destination_high_contention(self):
        p = profile_atomic_updates(np.zeros(1000, dtype=np.int64))
        assert p.contention == pytest.approx(1000.0)
        assert p.max_contention == 1000

    def test_mixed_contention_between_extremes(self):
        dests = np.concatenate([np.zeros(100, dtype=np.int64), np.arange(1, 901)])
        p = profile_atomic_updates(dests)
        assert 1.0 < p.contention < 100.0

    def test_scaled(self):
        p = profile_atomic_updates(np.zeros(100, dtype=np.int64)).scaled(0.5)
        assert p.num_ops == 50
        assert p.max_contention == 100

    def test_scaled_rounds_to_nearest(self):
        p = profile_atomic_updates(np.zeros(101, dtype=np.int64)).scaled(0.99)
        assert p.num_ops == 100  # int() truncation would give 99

    def test_scaled_floors_nonempty_at_one_op(self):
        p = profile_atomic_updates(np.zeros(100, dtype=np.int64)).scaled(0.001)
        assert p.num_ops == 1

    def test_scaled_empty_and_zero_factor_stay_zero(self):
        empty = profile_atomic_updates(np.array([], dtype=np.int64)).scaled(0.5)
        assert empty.num_ops == 0
        zeroed = profile_atomic_updates(np.zeros(100, dtype=np.int64)).scaled(0.0)
        assert zeroed.num_ops == 0

    def test_combined_profile_weighted(self):
        a = profile_atomic_updates(np.zeros(100, dtype=np.int64))
        b = profile_atomic_updates(np.arange(100))
        combined = combined_profile([a, b])
        assert combined.num_ops == 200
        assert 1.0 < combined.contention < 100.0
        assert combined_profile([]).num_ops == 0


class TestDevicePrimitives:
    def test_exclusive_scan_values(self):
        result = exclusive_scan(np.array([3, 0, 2, 5]))
        assert np.array_equal(result.values, [0, 3, 3, 5, 10])
        assert result.work.compute_ops > 0

    def test_exclusive_scan_empty(self):
        result = exclusive_scan(np.array([], dtype=np.int64))
        assert np.array_equal(result.values, [0])

    def test_concatenate_bins_preserves_order_and_content(self):
        bins = [np.array([5, 1]), np.array([], dtype=np.int64), np.array([7])]
        result = concatenate_bins(bins)
        assert np.array_equal(result.values, [5, 1, 7])

    def test_compact_flags_sorted_indices(self):
        flags = np.array([False, True, True, False, True])
        result = compact_flags(flags)
        assert np.array_equal(result.values, [1, 2, 4])
        assert np.all(np.diff(result.values) > 0)

    def test_compact_flags_empty(self):
        result = compact_flags(np.zeros(10, dtype=bool))
        assert result.values.size == 0

    def test_fill_cost(self):
        work = fill(0.0, 1000)
        assert work.coalesced_bytes == 4000.0
        with pytest.raises(ValueError):
            fill(0.0, -1)
