"""Dynamic-graph overlay tests (``src/repro/dyn/overlay.py``).

Covers the delta-overlay contract from docs/dynamic.md:

* snapshot materialization is bit-identical to ``CSRGraph.from_edges``
  on the logically-current edge set (offsets, targets, weights);
* deletes-before-inserts batch semantics, including re-insert of a
  deleted edge and weight changes recorded as delete+insert receipts;
* undirected logical edges expand to both stored directions;
* ``rebuild()`` (and the automatic threshold rebuild) promotes the
  snapshot to a fresh base whose cached in-CSR transpose is invalidated
  (``in_csr_built`` is False on directed graphs until next use);
* receipts retention: ``receipts_since`` returns the exact chain or
  ``None`` once pruned past ``keep_receipts``;
* update validation (shape, range, self-loops) raises
  ``GraphFormatError`` without mutating the overlay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dyn import DynamicGraph, EdgeUpdateBatch
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph, GraphFormatError


@pytest.fixture
def graph():
    return gen.random_uniform_graph(120, 700, seed=31, name="dyn-base")


@pytest.fixture
def directed_graph():
    rng = np.random.default_rng(5)
    edges = rng.integers(0, 90, size=(500, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    weights = rng.uniform(0.5, 4.0, size=len(edges)).astype(np.float32)
    return CSRGraph.from_edges(
        90, edges, weights=weights, directed=True, name="dyn-directed"
    )


def assert_csr_equal(a: CSRGraph, b: CSRGraph):
    assert np.array_equal(a.out_csr.offsets, b.out_csr.offsets)
    assert np.array_equal(a.out_csr.targets, b.out_csr.targets)
    assert np.array_equal(a.out_csr.weights, b.out_csr.weights)


def rebuilt_from_scratch(dyn: DynamicGraph) -> CSRGraph:
    """The oracle: a cold ``from_edges`` build of the current edge set."""
    snap = dyn.snapshot()
    edges = snap.to_edge_array()
    weights = snap.out_csr.weights
    if not snap.directed:
        # to_edge_array returns stored (symmetrized) edges; from_edges
        # would symmetrize again, so feed it one direction only.
        keep = edges[:, 0] < edges[:, 1]
        edges, weights = edges[keep], weights[keep]
    return CSRGraph.from_edges(
        snap.num_vertices, edges, weights=weights, directed=snap.directed
    )


# ----------------------------------------------------------------------
# Snapshot equivalence
# ----------------------------------------------------------------------
def test_snapshot_of_clean_overlay_is_base(graph):
    dyn = DynamicGraph(graph)
    assert dyn.snapshot() is graph
    assert dyn.version == 0


def test_snapshot_matches_from_edges_after_updates(graph):
    dyn = DynamicGraph(graph)
    rng = np.random.default_rng(77)
    for _ in range(4):
        inserts = rng.integers(0, graph.num_vertices, size=(12, 2))
        inserts = inserts[inserts[:, 0] != inserts[:, 1]]
        weights = rng.uniform(0.5, 3.0, size=len(inserts))
        edges = dyn.snapshot().to_edge_array()
        picks = rng.choice(len(edges), size=6, replace=False)
        dyn.apply(EdgeUpdateBatch.of(
            inserts=inserts, insert_weights=weights, deletes=edges[picks]
        ))
    assert_csr_equal(dyn.snapshot(), rebuilt_from_scratch(dyn))


def test_snapshot_cached_until_next_apply(graph):
    dyn = DynamicGraph(graph)
    dyn.apply(EdgeUpdateBatch.of(inserts=[(1, 5)]))
    first = dyn.snapshot()
    assert dyn.snapshot() is first
    dyn.apply(EdgeUpdateBatch.of(inserts=[(2, 9)]))
    assert dyn.snapshot() is not first


def test_undirected_insert_expands_both_directions(graph):
    dyn = DynamicGraph(graph)
    receipt = dyn.apply(EdgeUpdateBatch.of(
        inserts=[(3, 117)], insert_weights=[2.5]
    ))
    stored = {tuple(e) for e in receipt.insert_edges}
    assert stored == {(3, 117), (117, 3)}
    snap = dyn.snapshot()
    row = snap.out_csr
    for src, dst in ((3, 117), (117, 3)):
        targets = row.targets[row.offsets[src]:row.offsets[src + 1]]
        assert dst in targets


def test_delete_then_reinsert_in_one_batch(graph):
    dyn = DynamicGraph(graph)
    edges = graph.to_edge_array()
    u, v = (int(edges[0, 0]), int(edges[0, 1]))
    receipt = dyn.apply(EdgeUpdateBatch.of(
        inserts=[(u, v)], insert_weights=[9.0], deletes=[(u, v)]
    ))
    # Deletes apply first, so the edge survives with the new weight.
    assert (u, v) in {tuple(e) for e in receipt.insert_edges}
    snap = dyn.snapshot()
    row = snap.out_csr
    span = slice(row.offsets[u], row.offsets[u + 1])
    weights = row.weights[span][row.targets[span] == v]
    assert weights.size == 1 and float(weights[0]) == 9.0


def test_weight_change_recorded_as_delete_plus_insert(graph):
    dyn = DynamicGraph(graph)
    edges = graph.to_edge_array()
    u, v = (int(edges[0, 0]), int(edges[0, 1]))
    old_w = float(graph.out_csr.weights[0])
    receipt = dyn.apply(EdgeUpdateBatch.of(
        inserts=[(u, v)], insert_weights=[old_w + 1.0]
    ))
    deleted = {tuple(e) for e in receipt.delete_edges}
    inserted = {tuple(e) for e in receipt.insert_edges}
    assert (u, v) in deleted and (u, v) in inserted


def test_noop_delete_counts_but_changes_nothing(graph):
    dyn = DynamicGraph(graph)
    before = dyn.snapshot()
    receipt = dyn.apply(EdgeUpdateBatch.of(deletes=[(0, 119)]))
    assert receipt.delete_edges.shape[0] == 0
    assert dyn.stats()["noop_deletes"] >= 1
    assert_csr_equal(dyn.snapshot(), before)


# ----------------------------------------------------------------------
# Rebuild and transpose invalidation
# ----------------------------------------------------------------------
def test_rebuild_invalidates_transpose_cache(directed_graph):
    # Build (and cache) the in-CSR transpose on the base.
    directed_graph.in_csr
    assert directed_graph.in_csr_built
    dyn = DynamicGraph(directed_graph)
    dyn.apply(EdgeUpdateBatch.of(inserts=[(0, 42), (42, 7)]))
    dyn.rebuild()
    promoted = dyn.snapshot()
    # The promoted base is a fresh directed CSR: the stale transpose was
    # dropped with the old object, not carried over.
    assert not promoted.in_csr_built
    # And rebuilding it on demand reflects the inserted edges.
    in_csr = promoted.in_csr
    sources = in_csr.targets[in_csr.offsets[42]:in_csr.offsets[43]]
    assert 0 in sources


def test_auto_rebuild_at_threshold(graph):
    # Undirected: each logical insert is 2 stored overlay entries.
    dyn = DynamicGraph(graph, rebuild_threshold=4)
    dyn.apply(EdgeUpdateBatch.of(inserts=[(0, 50)]))
    assert dyn.rebuilds == 0
    dyn.apply(EdgeUpdateBatch.of(inserts=[(1, 60)]))
    assert dyn.rebuilds == 1
    assert dyn.stats()["pending_edges"] == 0
    assert_csr_equal(dyn.snapshot(), rebuilt_from_scratch(dyn))


def test_rebuild_preserves_versions_and_receipts(graph):
    dyn = DynamicGraph(graph, keep_receipts=8)
    dyn.apply(EdgeUpdateBatch.of(inserts=[(0, 50)]))
    dyn.apply(EdgeUpdateBatch.of(inserts=[(1, 60)]))
    dyn.rebuild()
    assert dyn.version == 2
    chain = dyn.receipts_since(0)
    assert chain is not None and [r.version for r in chain] == [1, 2]


# ----------------------------------------------------------------------
# Receipt retention
# ----------------------------------------------------------------------
def test_receipts_since_returns_exact_chain(graph):
    dyn = DynamicGraph(graph)
    for i in range(5):
        dyn.apply(EdgeUpdateBatch.of(inserts=[(i, i + 40)]))
    chain = dyn.receipts_since(2)
    assert [r.version for r in chain] == [3, 4, 5]
    assert dyn.receipts_since(5) == []


def test_receipts_since_none_once_pruned(graph):
    dyn = DynamicGraph(graph, keep_receipts=2)
    for i in range(5):
        dyn.apply(EdgeUpdateBatch.of(inserts=[(i, i + 40)]))
    assert dyn.receipts_since(0) is None
    assert [r.version for r in dyn.receipts_since(3)] == [4, 5]


def test_receipt_old_and_new_graphs_are_consistent(graph):
    dyn = DynamicGraph(graph)
    old_snap = dyn.snapshot()
    receipt = dyn.apply(EdgeUpdateBatch.of(inserts=[(2, 90)]))
    assert receipt.old_graph is old_snap
    assert receipt.new_graph is dyn.snapshot()
    assert receipt.new_graph.num_edges == old_snap.num_edges + 2


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [
    {"inserts": [(0, 0)]},                       # self-loop
    {"deletes": [(0, 0)]},
    {"inserts": [(0, 120)]},                     # out of range
    {"deletes": [(-1, 3)]},
    {"inserts": [(0, 1)], "insert_weights": [1.0, 2.0]},  # shape mismatch
])
def test_invalid_updates_raise_and_do_not_mutate(graph, bad):
    dyn = DynamicGraph(graph)
    with pytest.raises(GraphFormatError):
        dyn.apply(EdgeUpdateBatch.of(**bad))
    assert dyn.version == 0
    assert dyn.stats()["pending_edges"] == 0


def test_empty_batch_is_a_versioned_noop(graph):
    # An empty batch is legal: version bumps, receipt records nothing,
    # the snapshot object is unchanged (overlay still clean -> base).
    dyn = DynamicGraph(graph)
    receipt = dyn.apply(EdgeUpdateBatch.of())
    assert dyn.version == 1
    assert receipt.insert_edges.shape[0] == 0
    assert receipt.delete_edges.shape[0] == 0
    assert dyn.snapshot() is graph
