"""Regression pins for ``RunResult.extra`` / ``BatchRunResult.extra``.

The cost-accounting surface - scanned-edge counts, the pre-armed-ballot
iteration list, the executed-direction trace - is what the benchmarks, the
EXPERIMENTS.md baseline and the docs tables are built from. The split/merge
refactor of the batched loop (lane-aware direction selection) must not
silently change it, so this module pins exact values for fixed seed graphs:
any intentional accounting change has to update these numbers explicitly.

The pinned values were produced by the engine at the commit that introduced
lane-aware splitting; they are deterministic (seeded generators, no
randomness in the engine).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import SSSP
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.graph import generators as gen


@pytest.fixture(scope="module")
def rmat():
    return gen.rmat_graph(9, 8, seed=7, name="rmat9")


@pytest.fixture(scope="module")
def road():
    return gen.road_network_graph(24, 24, seed=11, name="road")


class TestSingleRunAccounting:
    def test_sssp_rmat9_trace_and_edge_counts(self, rmat):
        source = int(np.argmax(rmat.out_degrees()))
        result = SIMDXEngine(rmat).run(SSSP(source=source))
        assert result.iterations == 7
        assert result.direction_trace == [
            "push", "pull", "pull", "pull", "pull", "pull", "push",
        ]
        assert result.filter_trace == [
            "ballot", "online", "online", "online", "online", "online",
            "online",
        ]
        assert result.extra["direction_switches"] == 2
        assert result.extra["jit_pre_armed_iterations"] == []
        assert result.extra["kernel_backend"] == "numpy"  # the default
        assert result.extra["kernel_edges_walked"] == 15524
        assert sum(r.frontier_edges for r in result.iteration_records) == 15524
        assert sum(r.active_edges for r in result.iteration_records) == 8037

    def test_sssp_rmat9_pre_arm_fires_at_low_threshold(self, rmat):
        # With a 4-entry overflow threshold the pull phase hands back a
        # frontier whose scaled hub bound exceeds the bins, so the final
        # push iteration starts directly in ballot mode.
        source = int(np.argmax(rmat.out_degrees()))
        config = EngineConfig(overflow_threshold=4)
        result = SIMDXEngine(rmat, config=config).run(SSSP(source=source))
        assert result.extra["jit_pre_armed_iterations"] == [7]
        assert result.filter_trace[-1] == "ballot"
        assert result.direction_trace[-1] == "push"


class TestBatchRunAccounting:
    SOURCES = [42, 80, 81, 82, 83, 104, 106, 118]  # top-degree road hubs

    @pytest.fixture(scope="class")
    def batch(self, road):
        sources = [
            int(v) for v in np.argsort(-road.out_degrees(), kind="stable")[:8]
        ]
        assert sources == self.SOURCES  # the seed graph itself is pinned
        return SIMDXEngine(road).run_batch(SSSP(), sources)

    def test_scanned_edge_accounting(self, batch):
        assert not batch.failed
        assert batch.iterations == 40
        assert batch.extra["union_edges_walked"] == 49305
        assert batch.extra["lane_edge_pairs"] == 51960
        assert batch.extra["pull_edges_scanned"] == 48263
        # The backend counter counts the same union walks.
        assert batch.extra["kernel_backend"] == "numpy"
        assert batch.extra["kernel_edges_walked"] == 49305
        # The per-record sums are the extras' ground truth.
        assert batch.extra["union_edges_walked"] == sum(
            r.frontier_edges for r in batch.iteration_records
        )
        assert batch.extra["pull_edges_scanned"] == sum(
            r.frontier_edges for r in batch.iteration_records
            if r.direction == "pull"
        )

    def test_split_accounting_and_direction_trace(self, batch):
        assert batch.extra["split_iterations"] == [5]
        assert batch.extra["lane_splits"] == 1
        assert batch.extra["jit_pre_armed_iterations"] == []
        # The executed-direction trace: pushes, one split iteration
        # (push-leaning group first), a long gather phase, pushes out.
        assert batch.direction_trace[:5] == [
            "push", "push", "push", "push", "push+pull",
        ]
        assert batch.direction_trace[-3:] == ["push", "push", "push"]
        assert batch.direction_trace.count("push+pull") == 1
        # The split iteration owns two records; every other iteration one.
        assert len(batch.iteration_records) == batch.iterations + 1


class TestShardedRunAccounting:
    """Pins for the sharded executor (``EngineConfig.num_shards > 1``).

    The per-shard trace joins each superstep's emitted records with "+"
    in shard order (scatter before gather within a shard), so mixed
    supersteps read e.g. ``push+pull``. The scanned-edge list is the
    per-shard decomposition of the records' ``frontier_edges`` total.
    """

    def test_sssp_rmat9_two_shards(self, rmat):
        source = int(np.argmax(rmat.out_degrees()))
        config = EngineConfig(num_shards=2)
        result = SIMDXEngine(rmat, config=config).run(SSSP(source=source))
        assert not result.failed
        assert result.device == "K40x2"
        # Same BSP trajectory length as one device (bit-identity pins the
        # metadata evolution; the fuzz harness pins the values).
        assert result.iterations == 7
        assert result.direction_trace == [
            "push+pull", "pull+pull", "pull+pull", "pull+pull",
            "pull+pull", "pull+pull", "push",
        ]
        assert result.filter_trace == [
            "ballot+online", "online+online", "online+online",
            "online+online", "online+online", "online+online", "online",
        ]
        assert result.extra["shards"] == 2
        assert result.extra["direction_switches"] == 3
        assert result.extra["shard_boundary_updates"] == 902
        assert result.extra["shard_scanned_edges"] == [7722, 10431]
        assert result.extra["kernel_edges_walked"] == 7722 + 10431
        assert sum(result.extra["shard_scanned_edges"]) == sum(
            r.frontier_edges for r in result.iteration_records
        )
        # Shard-mode scans differ from the single-device trace (each
        # shard picks its own direction) but the *useful* work does not:
        # the active-edge total matches the single-device pin above.
        assert sum(r.active_edges for r in result.iteration_records) == 8037
        assert len(result.iteration_records) == 13

    def test_sssp_road_batch_two_shards(self, road):
        sources = list(TestBatchRunAccounting.SOURCES)
        config = EngineConfig(num_shards=2)
        batch = SIMDXEngine(road, config=config).run_batch(SSSP(), sources)
        assert not batch.failed
        assert batch.device == "K40x2"
        assert batch.iterations == 40
        assert batch.lane_iterations == [40, 36, 38, 37, 39, 35, 35, 36]
        assert batch.extra["shards"] == 2
        assert batch.extra["shard_boundary_updates"] == 469
        assert batch.extra["shard_scanned_edges"] == [25227, 28122]
        assert batch.extra["kernel_edges_walked"] == 25227 + 28122
        assert batch.extra["union_edges_walked"] == 53349
        assert batch.extra["lane_edge_pairs"] == 51754
        assert batch.extra["pull_edges_scanned"] == 44818
        # Lane-group splitting is replaced by per-shard direction
        # selection on the sharded path - its accounting reports inert.
        assert batch.extra["split_iterations"] == []
        assert batch.extra["lane_splits"] == 0
        assert batch.direction_trace[:4] == [
            "push", "push+pull", "push+pull", "push+pull",
        ]
        assert len(batch.iteration_records) == 83
