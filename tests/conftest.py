"""Shared fixtures for the test suite.

Graphs used across tests are small (hundreds to a few thousand vertices) so
the whole suite runs in well under a minute; structural variety (chain, star,
grid, skewed R-MAT, two-level clusters) is what matters for exercising the
filters, worklists and algorithms.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.engine import EngineConfig, SIMDXEngine
from repro.gpu.device import GPUDevice, K40
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


def pytest_collection_modifyitems(config, items):
    """Skip ``slow``-marked matrices unless REPRO_RUN_SLOW is set.

    Tier-1 (`pytest -x -q`) runs the small matrices; the nightly
    bench-smoke CI job exports ``REPRO_RUN_SLOW=1`` to run the large
    differential-fuzz sweeps as well (see .github/workflows/ci.yml).
    """
    if os.environ.get("REPRO_RUN_SLOW"):
        return
    skip_slow = pytest.mark.skip(
        reason="slow matrix: set REPRO_RUN_SLOW=1 to run"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """The 9-vertex example graph of Figure 1 (a..i -> 0..8)."""
    edges = [
        (0, 1, 5.0),   # a-b
        (0, 3, 1.0),   # a-d
        (1, 2, 1.0),   # b-c
        (1, 4, 1.0),   # b-e
        (2, 5, 2.0),   # c-f
        (3, 4, 2.0),   # d-e
        (4, 5, 1.0),   # e-f
        (4, 6, 3.0),   # e-g
        (4, 7, 4.0),   # e-h
        (4, 8, 6.0),   # e-i
    ]
    arr = np.array([(s, d) for s, d, _ in edges], dtype=np.int64)
    weights = np.array([w for _, _, w in edges], dtype=np.float64)
    return CSRGraph.from_edges(9, arr, weights, directed=False, name="figure1")


@pytest.fixture
def chain_graph() -> CSRGraph:
    return gen.chain_graph(64, seed=1)


@pytest.fixture
def star_graph() -> CSRGraph:
    return gen.star_graph(200, seed=2)


@pytest.fixture
def grid_graph() -> CSRGraph:
    return gen.grid_graph(12, 12, seed=3)


@pytest.fixture
def rmat_graph() -> CSRGraph:
    return gen.rmat_graph(9, 8, seed=7, name="rmat9")


@pytest.fixture
def road_graph() -> CSRGraph:
    return gen.road_network_graph(24, 24, seed=11, name="road")


@pytest.fixture
def clustered_graph() -> CSRGraph:
    return gen.two_level_graph(4, 12, 10, seed=13)


@pytest.fixture
def directed_graph() -> CSRGraph:
    rng = np.random.default_rng(5)
    n, m = 300, 2400
    edges = np.stack(
        [rng.integers(0, n, size=m), rng.integers(0, n, size=m)], axis=1
    )
    return CSRGraph.from_edges(n, edges, directed=True, name="directed")


@pytest.fixture
def device() -> GPUDevice:
    return GPUDevice(K40)


@pytest.fixture
def engine_factory():
    """Factory building an engine for a graph with an optional config."""

    def make(graph: CSRGraph, config: EngineConfig | None = None) -> SIMDXEngine:
        return SIMDXEngine(graph, device=GPUDevice(K40), config=config)

    return make


def assert_distances_equal(actual: np.ndarray, expected: np.ndarray) -> None:
    """Compare distance arrays treating +inf (unreachable) as equal."""
    actual = np.asarray(actual, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    both_inf = np.isinf(actual) & np.isinf(expected)
    close = np.isclose(actual, expected)
    assert bool(np.all(both_inf | close)), "distance arrays differ"
