"""Tests for the baseline systems: functional agreement with SIMD-X,
cost-model orderings, memory/OOM behaviour and the shared trace machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, PageRank, KCore
from repro.baselines import CuShaLike, GaloisLike, GunrockLike, LigraLike
from repro.baselines import reference as ref
from repro.baselines.common import CPUSpec, trace_execution
from repro.core.engine import SIMDXEngine
from repro.core.metrics import RunResult
from repro.gpu.device import GPUDevice, K40
from repro.graph import generators as gen
from repro.graph.datasets import load_dataset
from tests.conftest import assert_distances_equal

ALL_BASELINES = [GunrockLike, CuShaLike, LigraLike, GaloisLike]


class TestTraceExecution:
    def test_trace_values_match_engine(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        trace = trace_execution(BFS(source=src), rmat_graph)
        engine_result = SIMDXEngine(rmat_graph).run(BFS(source=src))
        assert np.array_equal(trace.values, engine_result.values)
        assert trace.num_iterations == engine_result.iterations

    def test_trace_iteration_workloads(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        trace = trace_execution(BFS(source=src), rmat_graph)
        first = trace.iterations[0]
        assert first.frontier_vertices == 1
        assert first.frontier_edges == rmat_graph.out_degree(src)
        assert trace.total_frontier_edges >= trace.peak_frontier_edges
        assert trace.total_updates > 0

    def test_trace_respects_max_iterations(self, road_graph):
        trace = trace_execution(BFS(source=0), road_graph, max_iterations=3)
        assert trace.num_iterations == 3

    def test_atomic_profile_recorded_per_iteration(self, star_graph):
        # Pushing from all leaves contends on the hub.
        trace = trace_execution(PageRank(tolerance=1e-3), star_graph)
        assert any(t.atomic_profile.max_contention > 10 for t in trace.iterations)


class TestFunctionalAgreement:
    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    def test_bfs_values_match_reference(self, rmat_graph, baseline_cls):
        src = int(np.argmax(rmat_graph.out_degrees()))
        result = baseline_cls().run(BFS(source=src), rmat_graph)
        assert not result.failed
        assert np.array_equal(result.values, ref.bfs_levels(rmat_graph, src))

    @pytest.mark.parametrize("baseline_cls", ALL_BASELINES)
    def test_sssp_values_match_reference(self, grid_graph, baseline_cls):
        result = baseline_cls().run(SSSP(source=0), grid_graph)
        assert_distances_equal(result.values, ref.sssp_distances(grid_graph, 0))

    def test_shared_trace_reuse(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        trace = trace_execution(BFS(source=src), rmat_graph)
        a = GunrockLike().run(BFS(source=src), rmat_graph, trace=trace)
        b = LigraLike().run(BFS(source=src), rmat_graph, trace=trace)
        assert np.array_equal(a.values, b.values)
        assert a.iterations == b.iterations == trace.num_iterations


class TestGunrockModel:
    def test_slower_than_simdx_on_skewed_graph(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        simdx = SIMDXEngine(rmat_graph).run(BFS(source=src))
        gunrock = GunrockLike().run(BFS(source=src), rmat_graph)
        assert gunrock.elapsed_us > simdx.elapsed_us

    def test_two_launches_per_iteration(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        result = GunrockLike().run(BFS(source=src), rmat_graph)
        assert result.kernel_launches == 2 * result.iterations

    def test_sssp_oom_on_modeled_large_graph(self):
        graph = load_dataset("TW", scale=0.25)
        algo = SSSP(source=int(np.argmax(graph.out_degrees())))
        result = GunrockLike().run(algo, graph)
        assert result.failed
        assert "OOM" in result.failure_reason

    def test_bfs_fits_where_sssp_does_not(self):
        graph = load_dataset("FB", scale=0.25)
        bfs = GunrockLike().run(BFS(source=int(np.argmax(graph.out_degrees()))), graph)
        sssp = GunrockLike().run(SSSP(source=int(np.argmax(graph.out_degrees()))), graph)
        assert not bfs.failed
        assert sssp.failed

    def test_memory_released_after_run(self, rmat_graph):
        device = GPUDevice(K40)
        GunrockLike(device).run(BFS(source=0), rmat_graph)
        assert device.allocated_bytes == 0


class TestCuShaModel:
    def test_full_edge_sweep_every_iteration(self, road_graph):
        # CuSha cannot skip inactive vertices, so it loses on high-diameter
        # graphs (the paper's 480x ER SSSP case; the ratio is muted here
        # because the scaled-down analogue makes launch overhead, which both
        # systems pay, a large share of every iteration).
        simdx = SIMDXEngine(road_graph).run(BFS(source=0))
        cusha = CuShaLike().run(BFS(source=0), road_graph)
        assert cusha.elapsed_us > 1.2 * simdx.elapsed_us

    def test_oom_on_largest_modeled_graphs(self):
        for abbrev in ("FB", "TW"):
            graph = load_dataset(abbrev, scale=0.25)
            result = CuShaLike().run(BFS(source=0), graph)
            assert result.failed, abbrev
            assert "OOM" in result.failure_reason

    def test_fits_on_mid_sized_modeled_graphs(self):
        graph = load_dataset("KR", scale=0.25)
        result = CuShaLike().run(BFS(source=0), graph)
        assert not result.failed

    def test_competitive_on_pagerank(self):
        graph = load_dataset("LJ", scale=0.5)
        simdx = SIMDXEngine(graph).run(PageRank())
        cusha = CuShaLike().run(PageRank(), graph)
        # Full-edge-sweep algorithms are CuSha's best case (Table 4 shows it
        # within ~2x of SIMD-X and sometimes ahead on PageRank).
        assert cusha.elapsed_us < 2.5 * simdx.elapsed_us


class TestCPUBaselines:
    def test_cpu_slower_than_gpu_on_skewed_graphs(self):
        graph = load_dataset("OR", scale=0.5)
        src = int(np.argmax(graph.out_degrees()))
        simdx = SIMDXEngine(graph).run(BFS(source=src))
        for cls in (LigraLike, GaloisLike):
            cpu = cls().run(BFS(source=src), graph)
            assert cpu.elapsed_us > simdx.elapsed_us, cls.__name__

    def test_ligra_per_iteration_overhead_dominates_on_road(self, road_graph):
        ligra = LigraLike().run(BFS(source=0), road_graph)
        galois = GaloisLike().run(BFS(source=0), road_graph)
        # Galois has no per-iteration barrier, so it wins on high-diameter
        # low-parallelism traversals.
        assert galois.elapsed_us < ligra.elapsed_us

    def test_galois_reproduces_paper_sssp_failure_on_er(self):
        graph = load_dataset("ER", scale=0.25)
        result = GaloisLike().run(SSSP(source=0), graph)
        assert result.failed
        assert "converge" in result.failure_reason

    def test_galois_failure_reproduction_can_be_disabled(self):
        graph = load_dataset("ER", scale=0.25)
        result = GaloisLike(reproduce_paper_failures=False).run(SSSP(source=0), graph)
        assert not result.failed
        assert_distances_equal(result.values, ref.sssp_distances(graph, 0))

    def test_custom_cpu_spec_scales_time(self, rmat_graph):
        fast = CPUSpec(cores=56, edge_ns=8.0)
        slow = CPUSpec(cores=14, edge_ns=32.0)
        src = int(np.argmax(rmat_graph.out_degrees()))
        t_fast = LigraLike(fast).run(BFS(source=src), rmat_graph).elapsed_us
        t_slow = LigraLike(slow).run(BFS(source=src), rmat_graph).elapsed_us
        assert t_fast < t_slow

    def test_kcore_speedup_over_ligra(self):
        graph = load_dataset("LJ", scale=0.5)
        simdx = SIMDXEngine(graph).run(KCore(k=16))
        ligra = LigraLike().run(KCore(k=16), graph)
        assert simdx.elapsed_us < ligra.elapsed_us


class TestRunResultHelpers:
    def test_speedup_over(self, rmat_graph):
        src = int(np.argmax(rmat_graph.out_degrees()))
        simdx = SIMDXEngine(rmat_graph).run(BFS(source=src))
        gunrock = GunrockLike().run(BFS(source=src), rmat_graph)
        # speedup_over(other) returns how many times faster *this* run is.
        assert simdx.speedup_over(gunrock) > 1.0 > gunrock.speedup_over(simdx)

    def test_speedup_with_failure_is_nan(self):
        ok = RunResult("a", "bfs", "g", None, 10.0, 1)
        bad = RunResult.failure("b", "bfs", "g", "OOM")
        assert np.isnan(ok.speedup_over(bad))
        assert bad.failed and bad.elapsed_us == float("inf")

    def test_summary_fields(self, rmat_graph):
        result = GaloisLike().run(BFS(source=0), rmat_graph)
        summary = result.summary()
        assert summary["system"] == "Galois"
        assert summary["failed"] is False
