"""Serving-layer tests: admission, unhappy paths, served-vs-direct identity.

Covers the contract of ``src/repro/serve/`` (docs/serving.md):

* batches form at max-K and at max-wait with K < max;
* cancellation before dispatch (pruned, never occupies a lane) and after
  dispatch (lane runs, result discarded);
* queue shedding at ``max_queue`` (``ServerOverloaded``);
* per-lane parameter routing (``lane_params`` passthrough);
* duplicate sources across callers;
* engine failure propagating to exactly the affected batch's lanes;
* shutdown draining everything still queued;
* the differential check: every served answer is bit-identical to a
  direct ``SIMDXEngine.run_batch`` call with the same batch composition
  (``REPRO_SANITIZE=1`` re-runs it with the runtime sanitizer armed -
  CI's static-analysis job does).

The tests run the event loop via ``asyncio.run`` (no pytest-asyncio
dependency) on a small R-MAT graph, with generous ``max_wait_ms`` wherever
batch composition must be deterministic.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.gpu.device import GPUDevice, K40
from repro.graph import generators as gen
from repro.serve import (
    AdmissionPolicy,
    EngineFailure,
    ServerOverloaded,
    SIMDXServer,
)

SANITIZE = os.environ.get("REPRO_SANITIZE", "") == "1"

#: A long wait turns max-wait dispatch off, so batch composition is
#: driven purely by max-K / shutdown / explicit timing in each test.
NEVER_MS = 60_000.0


@pytest.fixture
def graph():
    return gen.rmat_graph(9, 8, seed=7, name="rmat9")


def serve_config() -> EngineConfig:
    return EngineConfig(sanitize=True) if SANITIZE else EngineConfig()


def make_server(graph, policy: AdmissionPolicy, **kwargs) -> SIMDXServer:
    kwargs.setdefault("config", serve_config())
    return SIMDXServer(graph, policy=policy, **kwargs)


async def submit_tasks(server, queries):
    """Spawn one task per (algorithm, source, params) and let them enqueue."""
    tasks = [
        asyncio.ensure_future(server.submit(*query)) for query in queries
    ]
    # Each submit needs one scheduling turn to reach its queue.
    for _ in range(2 + len(tasks)):
        await asyncio.sleep(0)
    return tasks


# ----------------------------------------------------------------------
# Batch formation
# ----------------------------------------------------------------------
def test_batch_forms_at_max_k(graph):
    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=4, max_wait_ms=NEVER_MS)
        )
        async with server:
            results = await asyncio.gather(
                *[server.submit("bfs", s) for s in (3, 5, 9, 11)]
            )
        return server, results

    server, results = asyncio.run(scenario())
    assert server.stats["batches"] == 1
    assert [r.batch_size for r in results] == [4, 4, 4, 4]
    assert [r.lane for r in results] == [0, 1, 2, 3]
    assert results[0].extra["serve_batch_fill"] == 1.0
    assert server.batch_log[0]["sources"] == [3, 5, 9, 11]


def test_batch_forms_at_max_wait_with_fewer_lanes(graph):
    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=8, max_wait_ms=25.0)
        )
        async with server:
            results = await asyncio.gather(
                server.submit("bfs", 3), server.submit("bfs", 5)
            )
        return server, results

    server, results = asyncio.run(scenario())
    assert server.stats["batches"] == 1
    assert [r.batch_size for r in results] == [2, 2]
    # The deadline fired, not max-K: the batch is under-full and the
    # oldest query waited at least the policy's max_wait_ms.
    assert results[0].extra["serve_batch_fill"] == 2 / 8
    assert results[0].queue_wait_s >= 0.020


def test_algorithms_batch_separately(graph):
    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=2, max_wait_ms=NEVER_MS)
        )
        async with server:
            results = await asyncio.gather(
                server.submit("bfs", 3),
                server.submit("sssp", 5),
                server.submit("bfs", 9),
                server.submit("sssp", 11),
            )
        return server, results

    server, results = asyncio.run(scenario())
    assert server.stats["batches"] == 2
    assert {log["algorithm"] for log in server.batch_log} == {"bfs", "sssp"}
    assert all(r.batch_size == 2 for r in results)


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
def test_cancellation_before_dispatch_is_pruned(graph):
    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=4, max_wait_ms=NEVER_MS)
        )
        async with server:
            tasks = await submit_tasks(
                server, [("bfs", 3, None), ("bfs", 5, None), ("bfs", 9, None)]
            )
            tasks[1].cancel()
            await asyncio.sleep(0)
            # Two more fill the batch to max-K without the cancelled one.
            late = await submit_tasks(
                server, [("bfs", 11, None), ("bfs", 13, None)]
            )
            results = await asyncio.gather(
                *(tasks[:1] + tasks[2:] + late), return_exceptions=True
            )
        return server, results

    server, results = asyncio.run(scenario())
    assert server.stats["batches"] == 1
    assert server.stats["cancelled_before_dispatch"] == 1
    assert server.stats["cancelled_after_dispatch"] == 0
    # The cancelled caller never occupied a lane.
    assert server.batch_log[0]["sources"] == [3, 9, 11, 13]
    assert all(r.batch_size == 4 for r in results)


def test_cancellation_after_dispatch_discards_lane(graph):
    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=3, max_wait_ms=NEVER_MS)
        )
        # Cancel lane 1's caller in the window between batch pop and
        # engine dispatch: the lane still runs with the batch.
        server._before_dispatch = lambda batch: batch[1].future.cancel()
        async with server:
            tasks = await submit_tasks(
                server, [("bfs", 3, None), ("bfs", 5, None), ("bfs", 9, None)]
            )
            results = await asyncio.gather(*tasks, return_exceptions=True)
        return server, results

    server, results = asyncio.run(scenario())
    assert server.stats["batches"] == 1
    assert server.stats["cancelled_after_dispatch"] == 1
    assert server.stats["served"] == 2
    # The batch dispatched with all three lanes - the cancelled caller's
    # lane ran, its result was discarded at demultiplex.
    assert server.batch_log[0]["sources"] == [3, 5, 9]
    assert isinstance(results[1], asyncio.CancelledError)
    assert results[0].batch_size == 3 and results[2].batch_size == 3


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
def test_queue_sheds_at_max_queue(graph):
    async def scenario():
        server = make_server(
            graph,
            AdmissionPolicy(max_batch=8, max_wait_ms=NEVER_MS, max_queue=3),
        )
        async with server:
            tasks = await submit_tasks(
                server, [("bfs", s, None) for s in (3, 5, 9)]
            )
            with pytest.raises(ServerOverloaded):
                await server.submit("bfs", 11)
        # Shedding rejected the 4th query but the queued three are
        # intact: the drain on shutdown answered them.
        results = await asyncio.gather(*tasks)
        return server, results

    server, results = asyncio.run(scenario())
    assert server.stats["shed"] == 1
    assert server.stats["served"] == 3
    assert [r.batch_size for r in results] == [3, 3, 3]


def test_submit_after_shutdown_raises(graph):
    async def scenario():
        server = make_server(graph, AdmissionPolicy(max_batch=2))
        async with server:
            await server.submit("bfs", 3)  # lone query, served by drain
        with pytest.raises(RuntimeError):
            await server.submit("bfs", 5)

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Lane parameter routing and duplicate sources
# ----------------------------------------------------------------------
def test_per_lane_params_route_to_their_lane(graph):
    deltas = [1.0, 4.0, 16.0]

    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=3, max_wait_ms=NEVER_MS)
        )
        async with server:
            results = await asyncio.gather(
                *[
                    server.submit("sssp", 3 + 2 * k, {"delta": deltas[k]})
                    for k in range(3)
                ]
            )
        return server, results

    server, results = asyncio.run(scenario())
    log = server.batch_log[0]
    assert log["lane_params"] == [{"delta": d} for d in deltas]
    direct = SIMDXEngine(
        graph, device=GPUDevice(K40), config=serve_config()
    ).run_batch(
        SSSP(source=log["sources"][0]),
        log["sources"],
        lane_params=log["lane_params"],
    )
    for k, result in enumerate(results):
        assert np.array_equal(result.values, direct.values[k])


def test_unknown_param_fails_only_its_caller(graph):
    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=2, max_wait_ms=NEVER_MS)
        )
        async with server:
            with pytest.raises(ValueError):
                await server.submit("bfs", 3, {"no_such_param": 1})
            results = await asyncio.gather(
                server.submit("bfs", 3), server.submit("bfs", 5)
            )
        return server, results

    server, results = asyncio.run(scenario())
    # The bad query was rejected synchronously - it never joined a batch.
    assert server.stats["batches"] == 1
    assert all(r.batch_size == 2 for r in results)


def test_duplicate_sources_across_callers(graph):
    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=3, max_wait_ms=NEVER_MS)
        )
        async with server:
            results = await asyncio.gather(
                server.submit("bfs", 7),
                server.submit("bfs", 7),
                server.submit("bfs", 5),
            )
        return server, results

    server, results = asyncio.run(scenario())
    assert server.batch_log[0]["sources"] == [7, 7, 5]
    assert np.array_equal(results[0].values, results[1].values)
    assert results[0].lane == 0 and results[1].lane == 1


# ----------------------------------------------------------------------
# Engine failure isolation
# ----------------------------------------------------------------------
class _BoomBFS(BFS):
    """A BFS whose init raises - the engine-failure path, honestly taken."""

    name = "boom"

    def init(self, graph, **kwargs):
        raise RuntimeError("injected engine failure")


def test_engine_failure_hits_only_its_lanes(graph):
    async def scenario():
        server = make_server(
            graph,
            AdmissionPolicy(max_batch=2, max_wait_ms=NEVER_MS),
            algorithms={"bfs": BFS, "boom": _BoomBFS},
        )
        async with server:
            outcomes = await asyncio.gather(
                server.submit("boom", 3),
                server.submit("boom", 5),
                server.submit("bfs", 3),
                server.submit("bfs", 5),
                return_exceptions=True,
            )
            # The failure is contained: the server keeps serving.
            after = await asyncio.gather(
                server.submit("bfs", 9), server.submit("bfs", 11)
            )
        return server, outcomes, after

    server, outcomes, after = asyncio.run(scenario())
    assert isinstance(outcomes[0], EngineFailure)
    assert isinstance(outcomes[1], EngineFailure)
    assert "injected engine failure" in outcomes[0].reason
    assert outcomes[2].batch_size == 2 and outcomes[3].batch_size == 2
    assert all(r.batch_size == 2 for r in after)
    assert server.stats["failed"] == 2
    assert server.stats["served"] == 4


# ----------------------------------------------------------------------
# Shutdown drain
# ----------------------------------------------------------------------
def test_shutdown_drains_queued_queries(graph):
    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=16, max_wait_ms=NEVER_MS)
        )
        async with server:
            tasks = await submit_tasks(
                server, [("bfs", 3 + 2 * k, None) for k in range(5)]
            )
            # Nothing dispatched yet: K < max_batch and the deadline is
            # far away. Exiting the context shuts down with drain=True,
            # which dispatches everything still queued.
            assert server.stats["batches"] == 0
        results = await asyncio.gather(*tasks)
        return server, results

    server, results = asyncio.run(scenario())
    assert server.stats["batches"] == 1
    assert [r.batch_size for r in results] == [5] * 5
    assert server.stats["served"] == 5


def test_shutdown_without_drain_cancels_queued(graph):
    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=16, max_wait_ms=NEVER_MS)
        )
        await server.start()
        tasks = await submit_tasks(
            server, [("bfs", 3, None), ("bfs", 5, None)]
        )
        await server.shutdown(drain=False)
        return server, await asyncio.gather(*tasks, return_exceptions=True)

    server, results = asyncio.run(scenario())
    assert server.stats["batches"] == 0
    assert all(isinstance(r, asyncio.CancelledError) for r in results)


# ----------------------------------------------------------------------
# The differential check: served == direct run_batch, bit for bit
# ----------------------------------------------------------------------
def test_served_differential_vs_direct_run_batch(graph):
    """Every served answer replays bit-identically through run_batch.

    A mixed bfs/sssp stream (with per-lane deltas, duplicate sources and
    one mid-stream cancellation) is served - two batches at max-K, the
    leftover by the shutdown drain - then every logged batch composition
    is replayed through a *fresh* engine and each caller's values are
    compared at its recorded (batch, lane) coordinates.
    ``REPRO_SANITIZE=1`` arms the runtime sanitizer on both sides.
    """

    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=3, max_wait_ms=NEVER_MS)
        )
        queries = [
            ("bfs", 3, None),
            ("sssp", 5, {"delta": 2.0}),
            ("bfs", 7, None),
            ("bfs", 7, None),          # duplicate source
            ("sssp", 9, {"delta": 8.0}),
            ("bfs", 11, None),
            ("sssp", 5, None),         # duplicate source, default delta
            ("bfs", 13, None),
        ]
        async with server:
            tasks = await submit_tasks(server, queries)
            # bfs 3/7/7 and sssp 5/9/5 dispatched at max-K; bfs 11 and 13
            # are still queued (2 < max_batch, deadline far) - cancelling
            # one here exercises pruning mid-stream.
            tasks[5].cancel()
        results = await asyncio.gather(*tasks, return_exceptions=True)
        return server, results

    server, results = asyncio.run(scenario())
    classes = {"bfs": BFS, "sssp": SSSP}
    replays = []
    for log in server.batch_log:
        engine = SIMDXEngine(
            graph, device=GPUDevice(K40), config=serve_config()
        )
        replays.append(
            engine.run_batch(
                classes[log["algorithm"]](source=log["sources"][0]),
                log["sources"],
                lane_params=log["lane_params"],
            )
        )
    checked = 0
    for result in results:
        if isinstance(result, BaseException):
            assert isinstance(result, asyncio.CancelledError)
            continue
        replay = replays[result.batch_index]
        assert not replay.failed
        assert np.array_equal(result.values, replay.values[result.lane])
        assert result.iterations == replay.iterations
        assert result.elapsed_us == replay.elapsed_us
        checked += 1
    assert checked == len(results) - 1  # all but the cancelled caller
    assert sum(len(log["sources"]) for log in server.batch_log) == checked


# ----------------------------------------------------------------------
# Dynamic updates and the result cache (docs/dynamic.md, docs/caching.md)
# ----------------------------------------------------------------------
def test_cache_hit_serves_without_a_batch(graph):
    """A repeated query is served from the cache: sentinel lane -1, no
    new batch, and the first answer's exact bits."""

    async def scenario():
        server = make_server(
            graph,
            AdmissionPolicy(max_batch=4, max_wait_ms=1.0),
            cache=True,
        )
        async with server:
            first = await server.submit("bfs", 3)
            batches = server.stats["batches"]
            second = await server.submit("bfs", 3)
        return server, first, batches, second

    server, first, batches, second = asyncio.run(scenario())
    assert first.lane >= 0
    assert second.lane == -1 and second.batch_index == -1
    assert second.batch_size == 0 and second.queue_wait_s == 0.0
    assert second.extra["cache_outcome"] == "hit"
    assert server.stats["batches"] == batches  # no batch dispatched
    assert server.stats["cache_hits"] == 1
    np.testing.assert_array_equal(first.values, second.values)


def test_cache_hit_does_not_consume_batch_capacity(graph):
    """Hits bypass admission entirely: with the queue saturated at
    ``max_queue``, a repeated query still answers instantly, sheds
    nothing, and leaves the pending depth untouched."""

    from repro.cache import ResultCache

    # Prepopulate the cache with a direct run's bits - exactly what a
    # served batch lane would have stored (the bit-identity contract).
    warm = SIMDXEngine(
        graph, device=GPUDevice(K40), config=serve_config()
    ).run(BFS(source=3))
    cache = ResultCache()
    cache.store("bfs", 3, {}, warm.values, version=0)

    async def scenario():
        server = make_server(
            graph,
            AdmissionPolicy(
                max_batch=6, max_wait_ms=NEVER_MS, max_queue=5
            ),
            cache=cache,
        )
        await server.start()
        # Saturate the queue: 5 distinct queries, none dispatching
        # (5 < max_batch, deadline far) - admission is full.
        tasks = await submit_tasks(
            server, [("bfs", 20 + i, None) for i in range(5)]
        )
        depth_before = server._former.depth
        assert depth_before == 5
        hit = await server.submit("bfs", 3)  # queue full, still answers
        assert server._former.depth == depth_before
        with pytest.raises(ServerOverloaded):
            await server.submit("bfs", 50)  # misses still shed
        await server.shutdown()  # drain dispatches the queued 5
        results = await asyncio.gather(*tasks)
        return server, hit, results

    server, hit, results = asyncio.run(scenario())
    assert hit.lane == -1
    assert hit.extra["cache_outcome"] == "hit"
    np.testing.assert_array_equal(warm.values, hit.values)
    assert server.stats["shed"] == 1
    assert len(results) == 5


def test_update_bumps_version_and_serves_new_graph(graph):
    """An update applies between batches; later queries run on the new
    snapshot and match a direct engine run on it, bit for bit."""

    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=4, max_wait_ms=1.0), cache=True
        )
        async with server:
            before = await server.submit("bfs", 3)
            receipt = await server.update(
                inserts=[(3, 200), (7, 150)], deletes=[(5, 9)]
            )
            after = await server.submit("bfs", 3)
            hit = await server.submit("bfs", 3)
            snapshot = server.dyn.snapshot()
        return server, before, receipt, after, hit, snapshot

    server, before, receipt, after, hit, snapshot = asyncio.run(scenario())
    assert receipt["version"] == 1 and server.dyn.version == 1
    assert server.stats["updates"] == 1
    # The stale entry was not served: the post-update answer re-ran.
    assert after.lane >= 0
    assert after.extra["dyn_graph_version"] == 1
    direct = SIMDXEngine(snapshot, config=serve_config()).run(BFS(source=3))
    np.testing.assert_array_equal(after.values, direct.values)
    # And the re-run repopulated the cache at the new version.
    assert hit.lane == -1 and hit.extra["dyn_graph_version"] == 1
    np.testing.assert_array_equal(hit.values, direct.values)
    # Both dispatched batches logged the version they ran at.
    assert [e["graph_version"] for e in server.batch_log] == [0, 1]


def test_update_validation_rejects_bad_edges(graph):
    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=4, max_wait_ms=1.0)
        )
        async with server:
            with pytest.raises(ValueError):
                await server.update(inserts=[(0, 0)])
            with pytest.raises(ValueError):
                await server.update(deletes=[(0, graph.num_vertices)])
        return server

    server = asyncio.run(scenario())
    assert server.dyn.version == 0
    assert server.stats["updates"] == 0


def test_update_refreshes_landmarks(graph):
    """A hot source stays an exact hit across an update: the server's
    eager landmark refresh repairs the pinned entry to the new version."""
    from repro.cache import ResultCache

    async def scenario():
        cache = ResultCache(landmark_threshold=2)
        server = make_server(
            graph,
            AdmissionPolicy(max_batch=4, max_wait_ms=1.0),
            cache=cache,
        )
        async with server:
            await server.submit("bfs", 3)
            await server.submit("bfs", 3)
            await server.submit("bfs", 3)  # promoted to landmark
            receipt = await server.update(inserts=[(3, 200)])
            answer = await server.submit("bfs", 3)
            snapshot = server.dyn.snapshot()
        return cache, receipt, answer, snapshot

    cache, receipt, answer, snapshot = asyncio.run(scenario())
    assert receipt["landmarks_refreshed"] == 1
    assert answer.lane == -1  # still an exact hit, at the new version
    assert answer.extra["dyn_graph_version"] == 1
    direct = SIMDXEngine(snapshot, config=serve_config()).run(BFS(source=3))
    np.testing.assert_array_equal(answer.values, direct.values)


def test_served_differential_after_updates(graph):
    """The served-vs-direct differential across a version change: every
    logged batch replays bit-identically against the snapshot of the
    ``graph_version`` it ran at."""

    async def scenario():
        server = make_server(
            graph, AdmissionPolicy(max_batch=2, max_wait_ms=NEVER_MS)
        )
        snapshots = {}
        async with server:
            snapshots[0] = server.dyn.snapshot()
            tasks = await submit_tasks(
                server, [("bfs", 3, None), ("bfs", 5, None)]
            )
            first = await asyncio.gather(*tasks)
            await server.update(inserts=[(3, 180), (11, 90)])
            snapshots[1] = server.dyn.snapshot()
            tasks = await submit_tasks(
                server, [("sssp", 3, None), ("sssp", 7, None)]
            )
            second = await asyncio.gather(*tasks)
        return server, snapshots, first + second

    server, snapshots, results = asyncio.run(scenario())
    classes = {"bfs": BFS, "sssp": SSSP}
    replays = []
    for log in server.batch_log:
        engine = SIMDXEngine(
            snapshots[log["graph_version"]], config=serve_config()
        )
        replays.append(
            engine.run_batch(
                classes[log["algorithm"]](source=log["sources"][0]),
                log["sources"],
                lane_params=log["lane_params"],
            )
        )
    for result in results:
        replay = replays[result.batch_index]
        assert not replay.failed
        assert np.array_equal(result.values, replay.values[result.lane])
