"""Incremental-recompute tests (``src/repro/dyn/incremental.py``).

The exactness contract (docs/dynamic.md): for the monotone min-combine
algorithms (BFS, SSSP, WCC), repairing the previous fixed point through
an update receipt must produce **bit-identical** values to a from-scratch
engine run on the new snapshot - under the default config, under the
runtime sanitizer, and under ``num_shards > 1``. Cases that the repair
planner cannot prove exact (non-positive SSSP weights, unsupported
algorithms) must fall back to the from-scratch path, never approximate.

``REPRO_SANITIZE=1`` arms the runtime sanitizer across this module (CI's
static-analysis job does).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms import ALGORITHMS, BFS, SSSP, WCC, PageRank
from repro.analysis import registry as extra_keys
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.dyn import (
    DynamicGraph,
    EdgeUpdateBatch,
    IncrementalRecompute,
    plan_repair,
)
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph

SANITIZE = os.environ.get("REPRO_SANITIZE", "") == "1"


def _config(**kwargs) -> EngineConfig:
    kwargs.setdefault("sanitize", SANITIZE)
    return EngineConfig(**kwargs)


def _random_batch(dyn: DynamicGraph, rng: np.random.Generator,
                  inserts: int = 6, deletes: int = 4) -> EdgeUpdateBatch:
    n = dyn.num_vertices
    ins = rng.integers(0, n, size=(inserts, 2))
    ins = ins[ins[:, 0] != ins[:, 1]]
    weights = rng.uniform(0.5, 3.0, size=len(ins))
    edges = dyn.snapshot().to_edge_array()
    picks = rng.choice(len(edges), size=min(deletes, len(edges)),
                       replace=False)
    return EdgeUpdateBatch.of(
        inserts=ins, insert_weights=weights, deletes=edges[picks]
    )


def _hub(graph) -> int:
    """A deterministic well-connected source (isolated sources make
    delta-stepping spin through empty buckets - not what's under test)."""
    return int(np.argmax(graph.out_degrees()))


def _case(name: str, source: int):
    if name == "bfs":
        return lambda: BFS(source=source)
    if name == "sssp":
        return lambda: SSSP(source=source)
    if name == "sssp-delta":
        return lambda: SSSP(source=source, delta=8.0)
    if name == "wcc":
        return lambda: WCC()
    raise KeyError(name)


REPAIR_CASES = ("bfs", "sssp", "sssp-delta", "wcc")


def _check_rounds(graph, *, rounds, config, seed, cases=REPAIR_CASES):
    """Warm repair vs from-scratch, bit for bit, across update rounds."""
    dyn = DynamicGraph(graph)
    rng = np.random.default_rng(seed)
    recompute = IncrementalRecompute(config=config)
    src = _hub(graph)
    warm = {
        name: SIMDXEngine(dyn.snapshot(), config=config)
        .run(_case(name, src)())
        .values
        for name in cases
    }
    for _ in range(rounds):
        receipt = dyn.apply(_random_batch(dyn, rng))
        scratch_engine = SIMDXEngine(receipt.new_graph, config=config)
        for name in cases:
            repaired = recompute.run(receipt, _case(name, src)(), warm[name])
            assert not repaired.failed, repaired.failure_reason
            scratch = scratch_engine.run(_case(name, src)())
            assert np.array_equal(repaired.values, scratch.values), (
                f"{name} repair diverged from scratch at "
                f"version {receipt.version} on {graph.name}"
            )
            warm[name] = repaired.values
    return dyn


# ----------------------------------------------------------------------
# Bit-identity across update rounds
# ----------------------------------------------------------------------
def test_repair_bit_identical_uniform():
    graph = gen.random_uniform_graph(220, 1500, seed=11, name="inc-uniform")
    _check_rounds(graph, rounds=4, config=_config(), seed=101)


def test_repair_bit_identical_rmat():
    graph = gen.rmat_graph(8, 8, seed=21, name="inc-rmat")
    _check_rounds(graph, rounds=3, config=_config(), seed=202)


def test_repair_bit_identical_sanitized():
    graph = gen.random_uniform_graph(180, 1200, seed=31, name="inc-sane")
    _check_rounds(graph, rounds=3, config=_config(sanitize=True), seed=303)


def test_repair_bit_identical_sharded():
    graph = gen.rmat_graph(8, 8, seed=41, name="inc-shard")
    _check_rounds(graph, rounds=3, config=_config(num_shards=2), seed=404)


def test_repair_bit_identical_directed():
    rng = np.random.default_rng(9)
    edges = rng.integers(0, 150, size=(900, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    weights = rng.uniform(0.5, 4.0, size=len(edges)).astype(np.float32)
    graph = CSRGraph.from_edges(
        150, edges, weights=weights, directed=True, name="inc-directed"
    )
    _check_rounds(graph, rounds=3, config=_config(sanitize=True), seed=505)


@pytest.mark.slow
def test_repair_bit_identical_road_slow():
    graph = gen.road_network_graph(14, 14, seed=51, name="inc-road")
    _check_rounds(graph, rounds=6, config=_config(), seed=606)


@pytest.mark.slow
def test_repair_bit_identical_sharded_sanitized_slow():
    graph = gen.random_uniform_graph(220, 1500, seed=61, name="inc-ss")
    _check_rounds(
        graph, rounds=5, config=_config(num_shards=2, sanitize=True), seed=707
    )


# ----------------------------------------------------------------------
# Repair-mode accounting and fallbacks
# ----------------------------------------------------------------------
def test_incremental_mode_annotated_in_extra():
    graph = gen.random_uniform_graph(150, 900, seed=71)
    dyn = DynamicGraph(graph)
    warm = SIMDXEngine(graph, config=_config()).run(BFS(source=3)).values
    receipt = dyn.apply(EdgeUpdateBatch.of(inserts=[(3, 140), (9, 77)]))
    result = IncrementalRecompute(config=_config()).run(
        receipt, BFS(source=3), warm
    )
    assert result.extra[extra_keys.DYN_REPAIR_MODE] == "incremental"
    assert result.extra[extra_keys.DYN_GRAPH_VERSION] == 1
    assert result.extra[extra_keys.DYN_REPAIR_SEED_VERTICES] >= 1
    assert result.extra[extra_keys.DYN_REPAIR_RESET_VERTICES] >= 0


def test_unsupported_algorithm_falls_back_to_scratch():
    graph = gen.random_uniform_graph(150, 900, seed=81)
    dyn = DynamicGraph(graph)
    config = _config()
    warm = SIMDXEngine(graph, config=config).run(PageRank()).values
    receipt = dyn.apply(EdgeUpdateBatch.of(inserts=[(3, 140)]))
    result = IncrementalRecompute(config=config).run(
        receipt, PageRank(), warm
    )
    assert result.extra[extra_keys.DYN_REPAIR_MODE] == "from_scratch"
    assert result.extra[extra_keys.DYN_REPAIR_SEED_VERTICES] == 0
    scratch = SIMDXEngine(receipt.new_graph, config=config).run(PageRank())
    assert np.array_equal(result.values, scratch.values)


def test_force_scratch_flag():
    graph = gen.random_uniform_graph(150, 900, seed=91)
    dyn = DynamicGraph(graph)
    warm = SIMDXEngine(graph, config=_config()).run(BFS(source=3)).values
    receipt = dyn.apply(EdgeUpdateBatch.of(inserts=[(3, 140)]))
    result = IncrementalRecompute(config=_config()).run(
        receipt, BFS(source=3), warm, force_scratch=True
    )
    assert result.extra[extra_keys.DYN_REPAIR_MODE] == "from_scratch"
    scratch = SIMDXEngine(receipt.new_graph, config=_config()).run(
        BFS(source=3)
    )
    assert np.array_equal(result.values, scratch.values)


def test_sssp_nonpositive_weight_refuses_repair_plan():
    # plan_repair must return None when min weight <= 0 (support-closure
    # soundness needs strictly positive weights), forcing exact fallback.
    rng = np.random.default_rng(3)
    edges = rng.integers(0, 60, size=(300, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    weights = np.zeros(len(edges), dtype=np.float32)  # zero-weight edges
    graph = CSRGraph.from_edges(60, edges, weights=weights, name="inc-zero")
    dyn = DynamicGraph(graph)
    config = _config()
    warm = SIMDXEngine(graph, config=config).run(SSSP(source=3)).values
    receipt = dyn.apply(EdgeUpdateBatch.of(
        deletes=[graph.to_edge_array()[0]]
    ))
    plan = plan_repair(
        "sssp",
        receipt,
        np.asarray(warm, dtype=np.float64),
        source=3,
    )
    assert plan is None
    result = IncrementalRecompute(config=config).run(
        receipt, SSSP(source=3), warm
    )
    assert result.extra[extra_keys.DYN_REPAIR_MODE] == "from_scratch"
    scratch = SIMDXEngine(receipt.new_graph, config=config).run(
        SSSP(source=3)
    )
    assert np.array_equal(result.values, scratch.values)


def test_noop_update_keeps_values():
    graph = gen.random_uniform_graph(150, 900, seed=95)
    dyn = DynamicGraph(graph)
    config = _config(sanitize=True)
    warm = SIMDXEngine(graph, config=config).run(BFS(source=3)).values
    # Delete a non-existent edge: empty receipt, repair runs with an
    # empty frontier and must return the warm values untouched.
    receipt = dyn.apply(EdgeUpdateBatch.of(deletes=[(0, 149)]))
    assert receipt.delete_edges.shape[0] == 0
    result = IncrementalRecompute(config=config).run(
        receipt, BFS(source=3), warm
    )
    assert np.array_equal(result.values, warm)


def test_all_registered_algorithms_have_exact_answers_after_update():
    # Every algorithm in the registry must stay exact through the dynamic
    # path: repairable ones repair, the rest re-run from scratch.
    graph = gen.rmat_graph(7, 8, seed=13, name="inc-all")
    dyn = DynamicGraph(graph)
    config = _config()
    recompute = IncrementalRecompute(config=config)
    engine = SIMDXEngine(dyn.snapshot(), config=config)
    src = _hub(graph)
    warm = {}
    for name, factory in sorted(ALGORITHMS.items()):
        algo = factory(source=src) if name in ("bfs", "sssp") else factory()
        warm[name] = engine.run(algo).values
    receipt = dyn.apply(EdgeUpdateBatch.of(
        inserts=[(3, 90), (17, 42)], deletes=[graph.to_edge_array()[5]]
    ))
    scratch_engine = SIMDXEngine(receipt.new_graph, config=config)
    for name, factory in sorted(ALGORITHMS.items()):
        make = (lambda f=factory, n=name: f(source=src)
                if n in ("bfs", "sssp") else f())
        repaired = recompute.run(receipt, make(), warm[name])
        assert not repaired.failed, (name, repaired.failure_reason)
        scratch = scratch_engine.run(make())
        assert np.array_equal(repaired.values, scratch.values), name
