"""Tests for kernel fusion plans, the register model and direction selection."""

from __future__ import annotations

import pytest

from repro.core.direction import Direction, DirectionSelector
from repro.core.fusion import FusionPlan, FusionStrategy, REGISTERS_TABLE
from repro.gpu.device import K20, K40, P100


class TestRegisterTable:
    def test_table2_unfused_registers(self):
        # Values from Table 2 of the paper.
        assert REGISTERS_TABLE["push_thread"] == 26
        assert REGISTERS_TABLE["push_warp"] == 27
        assert REGISTERS_TABLE["push_cta"] == 28
        assert REGISTERS_TABLE["push_task_mgt"] == 24
        assert REGISTERS_TABLE["pull_task_mgt"] == 30

    def test_table2_fused_registers(self):
        assert REGISTERS_TABLE["fused_push"] == 48
        assert REGISTERS_TABLE["fused_pull"] == 50
        assert REGISTERS_TABLE["fused_all"] == 110

    def test_all_fusion_roughly_4x_unfused(self):
        unfused_avg = sum(
            v for k, v in REGISTERS_TABLE.items() if not k.startswith("fused")
        ) / 8
        assert REGISTERS_TABLE["fused_all"] / unfused_avg > 4.0

    def test_selective_fusion_halves_all_fusion(self):
        assert REGISTERS_TABLE["fused_push"] <= REGISTERS_TABLE["fused_all"] / 2
        assert REGISTERS_TABLE["fused_pull"] <= REGISTERS_TABLE["fused_all"] / 2


class TestFusionPlan:
    def test_no_fusion_launches_four_kernels_per_iteration(self):
        plan = FusionPlan(FusionStrategy.NONE)
        phase = plan.phase_kernels(Direction.PUSH)
        assert len(phase.launch_kernels) == 4
        assert len(phase.continuation_kernels) == 0
        assert phase.barrier_kernel is None

    def test_push_pull_fusion_launches_once_per_phase(self):
        plan = FusionPlan(FusionStrategy.PUSH_PULL)
        first = plan.phase_kernels(Direction.PUSH)
        assert len(first.launch_kernels) == 1
        assert first.launch_kernels[0].name == "fused_push"
        # Staying in push: no relaunch.
        second = plan.phase_kernels(Direction.PUSH)
        assert len(second.launch_kernels) == 0
        assert len(second.continuation_kernels) == 4
        # Switching to pull relaunches the pull kernel.
        third = plan.phase_kernels(Direction.PULL)
        assert len(third.launch_kernels) == 1
        assert third.launch_kernels[0].name == "fused_pull"

    def test_all_fusion_launches_exactly_once(self):
        plan = FusionPlan(FusionStrategy.ALL)
        first = plan.phase_kernels(Direction.PUSH)
        assert len(first.launch_kernels) == 1
        for direction in (Direction.PULL, Direction.PUSH, Direction.PULL):
            phase = plan.phase_kernels(direction)
            assert len(phase.launch_kernels) == 0

    def test_reset_forgets_resident_kernel(self):
        plan = FusionPlan(FusionStrategy.ALL)
        plan.phase_kernels(Direction.PUSH)
        plan.reset()
        assert len(plan.phase_kernels(Direction.PUSH).launch_kernels) == 1

    def test_max_registers_per_strategy(self):
        assert FusionPlan(FusionStrategy.NONE).max_registers_per_thread() == 30
        assert FusionPlan(FusionStrategy.PUSH_PULL).max_registers_per_thread() == 50
        assert FusionPlan(FusionStrategy.ALL).max_registers_per_thread() == 110

    def test_configurable_threads_ordering(self):
        # Push-pull fusion roughly doubles the resident threads of all-fusion
        # (the paper reports a ~50% increase; the floor function makes the
        # exact ratio device dependent).
        none = FusionPlan(FusionStrategy.NONE).configurable_threads(K40)
        push_pull = FusionPlan(FusionStrategy.PUSH_PULL).configurable_threads(K40)
        all_fused = FusionPlan(FusionStrategy.ALL).configurable_threads(K40)
        assert none >= push_pull > all_fused

    def test_configurable_threads_scale_with_device(self):
        plan = FusionPlan(FusionStrategy.PUSH_PULL)
        k20 = plan.configurable_threads(K20)
        k40 = plan.configurable_threads(K40)
        p100 = plan.configurable_threads(P100)
        assert k20 < k40 < p100

    def test_expected_launch_counts(self):
        none = FusionPlan(FusionStrategy.NONE)
        all_fused = FusionPlan(FusionStrategy.ALL)
        push_pull = FusionPlan(FusionStrategy.PUSH_PULL)
        assert none.expected_launches(100, 2) == 400
        assert all_fused.expected_launches(100, 2) == 1
        assert push_pull.expected_launches(100, 2) == 3
        assert push_pull.expected_launches(0, 0) == 0

    def test_unknown_kernel_key_rejected(self):
        with pytest.raises(KeyError):
            FusionPlan(FusionStrategy.NONE).kernel("nonexistent")

    def test_register_override(self):
        plan = FusionPlan(FusionStrategy.PUSH_PULL, registers={"fused_push": 64})
        assert plan.kernel("fused_push").registers_per_thread == 64

    def test_persistent_cta_count_positive(self):
        for strategy in FusionStrategy:
            assert FusionPlan(strategy).persistent_cta_count(K40) > 0


class TestDirectionSelector:
    def test_starts_in_requested_direction(self):
        sel = DirectionSelector(total_edges=1000, start_direction=Direction.PULL)
        # A pull-started algorithm with a full frontier stays in pull mode.
        assert sel.decide(900) is Direction.PULL

    def test_switches_to_pull_on_large_frontier(self):
        sel = DirectionSelector(total_edges=1000)
        assert sel.decide(10) is Direction.PUSH
        assert sel.decide(100) is Direction.PULL

    def test_switches_back_to_push_on_small_frontier(self):
        sel = DirectionSelector(total_edges=1000)
        sel.decide(500)
        assert sel.current is Direction.PULL
        assert sel.decide(5) is Direction.PUSH

    def test_hysteresis_between_thresholds(self):
        sel = DirectionSelector(
            total_edges=1000, to_pull_threshold=0.5, to_push_threshold=0.1
        )
        sel.decide(600)          # -> pull
        assert sel.decide(300) is Direction.PULL   # 30% stays pull
        assert sel.decide(50) is Direction.PUSH    # below 10% -> push

    def test_bfs_like_sequence_yields_push_pull_push(self):
        sel = DirectionSelector(total_edges=10_000)
        frontier_edges = [5, 50, 3000, 4000, 800, 40, 5]
        directions = [sel.decide(e) for e in frontier_edges]
        assert directions[0] is Direction.PUSH
        assert Direction.PULL in directions
        assert directions[-1] is Direction.PUSH
        assert sel.switches() == 2
        assert sum(sel.phase_lengths()) == len(frontier_edges)

    def test_empty_graph_never_switches(self):
        sel = DirectionSelector(total_edges=0)
        assert sel.decide(0) is Direction.PUSH
        assert sel.switches() == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DirectionSelector(total_edges=10, to_pull_threshold=0.01,
                              to_push_threshold=0.5)
        with pytest.raises(ValueError):
            DirectionSelector(total_edges=10, to_pull_threshold=2.0)

    def test_phase_lengths_empty_history(self):
        sel = DirectionSelector(total_edges=10)
        assert sel.phase_lengths() == []

    def test_force_records_history_and_current(self):
        sel = DirectionSelector(total_edges=1000)
        assert sel.force(Direction.PULL) is Direction.PULL
        assert sel.current is Direction.PULL
        assert sel.force(Direction.PULL) is Direction.PULL
        assert sel.force(Direction.PUSH) is Direction.PUSH
        assert sel.history == [Direction.PULL, Direction.PULL, Direction.PUSH]
        assert sel.switches() == 1
        assert sel.phase_lengths() == [2, 1]

    def test_force_then_decide_uses_forced_state(self):
        sel = DirectionSelector(total_edges=1000)
        sel.force(Direction.PULL)
        # Hysteresis continues from the forced direction: a mid-band share
        # keeps pull, a tiny share switches back to push.
        assert sel.decide(30) is Direction.PULL
        assert sel.decide(5) is Direction.PUSH
        assert sel.switches() == 1
