"""Tests for worklist classification and the bounded per-thread bins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frontier import (
    ClassifiedFrontier,
    ThreadBins,
    WorklistClassifier,
    threads_for_frontier,
)
from repro.graph import generators as gen


class TestWorklistClassifier:
    def test_star_hub_goes_to_large_list(self, star_graph):
        classifier = WorklistClassifier(star_graph, medium_large_separator=128)
        frontier = np.arange(star_graph.num_vertices)
        classified = classifier.classify(frontier)
        assert 0 in classified.large  # the hub (degree 200 >= 128)
        assert classified.sizes.small_vertices == 200  # all leaves
        assert classified.sizes.large_vertices == 1

    def test_partition_is_exhaustive_and_disjoint(self, rmat_graph):
        classifier = WorklistClassifier(rmat_graph)
        frontier = np.arange(0, rmat_graph.num_vertices, 3)
        classified = classifier.classify(frontier)
        merged = np.sort(classified.all_vertices())
        assert np.array_equal(merged, np.sort(frontier))
        assert classified.total_vertices == frontier.size

    def test_edges_match_degree_sums(self, rmat_graph):
        classifier = WorklistClassifier(rmat_graph)
        frontier = np.arange(rmat_graph.num_vertices)
        classified = classifier.classify(frontier)
        assert classified.total_edges == int(rmat_graph.out_degrees().sum())

    def test_separator_boundaries(self):
        # Build a graph with known degrees: 10, 32 and 300.
        edges = []
        edges += [(0, i) for i in range(1, 11)]
        edges += [(11, 100 + i) for i in range(32)]
        edges += [(12, 400 + i) for i in range(300)]
        g = gen.CSRGraph.from_edges(800, np.array(edges), directed=True,
                                    name="degrees") if False else None
        # Use the public constructor directly (avoid the conditional above).
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges(800, np.array(edges), directed=True, name="degrees")
        classifier = WorklistClassifier(
            g, small_medium_separator=32, medium_large_separator=256
        )
        classified = classifier.classify(np.array([0, 11, 12]))
        assert np.array_equal(classified.small, [0])      # degree 10 < 32
        assert np.array_equal(classified.medium, [11])    # 32 <= 32 < 256
        assert np.array_equal(classified.large, [12])     # 300 >= 256

    def test_empty_frontier(self, rmat_graph):
        classifier = WorklistClassifier(rmat_graph)
        classified = classifier.classify(np.array([], dtype=np.int64))
        assert classified.total_vertices == 0
        assert classified.total_edges == 0

    def test_invalid_separators_rejected(self, rmat_graph):
        with pytest.raises(ValueError):
            WorklistClassifier(rmat_graph, small_medium_separator=0)
        with pytest.raises(ValueError):
            WorklistClassifier(
                rmat_graph, small_medium_separator=64, medium_large_separator=32
            )

    def test_degrees_of(self, star_graph):
        classifier = WorklistClassifier(star_graph)
        degs = classifier.degrees_of(np.array([0, 1]))
        assert degs[0] == 200 and degs[1] == 1

    def test_edge_count_matches_degree_sum(self, rmat_graph):
        classifier = WorklistClassifier(rmat_graph)
        frontier = np.arange(0, rmat_graph.num_vertices, 2)
        assert classifier.edge_count(frontier) == int(
            rmat_graph.out_degrees()[frontier].sum()
        )
        assert classifier.edge_count(np.zeros(0, dtype=np.int64)) == 0

    def test_pull_direction_classifies_by_in_degree(self, directed_graph):
        from repro.core.direction import Direction

        push = WorklistClassifier(directed_graph, direction=Direction.PUSH)
        pull = WorklistClassifier(directed_graph, direction=Direction.PULL)
        everything = np.arange(directed_graph.num_vertices)
        assert np.array_equal(
            push.degrees_of(everything), directed_graph.out_degrees()
        )
        assert np.array_equal(
            pull.degrees_of(everything), directed_graph.in_degrees()
        )
        assert pull.classify(everything).total_edges == int(
            directed_graph.in_degrees().sum()
        )
        # The legacy flag still works and maps onto the direction modes.
        legacy = WorklistClassifier(directed_graph, use_out_degrees=False)
        assert legacy.direction is Direction.PULL

    def test_threads_for_frontier(self, star_graph):
        classifier = WorklistClassifier(star_graph)
        classified = classifier.classify(np.arange(star_graph.num_vertices))
        threads = threads_for_frontier(classified)
        # 200 leaves * 1 thread + the hub (degree 200 < 256) * 1 warp.
        assert threads == 200 * 1 + 1 * 32


class TestThreadBins:
    def test_scatter_and_concatenate(self):
        bins = ThreadBins(num_threads=3, capacity=4)
        bins.scatter(np.array([10, 11, 12, 13]), np.array([0, 0, 2, 2]))
        assert not bins.overflowed
        assert np.array_equal(bins.occupancy(), [2, 0, 2])
        assert np.array_equal(np.sort(bins.concatenated()), [10, 11, 12, 13])

    def test_overflow_flag_and_truncation(self):
        bins = ThreadBins(num_threads=2, capacity=3)
        bins.scatter(np.arange(10), np.zeros(10, dtype=np.int64))
        assert bins.overflowed
        assert bins.occupancy()[0] == 3  # truncated at capacity

    def test_incremental_scatter_respects_capacity(self):
        bins = ThreadBins(num_threads=1, capacity=4)
        bins.scatter(np.array([1, 2]), np.array([0, 0]))
        assert not bins.overflowed
        bins.scatter(np.array([3, 4, 5]), np.array([0, 0, 0]))
        assert bins.overflowed
        assert bins.occupancy()[0] == 4

    def test_empty_scatter_is_noop(self):
        bins = ThreadBins(num_threads=2, capacity=4)
        bins.scatter(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert bins.concatenated().size == 0

    def test_reset(self):
        bins = ThreadBins(num_threads=1, capacity=2)
        bins.scatter(np.array([1, 2, 3]), np.array([0, 0, 0]))
        assert bins.overflowed
        bins.reset()
        assert not bins.overflowed
        assert bins.concatenated().size == 0

    def test_mismatched_shapes_rejected(self):
        bins = ThreadBins(num_threads=2, capacity=4)
        with pytest.raises(ValueError):
            bins.scatter(np.array([1, 2]), np.array([0]))

    def test_out_of_range_thread_rejected(self):
        bins = ThreadBins(num_threads=2, capacity=4)
        with pytest.raises(ValueError):
            bins.scatter(np.array([1]), np.array([5]))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ThreadBins(num_threads=0, capacity=4)
        with pytest.raises(ValueError):
            ThreadBins(num_threads=2, capacity=0)
