"""Regression coverage for the traffic-model calibration fit.

``calibrate_pull_constants`` recovers the pull cost constants by least
squares over per-iteration (scanned, active) edge counts. Three regimes
must behave (ROADMAP "remaining ideas" - the WCC failure mode):

* well-conditioned matrices (active fraction swinging across iterations)
  recover the true constants at full rank;
* exactly-collinear matrices (SpMV/BP: ``active == scanned`` everywhere)
  fall back to the combined per-scanned-edge cost at rank 1;
* *near*-collinear WCC-style matrices (gathers keep 98-100% of edges
  active) must take the same fallback instead of amplifying model-mismatch
  noise into huge cancelling coefficient pairs - previously they passed the
  exact-rank test and produced garbage fits.

The forced-schedule sweep (``TestForcedScheduleSweep``) closes the loop on
real engine runs: WCC's organic pull phases are near-collinear, but a sweep
of ``EngineConfig.forced_direction_schedule`` runs that place a pull
iteration at staggered stages of convergence varies the active fraction
enough to condition the WCC timing matrix at rank 2, recovering positive
per-edge costs from measured timings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import WCC
from repro.core.direction import Direction
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.metrics import (
    COLLINEARITY_LIMIT,
    IterationRecord,
    calibrate_pull_constants,
)
from repro.graph import generators as gen


def _record(direction, scanned, active, compute_us, iteration=1):
    return IterationRecord(
        iteration=iteration,
        direction=direction,
        frontier_vertices=10,
        frontier_edges=int(scanned),
        filter_used="online",
        filter_overflowed=False,
        compute_us=float(compute_us),
        filter_us=0.0,
        barrier_us=0.0,
        launch_us=0.0,
        active_edges=int(active),
    )


def _push_reference():
    # 2 us per expanded push edge.
    return [_record("push", scanned=1000, active=1000, compute_us=2000.0)]


class TestWellConditionedFit:
    def test_recovers_exact_constants_at_full_rank(self):
        # compute = 1.0 * scanned + 3.0 * active, active fraction 0.2..1.0.
        pull = []
        for i, fraction in enumerate((0.2, 0.5, 0.8, 1.0)):
            scanned = 1000 * (i + 1)
            active = int(scanned * fraction)
            pull.append(
                _record("pull", scanned, active, 1.0 * scanned + 3.0 * active)
            )
        fit = calibrate_pull_constants(_push_reference(), pull)
        assert fit["fit_rank"] == 2
        assert fit["fit_condition"] < COLLINEARITY_LIMIT
        assert fit["fitted_scan_us_per_edge"] == pytest.approx(1.0, abs=1e-6)
        assert fit["fitted_active_us_per_edge"] == pytest.approx(3.0, abs=1e-6)
        assert fit["pull_scan_over_push_edge"] == pytest.approx(0.5, abs=1e-6)


class TestCollinearFallback:
    def test_exactly_collinear_reports_combined_cost(self):
        # SpMV/BP style: every gather keeps every edge active.
        pull = [
            _record("pull", scanned, scanned, 4.0 * scanned)
            for scanned in (1000, 2000, 3000)
        ]
        fit = calibrate_pull_constants(_push_reference(), pull)
        assert fit["fit_rank"] == 1
        assert fit["fitted_scan_us_per_edge"] == pytest.approx(4.0)
        assert np.isnan(fit["fitted_active_us_per_edge"])

    def test_near_collinear_wcc_matrix_takes_the_fallback(self):
        # WCC style: active fraction 98-100% with only tiny variation, and
        # a little model mismatch in the timings. The unconstrained
        # two-parameter fit on this matrix amplifies the mismatch into
        # huge cancelling coefficients; the condition-number guard must
        # route it to the combined-cost fallback instead.
        fractions = (0.995, 0.988, 0.999, 0.981, 0.992)
        mismatch = (1.0, -1.3, 0.8, -0.6, 1.1)  # us, deterministic "noise"
        pull = []
        for i, (fraction, noise) in enumerate(zip(fractions, mismatch)):
            scanned = 900 + 50 * i
            active = int(round(scanned * fraction))
            pull.append(
                _record("pull", scanned, active, 3.0 * scanned + noise)
            )
        design = np.array(
            [[r.frontier_edges, r.active_edges] for r in pull], dtype=float
        )
        norms = np.linalg.norm(design, axis=0)
        singular = np.linalg.svd(design / norms, compute_uv=False)
        assert singular[0] / singular[-1] > COLLINEARITY_LIMIT  # the regime

        fit = calibrate_pull_constants(_push_reference(), pull)
        assert fit["fit_rank"] == 1
        assert fit["fit_condition"] > COLLINEARITY_LIMIT
        # Combined per-scanned-edge cost: sane, positive, near the truth.
        assert fit["fitted_scan_us_per_edge"] == pytest.approx(3.0, rel=0.01)
        assert np.isnan(fit["fitted_active_us_per_edge"])
        assert fit["pull_scan_over_push_edge"] == pytest.approx(1.5, rel=0.01)

    def test_negative_coefficients_take_the_fallback(self):
        # Condition number is fine here, but the least-squares solution has
        # a negative scan cost - physically meaningless, so the fit must
        # degrade to the combined estimate rather than report it.
        pull = [
            _record("pull", 100, 90, 300.0),
            _record("pull", 200, 100, 290.0),
        ]
        fit = calibrate_pull_constants(_push_reference(), pull)
        assert fit["fit_rank"] == 1
        assert fit["fit_condition"] < COLLINEARITY_LIMIT
        assert fit["fitted_scan_us_per_edge"] > 0
        assert np.isnan(fit["fitted_active_us_per_edge"])


class TestForcedScheduleSweep:
    """Condition the WCC fit at rank 2 with a forced-schedule sweep.

    A single WCC run's pull phases keep nearly every scanned in-edge
    active (``active ≈ scanned``), so its timing matrix is near-collinear
    and ``calibrate_pull_constants`` has to take the combined-cost
    fallback. The sweep instead collects pull iterations from several
    forced schedules, each placing the gather at a later stage of
    convergence: once the clusters of a two-level graph have settled
    internally, the frontier is a thin inter-cluster wavefront while the
    gather worklist still spans whole unsettled clusters, which drives
    the active fraction far below 1 and makes the (scanned, active)
    design genuinely two-dimensional.
    """

    #: Push-lead lengths of the sweep: iteration ``lead + 1`` runs the
    #: gather, everything else pushes.
    LEADS = range(0, 12, 2)

    @pytest.fixture(scope="class")
    def sweep_records(self):
        graph = gen.two_level_graph(8, 14, 3, seed=13)
        push_records, pull_records = [], []
        for lead in self.LEADS:
            schedule = [Direction.PUSH] * lead + [
                Direction.PULL, Direction.PUSH,
            ]
            config = EngineConfig(
                direction_auto=False, forced_direction_schedule=schedule
            )
            result = SIMDXEngine(graph, config=config).run(WCC())
            assert not result.failed
            for record in result.iteration_records:
                if record.direction == Direction.PULL.value:
                    pull_records.append(record)
                else:
                    push_records.append(record)
        return graph, push_records, pull_records

    def test_sweep_varies_the_active_fraction(self, sweep_records):
        _, _, pull_records = sweep_records
        fractions = [
            r.active_edges / r.frontier_edges
            for r in pull_records if r.frontier_edges > 0
        ]
        assert min(fractions) < 0.5
        assert max(fractions) > 0.9

    def test_sweep_conditions_the_wcc_fit_at_rank_2(self, sweep_records):
        _, push_records, pull_records = sweep_records
        fit = calibrate_pull_constants(push_records, pull_records)
        assert fit["fit_rank"] == 2
        assert fit["fit_condition"] < COLLINEARITY_LIMIT
        # A usable calibration: positive per-edge costs, and a scan test
        # that is cheaper than the full push per-edge work.
        assert fit["fitted_scan_us_per_edge"] > 0
        assert fit["fitted_active_us_per_edge"] > 0
        assert 0 < fit["pull_scan_over_push_edge"] < 1

    def test_single_schedule_still_takes_the_fallback(self):
        # The contrast that motivated the sweep: WCC forced pure-pull on a
        # road-shaped graph keeps ~every scanned edge active, so without
        # the sweep the same calibration degrades to the combined cost.
        graph = gen.road_network_graph(20, 20, seed=11, name="road")
        config = EngineConfig(
            direction_auto=False, forced_direction=Direction.PULL
        )
        result = SIMDXEngine(graph, config=config).run(WCC())
        pull_records = list(result.iteration_records)
        fit = calibrate_pull_constants([], pull_records)
        assert fit["fit_rank"] <= 1
        assert np.isnan(fit["fitted_active_us_per_edge"])


class TestDegenerateInputs:
    def test_no_pull_rows(self):
        fit = calibrate_pull_constants(_push_reference(), [])
        assert fit["fit_rank"] == 0
        assert np.isnan(fit["fitted_scan_us_per_edge"])
        assert fit["push_us_per_edge"] == pytest.approx(2.0)

    def test_no_push_rows_still_fits_pull(self):
        pull = []
        for i, fraction in enumerate((0.2, 0.6, 1.0)):
            scanned = 1000 * (i + 1)
            active = int(scanned * fraction)
            pull.append(
                _record("pull", scanned, active, 1.0 * scanned + 3.0 * active)
            )
        fit = calibrate_pull_constants([], pull)
        assert np.isnan(fit["push_us_per_edge"])
        assert np.isnan(fit["pull_scan_over_push_edge"])
        assert fit["fitted_scan_us_per_edge"] == pytest.approx(1.0, abs=1e-6)
