"""Table-4 memory-feasibility regression for sharded execution.

The engine sizes its allocations against the *modeled* (paper-scale)
graph, so a batch whose K lane-metadata arrays exceed one K40's 12 GiB
fails with an OOM ``RunResult`` exactly like Table 4's blank cells. The
sharded executor gives each shard its own device with the full per-device
budget but only ``~1/num_shards`` of the modeled vertices and edges, so
the same batch must *complete* on enough shards - with per-lane results
bit-identical to per-lane single-source runs (which fit one device and
tie the batch back to the serial semantics), and with every shard's peak
below the single-device capacity that the unsharded run blew through.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BFS
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.graph import generators as gen
from repro.gpu.device import K40

#: Twitter-scale annotation (Table 4's largest graphs): K=16 lanes of
#: paper-scale metadata alone need 2 * 16 * 60e6 * 8 B = 15.36 GB, which
#: exceeds one K40 (12 GiB) before the CSR is even resident.
PAPER_VERTICES = 60_000_000
PAPER_EDGES = 400_000_000
NUM_LANES = 16


@pytest.fixture()
def annotated_graph():
    graph = gen.rmat_graph(9, 8, seed=31, name="tw-analogue")
    graph.meta["paper_vertices"] = PAPER_VERTICES
    graph.meta["paper_edges"] = PAPER_EDGES
    return graph


def _sources(graph, k):
    degrees = graph.out_degrees()
    hubs = np.argsort(degrees)[::-1][:k]
    return [int(v) for v in hubs]


class TestShardOOMRegression:
    def test_high_k_batch_ooms_on_one_device(self, annotated_graph):
        sources = _sources(annotated_graph, NUM_LANES)
        result = SIMDXEngine(annotated_graph).run_batch(BFS(source=0), sources)
        assert result.failed
        assert "OOM" in result.failure_reason
        assert result.device == K40.name

    def test_same_batch_completes_on_four_shards(self, annotated_graph):
        sources = _sources(annotated_graph, NUM_LANES)
        engine = SIMDXEngine(
            annotated_graph, config=EngineConfig(num_shards=4)
        )
        batch = engine.run_batch(BFS(source=0), sources)
        assert not batch.failed, batch.failure_reason
        assert batch.device == f"{K40.name}x4"
        assert batch.extra["shards"] == 4

        # Every shard stayed under the budget one device could not meet.
        peaks = batch.extra["shard_peak_bytes"]
        assert len(peaks) == 4
        assert max(peaks) < K40.global_memory_bytes

        # Lane-identical to the serial single-source runs (each of which
        # fits one K40: a single run needs only 2 * 60e6 * 8 B = 960 MB of
        # metadata), so completing sharded does not change the answers.
        for lane, source in enumerate(sources):
            single = SIMDXEngine(annotated_graph).run(BFS(source=source))
            assert not single.failed, single.failure_reason
            assert np.array_equal(batch.values[lane], single.values), (
                f"lane {lane} (source {source}) diverged on 4 shards"
            )

    def test_two_shards_also_sufficient(self, annotated_graph):
        # 2 shards halve the lane-metadata footprint to ~7.7 GB + ~2.4 GB
        # of CSR per shard; the per-shard total fits a K40 with room to
        # spare, so the minimal useful shard count already completes.
        sources = _sources(annotated_graph, NUM_LANES)
        engine = SIMDXEngine(
            annotated_graph, config=EngineConfig(num_shards=2)
        )
        batch = engine.run_batch(BFS(source=0), sources)
        assert not batch.failed, batch.failure_reason
        assert max(batch.extra["shard_peak_bytes"]) < K40.global_memory_bytes

    def test_moderate_k_still_fits_one_device(self, annotated_graph):
        # K=4 stays under 12 GiB unsharded - the OOM above is the lane
        # count, not an unconditional failure of the annotation.
        sources = _sources(annotated_graph, 4)
        result = SIMDXEngine(annotated_graph).run_batch(BFS(source=0), sources)
        assert not result.failed, result.failure_reason
