"""Direction-aware JIT task management: the pull->push switch boundary.

The controller must never select the ballot filter during a pull phase (a
gather worker records at most one destination, so its bin cannot overflow),
must drop out of ballot mode on the first pull iteration, and must pre-arm
the ballot filter on the first push iteration after a pull->push switch
whenever a single scatter worker could overflow its bin
(``FilterContext.max_producer_records`` exceeds the overflow threshold).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BFS, SSSP, WCC
from repro.core.direction import Direction
from repro.core.engine import EngineConfig, SIMDXEngine
from repro.core.filters import FilterContext
from repro.core.jit import JITTaskManager
from repro.graph import generators as gen
from repro.graph.csr import CSRGraph


def make_ctx(
    num_vertices: int = 100,
    updated=(5, 7, 7, 3),
    active=(3, 5, 7),
    num_threads: int = 4,
    max_producer_records: int = 0,
    success_rate: float = 1.0,
) -> FilterContext:
    updated = np.asarray(updated, dtype=np.int64)
    active_mask = np.zeros(num_vertices, dtype=bool)
    active_mask[list(active)] = True
    producers = np.arange(updated.size, dtype=np.int64) % num_threads
    return FilterContext(
        num_vertices=num_vertices,
        updated_destinations=updated,
        producer_thread=producers,
        active_mask=active_mask,
        frontier_edges=50,
        num_worker_threads=num_threads,
        max_producer_records=max_producer_records,
        success_rate=success_rate,
    )


def pull_ctx(num_vertices: int = 100, receivers=(3, 5, 7)) -> FilterContext:
    """A gather-style context: one worker per receiver, one record each."""
    receivers = np.asarray(receivers, dtype=np.int64)
    active_mask = np.zeros(num_vertices, dtype=bool)
    active_mask[receivers] = True
    return FilterContext(
        num_vertices=num_vertices,
        updated_destinations=receivers,
        producer_thread=np.arange(receivers.size, dtype=np.int64),
        active_mask=active_mask,
        frontier_edges=50,
        num_worker_threads=max(1, receivers.size),
        max_producer_records=1,
    )


class TestControllerUnit:
    def test_pull_forces_online(self):
        jit = JITTaskManager(overflow_threshold=4)
        result = jit.build(pull_ctx(), 1, direction=Direction.PULL)
        assert jit.decisions[-1].filter_used == "online"
        assert jit.decisions[-1].direction == "pull"
        assert not result.overflowed

    def test_pull_leaves_ballot_mode_immediately(self):
        jit = JITTaskManager(overflow_threshold=4)
        # Overflow in a push iteration switches to ballot mode...
        jit.build(
            make_ctx(updated=tuple(range(50)), num_threads=1), 1,
            direction=Direction.PUSH,
        )
        assert jit.current_filter_name == "ballot"
        # ...but the first pull iteration forces online regardless.
        jit.build(pull_ctx(), 2, direction=Direction.PULL)
        assert jit.decisions[-1].filter_used == "online"
        assert jit.current_filter_name == "online"

    def test_never_ballot_during_pull_phase(self):
        jit = JITTaskManager(overflow_threshold=4)
        for iteration in range(1, 6):
            jit.build(
                pull_ctx(receivers=tuple(range(iteration, iteration + 10))),
                iteration, direction=Direction.PULL,
            )
        assert all(
            d.filter_used == "online" for d in jit.decisions
            if d.direction == "pull"
        )
        assert not any(d.overflowed for d in jit.decisions)

    def test_pull_to_push_switch_pre_arms_ballot(self):
        jit = JITTaskManager(overflow_threshold=4)
        jit.build(pull_ctx(), 1, direction=Direction.PULL)
        # The handed-over frontier contains a worker that could record more
        # than a bin holds -> the ballot is pre-armed without any overflow.
        jit.build(
            make_ctx(updated=(1, 2), max_producer_records=10), 2,
            direction=Direction.PUSH,
        )
        decision = jit.decisions[-1]
        assert decision.filter_used == "ballot"
        assert decision.pre_armed
        assert not decision.overflowed
        assert jit.pre_armed_iterations() == [2]

    def test_no_pre_arm_when_bins_cannot_overflow(self):
        jit = JITTaskManager(overflow_threshold=4)
        jit.build(pull_ctx(), 1, direction=Direction.PULL)
        # Max out-degree below the threshold: stay on the online filter.
        jit.build(
            make_ctx(updated=(1, 2), max_producer_records=3), 2,
            direction=Direction.PUSH,
        )
        assert jit.decisions[-1].filter_used == "online"
        assert not jit.decisions[-1].pre_armed

    def test_low_success_rate_sharpens_the_pre_arm_bound(self):
        # A hub with out-degree 10 would overflow 4-entry bins if every
        # offer landed, but at a 20% success rate it records ~2 entries:
        # the sharpened bound keeps the online filter.
        jit = JITTaskManager(overflow_threshold=4)
        jit.build(pull_ctx(), 1, direction=Direction.PULL)
        jit.build(
            make_ctx(updated=(1, 2), max_producer_records=10, success_rate=0.2),
            2, direction=Direction.PUSH,
        )
        assert jit.decisions[-1].filter_used == "online"
        assert not jit.decisions[-1].pre_armed

    def test_high_success_rate_still_pre_arms(self):
        jit = JITTaskManager(overflow_threshold=4)
        jit.build(pull_ctx(), 1, direction=Direction.PULL)
        jit.build(
            make_ctx(updated=(1, 2), max_producer_records=10, success_rate=0.9),
            2, direction=Direction.PUSH,
        )
        decision = jit.decisions[-1]
        assert decision.filter_used == "ballot"
        assert decision.pre_armed

    def test_underestimated_success_rate_defers_to_overflow_signal(self):
        # The sharpened bound can only cost one incomplete online pass,
        # never correctness: if the offers succeed anyway, the generic
        # overflow signal still switches to ballot in the same iteration.
        jit = JITTaskManager(overflow_threshold=4)
        jit.build(pull_ctx(), 1, direction=Direction.PULL)
        result = jit.build(
            make_ctx(
                updated=tuple(range(50)), num_threads=1,
                max_producer_records=50, success_rate=0.01,
            ),
            2, direction=Direction.PUSH,
        )
        decision = jit.decisions[-1]
        assert decision.filter_used == "ballot"
        assert not decision.pre_armed
        assert decision.overflowed
        assert result.is_sorted

    def test_pre_armed_ballot_releases_once_frontier_shrinks(self):
        jit = JITTaskManager(overflow_threshold=4)
        jit.build(pull_ctx(), 1, direction=Direction.PULL)
        jit.build(
            make_ctx(updated=(1, 2), max_producer_records=10), 2,
            direction=Direction.PUSH,
        )
        # The shadow online run did not overflow, so the next push iteration
        # is back on the online filter.
        jit.build(
            make_ctx(updated=(1, 2), max_producer_records=10), 3,
            direction=Direction.PUSH,
        )
        assert jit.decisions[-1].filter_used == "online"

    def test_reset_clears_direction_memory(self):
        jit = JITTaskManager(overflow_threshold=4)
        jit.build(pull_ctx(), 1, direction=Direction.PULL)
        jit.reset()
        jit.build(
            make_ctx(updated=(1, 2), max_producer_records=10), 1,
            direction=Direction.PUSH,
        )
        # No pull preceded this push in the controller's (reset) history.
        assert jit.decisions[-1].filter_used == "online"


class TestEngineIntegration:
    def _pull_handover_hub(self) -> CSRGraph:
        """A graph whose pull phase hands a super-threshold hub to push.

        ``source -> 600 spreaders -> hub -> 70 leaves`` plus a 10000-edge
        unreachable ballast cycle inflating the denominator of the
        direction test. The source's 600 out-edges (~5.3% of edges) start a
        pull phase; when the frontier shrinks to the lone hub its 70
        out-edges (~0.6%) drop below the to-push threshold, so the switch
        iteration scatters a frontier whose max out-degree (70) exceeds the
        overflow threshold (64) - the pre-arm condition.
        """
        num_spreaders, num_leaves, ballast = 600, 70, 10_000
        source = 0
        spreaders = range(1, 1 + num_spreaders)
        hub = 1 + num_spreaders
        leaves = range(hub + 1, hub + 1 + num_leaves)
        ballast_base = hub + 1 + num_leaves
        edges = [(source, s) for s in spreaders]
        edges += [(s, hub) for s in spreaders]
        edges += [(hub, leaf) for leaf in leaves]
        edges += [
            (ballast_base + i, ballast_base + (i + 1) % ballast)
            for i in range(ballast)
        ]
        n = ballast_base + ballast
        return CSRGraph.from_edges(
            n, np.asarray(edges, dtype=np.int64), directed=True, name="hub_handover"
        )

    def test_forced_pull_trace_is_all_online_with_zero_overflows(self):
        graph = gen.rmat_graph(9, 8, seed=7, name="rmat9")
        src = int(np.argmax(graph.out_degrees()))
        for algorithm in (BFS(source=src), SSSP(source=src), WCC()):
            result = SIMDXEngine(
                graph,
                config=EngineConfig(
                    direction_auto=False, forced_direction=Direction.PULL
                ),
            ).run(algorithm)
            assert not result.failed
            assert set(result.filter_trace) == {"online"}, algorithm.name
            assert not any(
                record.filter_overflowed for record in result.iteration_records
            ), algorithm.name

    def test_auto_run_never_ballots_during_pull(self):
        graph = gen.rmat_graph(9, 8, seed=7, name="rmat9")
        src = int(np.argmax(graph.out_degrees()))
        result = SIMDXEngine(graph).run(BFS(source=src))
        assert "pull" in result.direction_trace
        for record in result.iteration_records:
            if record.direction == "pull":
                assert record.filter_used == "online"

    def test_pre_armed_ballot_fires_on_first_push_after_switch(self):
        graph = self._pull_handover_hub()
        result = SIMDXEngine(graph).run(BFS(source=0))
        assert not result.failed
        trace = list(zip(result.direction_trace, result.filter_trace))
        switches = [
            i for i in range(1, len(trace))
            if trace[i - 1][0] == "pull" and trace[i][0] == "push"
        ]
        assert switches, trace
        boundary = trace[switches[0]]
        assert boundary[1] == "ballot"
        # The ballot was pre-armed at the switch, not reached through the
        # incomplete-online overflow fallback (iterations are 1-based).
        # (The unreachable ballast keeps the unvisited share ~94%, so the
        # success-rate-scaled bound 70 * 0.94 still exceeds 64.)
        assert switches[0] + 1 in result.extra["jit_pre_armed_iterations"]

    def _settled_handover_hub(self) -> CSRGraph:
        """A pull->push handover hub on a mostly-*visited* graph.

        ``source`` reaches 10000 ballast leaves and 600 spreaders at level
        1; the spreaders reach both the hub and all 70 of the hub's leaves
        at level 2. When the frontier shrinks to the hub (+ leaves, which
        have no out-edges) and hands back to push, the hub's out-degree
        (70) still exceeds the overflow threshold - but everything is
        already visited, so the success-rate-scaled bound is ~0 and the
        degree-only bound's pre-arm would have been a wasted O(|V|) scan
        (the hub records nothing).
        """
        num_spreaders, num_leaves, ballast = 600, 70, 10_000
        source = 0
        spreaders = range(1, 1 + num_spreaders)
        hub = 1 + num_spreaders
        leaves = range(hub + 1, hub + 1 + num_leaves)
        ballast_base = hub + 1 + num_leaves
        edges = [(source, s) for s in spreaders]
        edges += [(source, ballast_base + i) for i in range(ballast)]
        edges += [(s, hub) for s in spreaders]
        edges += [
            (s, hub + 1 + (i % num_leaves)) for i, s in enumerate(spreaders)
        ]
        edges += [(hub, leaf) for leaf in leaves]
        n = ballast_base + ballast
        return CSRGraph.from_edges(
            n, np.asarray(edges, dtype=np.int64), directed=True,
            name="settled_handover",
        )

    def test_settled_frontier_does_not_pre_arm(self):
        graph = self._settled_handover_hub()
        result = SIMDXEngine(graph).run(BFS(source=0))
        assert not result.failed
        trace = list(zip(result.direction_trace, result.filter_trace))
        switches = [
            i for i in range(1, len(trace))
            if trace[i - 1][0] == "pull" and trace[i][0] == "push"
        ]
        assert switches, trace
        # The handed-over frontier still contains a super-threshold hub...
        hub = 601
        assert graph.out_degrees()[hub] > 64
        # ...but the mostly-settled graph keeps the sharpened bound below
        # the threshold: no pre-arm, and the online bins cope fine (the
        # hub's offers all fail, so nothing is recorded).
        assert result.extra["jit_pre_armed_iterations"] == []
        boundary = trace[switches[0]]
        assert boundary[1] == "online"
        assert not any(
            record.filter_overflowed for record in result.iteration_records
        )


class TestGatherRefinement:
    """Frontier-dependent settled-vertex pruning for SSSP and WCC."""

    class _UnprunedSSSP(SSSP):
        def gather_mask(self, metadata, graph, frontier=None):
            return super().gather_mask(metadata, graph, None)

    class _UnprunedWCC(WCC):
        def gather_mask(self, metadata, graph, frontier=None):
            return super().gather_mask(metadata, graph, None)

    @pytest.fixture(scope="class")
    def graph(self) -> CSRGraph:
        return gen.rmat_graph(9, 8, seed=7, name="rmat9")

    def _forced_pull(self, graph, algorithm):
        result = SIMDXEngine(
            graph,
            config=EngineConfig(
                direction_auto=False, forced_direction=Direction.PULL
            ),
        ).run(algorithm)
        assert not result.failed, result.failure_reason
        return result

    @pytest.mark.parametrize("name", ["sssp", "wcc"])
    def test_pruned_gather_shrinks_worklist_and_preserves_values(
        self, graph, name
    ):
        src = int(np.argmax(graph.out_degrees()))
        if name == "sssp":
            pruned_algo, unpruned_algo = (
                SSSP(source=src), self._UnprunedSSSP(source=src)
            )
        else:
            pruned_algo, unpruned_algo = WCC(), self._UnprunedWCC()
        pruned = self._forced_pull(graph, pruned_algo)
        unpruned = self._forced_pull(graph, unpruned_algo)
        assert np.array_equal(pruned.values, unpruned.values)
        scanned_pruned = sum(r.frontier_edges for r in pruned.iteration_records)
        scanned_unpruned = sum(
            r.frontier_edges for r in unpruned.iteration_records
        )
        assert scanned_pruned < scanned_unpruned

    def test_sssp_mask_respects_min_weight_bound(self, graph):
        src = int(np.argmax(graph.out_degrees()))
        algo = SSSP(source=src)
        algo.init(graph)
        metadata = np.full(graph.num_vertices, np.inf)
        metadata[src] = 0.0
        metadata[0] = 5.0
        frontier = np.array([src], dtype=np.int64)
        mask = algo.gather_mask(metadata, graph, frontier)
        # The source itself is settled relative to its own offers...
        assert not mask[src]
        # ...unvisited vertices always remain candidates.
        unvisited = np.isinf(metadata)
        assert mask[unvisited].all()

    def test_masks_degrade_to_full_when_frontier_missing(self, graph):
        algo = WCC()
        metadata = np.arange(graph.num_vertices, dtype=np.float64)
        assert algo.gather_mask(metadata, graph, None).all()
        assert algo.gather_mask(
            metadata, graph, np.zeros(0, dtype=np.int64)
        ).all()
